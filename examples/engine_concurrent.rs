//! The concurrent engine end to end: many sessions, a mixed request
//! stream (queries, edits, snapshots), and the consistency contract —
//! engine answers equal the sequential batch oracle at any worker count.
//!
//! ```text
//! cargo run --example engine_concurrent
//! ```

use dai_core::batch::batch_analyze;
use dai_core::driver::ProgramEdit;
use dai_core::query::IntraResolver;
use dai_domains::{AbstractDomain, IntervalDomain};
use dai_engine::{Engine, Request, Response, SessionId, Ticket};
use dai_lang::cfg::lower_program;
use dai_lang::{parse_block, parse_program, Symbol};

const SRC: &str = r#"
function main() {
    var total = 0;
    var i = 0;
    while (i < 10) { total = total + i; i = i + 1; }
    return total;
}
function helper(p) {
    var q = p;
    if (q < 0) { q = 0 - q; }
    return q;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = lower_program(&parse_program(SRC)?)?;

    // A 4-worker engine serving 6 sessions of the same program.
    let engine: Engine<IntervalDomain> = Engine::new(4);
    let sessions: Vec<SessionId> = (0..6)
        .map(|i| engine.open_session(format!("client-{i}"), program.clone()))
        .collect();
    println!(
        "engine up: {} workers, {} sessions",
        engine.workers(),
        sessions.len()
    );

    // Fire the exit query of `main` on every session concurrently.
    let exit = program.by_name("main").unwrap().exit();
    let tickets: Vec<Ticket<IntervalDomain>> = sessions
        .iter()
        .map(|&session| {
            engine.submit(Request::Query {
                session,
                func: "main".to_string(),
                loc: exit,
            })
        })
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let state = t.wait()?.into_state().expect("query returns a state");
        println!(
            "session {i}: main exit total = {}",
            state.interval_of("total")
        );
    }

    // Edit one session (insert a post-loop bump) and watch it diverge from
    // the others while still matching its own from-scratch oracle.
    let edited = sessions[0];
    let ret_edge = engine
        .program_of(edited)?
        .by_name("main")
        .unwrap()
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .unwrap()
        .id;
    let outcome = engine.request(Request::Edit {
        session: edited,
        edit: ProgramEdit::Insert {
            func: Symbol::new("main"),
            edge: ret_edge,
            block: parse_block("total = total + 1000;")?,
        },
    })?;
    if let Response::Edited(o) = outcome {
        println!(
            "edit applied: +{} locations, +{} edges",
            o.new_locs, o.new_edges
        );
    }
    let after = engine.query(edited, "main", exit)?;
    println!("edited session: total = {}", after.interval_of("total"));
    let untouched = engine.query(sessions[1], "main", exit)?;
    println!(
        "untouched session: total = {}",
        untouched.interval_of("total")
    );

    // The consistency contract, demonstrated: the edited session's answer
    // equals a from-scratch batch run of its current program.
    let cfg = engine.program_of(edited)?.by_name("main").unwrap().clone();
    let oracle = batch_analyze(
        &cfg,
        IntervalDomain::entry_default(cfg.params()),
        &mut IntraResolver,
    )?;
    assert_eq!(after, oracle[&cfg.exit()], "engine == batch oracle");
    println!("consistency: engine answer equals the sequential batch oracle ✓");

    // Deterministic snapshot of the edited session's DAIGs.
    if let Response::Snapshot(snap) = engine.request(Request::Snapshot { session: edited })? {
        for (f, dot) in &snap.functions {
            println!("snapshot of {f}: {} DOT bytes", dot.len());
        }
    }

    let stats = engine.stats();
    println!(
        "stats: {} queries, {} edits, {} snapshots; {} cells computed, \
         {} memo-matched; memo {:.0}% hit rate",
        stats.queries,
        stats.edits,
        stats.snapshots,
        stats.query_stats.computed,
        stats.query_stats.memo_matched,
        stats.memo.hit_rate() * 100.0,
    );
    Ok(())
}
