//! Exporting DAIGs to Graphviz — the paper's Figs. 3 and 4 as artifacts.
//!
//! Builds the DAIG for the `append` procedure of the paper's Fig. 1,
//! exports it at three moments:
//!
//! 1. freshly constructed (Fig. 3: all state cells empty except `φ₀`),
//! 2. after a demand query at the exit (Fig. 4a: the demanded cone filled,
//!    the loop unrolled as far as convergence required),
//! 3. after an edit inside the loop (Fig. 4c's rollback: the fix edge back
//!    at iterates 0/1, downstream cells dirtied).
//!
//! Pipe any of the printed graphs through `dot -Tsvg` to render them.
//!
//! Run with `cargo run --example daig_export > append.dot`.

use dai_core::analysis::FuncAnalysis;
use dai_core::dot::{to_dot, DotOptions};
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::ShapeDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::{parse_block, parse_program};
use dai_memo::MemoTable;

/// The paper's Fig. 1: append two well-formed linked lists.
const APPEND: &str = r#"
    function append(p, q) {
        if (p == null) { return q; }
        var r = p;
        while (r.next != null) { r = r.next; }
        r.next = q;
        return p;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = lower_program(&parse_program(APPEND)?)?.cfgs()[0].clone();
    let phi0 = ShapeDomain::with_lists(&["p", "q"]);
    let mut analysis = FuncAnalysis::new(cfg, phi0);
    let opts = DotOptions {
        title: Some("append — initial DAIG (Fig. 3)".into()),
        ..DotOptions::default()
    };

    println!("// ---- 1. initial DAIG (paper Fig. 3) ----");
    println!("{}", to_dot(analysis.daig(), &opts));

    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    let exit = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats)?;
    eprintln!(
        "queried exit: {} demanded unrolling(s); list well-formed: {}",
        stats.unrolls,
        exit.proves_list(dai_lang::RETURN_VAR)
    );
    let opts2 = DotOptions {
        title: Some("append — after demand query (Fig. 4a)".into()),
        ..DotOptions::default()
    };
    println!("// ---- 2. after querying the exit (Fig. 4a) ----");
    println!("{}", to_dot(analysis.daig(), &opts2));

    // Edit inside the loop body: the fix edge rolls back (Fig. 4c).
    let head = analysis.cfg().loop_heads()[0];
    let back = analysis.cfg().back_edge(head).expect("loop back edge");
    analysis.splice(back, &parse_block("print(\"walking\");")?)?;
    let opts3 = DotOptions {
        title: Some("append — after an in-loop edit (fix rolled back)".into()),
        ..DotOptions::default()
    };
    println!("// ---- 3. after an in-loop edit (rollback) ----");
    println!("{}", to_dot(analysis.daig(), &opts3));
    Ok(())
}
