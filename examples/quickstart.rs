//! Quickstart: build a program, analyze it on demand with the interval
//! domain, edit it, and re-query — the core demanded-AI loop.
//!
//! Run with `cargo run --example quickstart`.

use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::IntervalDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::{parse_block, parse_program};
use dai_memo::MemoTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and lower a small program to a control-flow graph.
    let program = parse_program(
        "function f(n) {
             var i = 0;
             var s = 0;
             while (i < 10) { s = s + i; i = i + 1; }
             return s;
         }",
    )?;
    let cfg = lower_program(&program)?.cfgs()[0].clone();
    println!("CFG:\n{}", dai_lang::pretty::cfg_to_string(&cfg));

    // 2. Build the demanded abstract interpretation graph (DAIG) with the
    //    interval domain and an unconstrained entry state φ₀.
    let mut analysis = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo = MemoTable::new();

    // 3. Demand the abstract state at the exit: only what the query needs
    //    is computed, and the loop is unrolled on demand until widening
    //    converges.
    let mut stats = QueryStats::default();
    let exit = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats)?;
    println!("exit state: {exit}");
    println!(
        "work: {} computed, {} memo-matched, {} demanded unrollings",
        stats.computed, stats.memo_matched, stats.unrolls
    );
    assert!(exit.interval_of("i").contains(10));

    // 4. Edit the program: insert a statement before the return (the
    //    paper's Fig. 4b scenario). Only downstream results are dirtied.
    let ret_edge = analysis
        .cfg()
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .expect("return edge")
        .id;
    analysis.splice(ret_edge, &parse_block("s = s + 100;")?)?;

    // 5. Re-query: upstream results (including the loop fixed point) are
    //    reused; only the spliced tail is recomputed.
    let mut stats2 = QueryStats::default();
    let exit2 = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats2)?;
    println!("exit after edit: {exit2}");
    println!(
        "incremental re-query work: {} computed, {} reused in place, {} unrollings",
        stats2.computed, stats2.reused, stats2.unrolls
    );
    assert!(
        stats2.computed < stats.computed,
        "edit must reuse most results"
    );
    assert_eq!(stats2.unrolls, 0, "the untouched loop must not re-unroll");
    Ok(())
}
