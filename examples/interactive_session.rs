//! Simulates an IDE session (the paper's motivating scenario): a developer
//! edits a multi-function program while an analysis answers queries at
//! interactive speed, reusing previous results across edits.
//!
//! Run with `cargo run --example interactive_session`.

use dai_core::driver::{Config, Driver, ProgramEdit};
use dai_core::interproc::ContextPolicy;
use dai_domains::OctagonDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::{parse_block, parse_program};
use dai_lang::Symbol;
use std::time::Instant;

const SRC: &str = "
function clamp(x) {
    if (x > 100) { return 100; }
    if (x < 0) { return 0; }
    return x;
}
function main() {
    var total = 0;
    var i = 0;
    while (i < 50) {
        var c = clamp(i * 3);
        total = total + c;
        i = i + 1;
    }
    return total;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = lower_program(&parse_program(SRC)?)?;
    let mut ide: Driver<OctagonDomain> = Driver::new(
        Config::IncrementalDemandDriven,
        program,
        ContextPolicy::CallString(1),
        "main",
        OctagonDomain::top(),
    );
    let exit = ide
        .analyzer()
        .program()
        .by_name("main")
        .expect("main")
        .exit();

    // First query: cold — computes the interprocedural fixed point.
    let t0 = Instant::now();
    let v0 = ide.query("main", exit)?;
    println!(
        "[query 1, cold]   {:>9.3?}  total ∈ {}",
        t0.elapsed(),
        v0.interval_of("total")
    );

    // Second query: everything is memoized.
    let t1 = Instant::now();
    let v1 = ide.query("main", exit)?;
    println!(
        "[query 2, warm]   {:>9.3?}  total ∈ {}",
        t1.elapsed(),
        v1.interval_of("total")
    );
    assert_eq!(v0, v1);

    // The developer edits the callee: clamp's upper bound becomes 90.
    let clamp_edge = ide
        .analyzer()
        .program()
        .by_name("clamp")
        .expect("clamp")
        .edges()
        .find(|e| e.stmt.to_string().contains("100") && e.stmt.to_string().contains("__ret"))
        .expect("return 100 edge")
        .id;
    let t2 = Instant::now();
    ide.apply_edit(&ProgramEdit::Relabel {
        func: Symbol::new("clamp"),
        edge: clamp_edge,
        stmt: dai_lang::Stmt::Assign(dai_lang::RETURN_VAR.into(), dai_lang::parse_expr("90")?),
    })?;
    println!(
        "[edit clamp]      {:>9.3?}  (dirtying only — no recomputation)",
        t2.elapsed()
    );

    // Re-query: the caller's loop is re-analyzed against the new summary.
    let t3 = Instant::now();
    let v2 = ide.query("main", exit)?;
    println!(
        "[query 3, edit]   {:>9.3?}  total ∈ {}",
        t3.elapsed(),
        v2.interval_of("total")
    );

    // The developer inserts a logging statement in main (Fig. 4b): only
    // downstream cells are recomputed.
    let print_edge = ide
        .analyzer()
        .program()
        .by_name("main")
        .expect("main")
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .expect("return edge")
        .id;
    let t4 = Instant::now();
    ide.apply_edit(&ProgramEdit::Insert {
        func: Symbol::new("main"),
        edge: print_edge,
        block: parse_block("print(total);")?,
    })?;
    let v3 = ide.query("main", exit)?;
    println!(
        "[insert + query]  {:>9.3?}  total ∈ {}",
        t4.elapsed(),
        v3.interval_of("total")
    );

    let s = ide.analyzer().stats();
    let m = ide.analyzer().memo_stats();
    println!(
        "\nsession totals: {} cells computed, {} memo matches ({:.0}% hit rate), {} unrollings",
        s.computed,
        s.memo_matched,
        m.hit_rate() * 100.0,
        s.unrolls
    );
    Ok(())
}
