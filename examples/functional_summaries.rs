//! The Sharir–Pnueli "functional approach" to interprocedural demand
//! (paper §2.3), side by side with k-call-string contexts (§7.1).
//!
//! The program below calls a three-deep chain `f1 → f2 → f3` from two call
//! sites with different constants. A 2-call-string policy truncates away
//! exactly the distinguishing call sites, so `f3`'s single context joins
//! both arguments; entry-state-keyed summaries keep them apart and stay
//! exact. The example also shows the summary table at work: re-invoking a
//! procedure on an already-summarized entry is a cache hit, and editing a
//! leaf procedure invalidates only the summaries that can observe it.
//!
//! Run with `cargo run --example functional_summaries`.

use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_core::summaries::SummaryAnalyzer;
use dai_domains::IntervalDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_lang::Stmt;

const SRC: &str = r#"
    function f3(z) { return z; }
    function f2(y) { var r = f3(y); return r; }
    function f1(x) { var r = f2(x); return r; }
    function other(w) { return w * 10; }
    function main() {
        var a = f1(1);
        var b = f1(2);
        var c = other(3);
        return a + b + c;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = lower_program(&parse_program(SRC)?)?;
    let f3_exit = program.by_name("f3").expect("f3").exit();

    // --- k-call-strings: k = 2 merges the two chains at f3. ---
    let mut call_strings = InterAnalyzer::<IntervalDomain>::new(
        program.clone(),
        ContextPolicy::CallString(2),
        "main",
        IntervalDomain::top(),
    );
    println!("2-call-string contexts of f3:");
    for (ctx, state) in call_strings.query_at("f3", f3_exit)? {
        println!("  [{ctx}]  z = {}", state.interval_of("z"));
    }

    // --- functional approach: summaries keyed by entry state. ---
    let mut functional =
        SummaryAnalyzer::<IntervalDomain>::new(program, "main", IntervalDomain::top());
    println!("\nfunctional entries of f3:");
    for (entry, state) in functional.query_at("f3", f3_exit)? {
        println!("  entry {entry}  ⇒  z = {}", state.interval_of("z"));
    }
    // Demand main's exit too, so every procedure (including `other`) has a
    // summary on file before the edit below.
    let main_exit = functional.program().by_name("main").expect("main").exit();
    let _ = functional.query_joined("main", main_exit)?;
    println!(
        "summaries: {} computed, hit rate {:.0}%",
        functional.summary_count(),
        functional.summary_stats().hit_rate() * 100.0
    );

    // --- incremental edits invalidate exactly the observing summaries. ---
    let before = functional.summary_count();
    let ret_edge = functional
        .program()
        .by_name("f3")
        .expect("f3")
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .expect("return edge")
        .id;
    functional.relabel(
        "f3",
        ret_edge,
        Stmt::Assign(
            dai_lang::RETURN_VAR.into(),
            dai_lang::parse_expr("z + 100")?,
        ),
    )?;
    println!(
        "\nafter editing f3: {} of {} summaries survive (only `other`'s are unaffected)",
        functional.summary_count(),
        before
    );
    assert_eq!(
        functional.summary_count(),
        1,
        "exactly `other`'s summary survives"
    );
    let v = functional.query_joined("main", main_exit)?;
    println!(
        "re-queried main exit: a = {}, b = {}",
        v.interval_of("a"),
        v.interval_of("b")
    );
    assert_eq!(
        v.interval_of("a"),
        dai_domains::interval::Interval::constant(101)
    );
    assert_eq!(
        v.interval_of("b"),
        dai_domains::interval::Interval::constant(102)
    );
    Ok(())
}
