//! Context sensitivity in action (§7.1/§7.2): the same helper function is
//! analyzed once per calling context, and the verification of an array
//! access inside it depends on the policy's `k`.
//!
//! Run with `cargo run --example context_sensitivity`.

use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_domains::IntervalDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::{parse_expr, parse_program};

const SRC: &str = "
function get(a, i) { return a[i]; }
function readShort() { var a = [1, 2]; var x = get(a, 1); return x; }
function readLong() { var a = [1, 2, 3, 4, 5]; var x = get(a, 4); return x; }
function main() {
    var u = readShort();
    var v = readLong();
    return u + v;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = lower_program(&parse_program(SRC)?)?;
    // The array access a[i] lives on get's single statement edge.
    let get_cfg = program.by_name("get").expect("get");
    let access_loc = get_cfg.entry();
    let (arr, idx) = (parse_expr("a")?, parse_expr("i")?);

    for (label, policy) in [
        ("context-insensitive (k=0)", ContextPolicy::Insensitive),
        ("1-call-string (k=1)", ContextPolicy::CallString(1)),
    ] {
        let mut analyzer: InterAnalyzer<IntervalDomain> =
            InterAnalyzer::new(program.clone(), policy, "main", IntervalDomain::top());
        println!("== {label} ==");
        let per_ctx = analyzer.query_at("get", access_loc)?;
        for (ctx, state) in &per_ctx {
            let safe = state.array_access_safe(&arr, &idx);
            println!(
                "  context [{ctx}]: a.len ∈ {:?}, i ∈ {}, access safe: {safe}",
                match state.value_of("a") {
                    dai_domains::interval::AbsVal::Arr(ref ab) => ab.len.to_string(),
                    other => other.to_string(),
                },
                state.interval_of("i"),
            );
        }
        let all_safe = per_ctx.iter().all(|(_, s)| s.array_access_safe(&arr, &idx));
        println!("  verified in all contexts: {all_safe}\n");
    }

    // k=0 joins [1,2] with [1..5]: i ∈ [1,4] vs len ∈ [2,5] — cannot
    // verify. k=1 separates the two call sites — verifies both.
    let mut k0: InterAnalyzer<IntervalDomain> = InterAnalyzer::new(
        program.clone(),
        ContextPolicy::Insensitive,
        "main",
        IntervalDomain::top(),
    );
    let unsafe_at_k0 = k0
        .query_at("get", access_loc)?
        .iter()
        .any(|(_, s)| !s.array_access_safe(&arr, &idx));
    assert!(unsafe_at_k0, "k=0 must fail to verify the joined access");

    let mut k1: InterAnalyzer<IntervalDomain> = InterAnalyzer::new(
        program,
        ContextPolicy::CallString(1),
        "main",
        IntervalDomain::top(),
    );
    let all_safe_k1 = k1
        .query_at("get", access_loc)?
        .iter()
        .all(|(_, s)| s.array_access_safe(&arr, &idx));
    assert!(all_safe_k1, "k=1 must verify both call sites");
    println!("k=1 verifies what k=0 cannot — the §7.2 gradient in miniature.");
    Ok(())
}
