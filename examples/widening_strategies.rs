//! Widening strategies and convergence modes (paper §2.3, footnote 4).
//!
//! The paper fixes one strategy for presentation — widen every iteration,
//! converge on `=` — and notes that "the same general idea applies for
//! other widening strategies or checking convergence with ⊑ instead of =".
//! This example runs the same loop under several `FixStrategy`
//! configurations and shows the precision/effort trade:
//!
//! * the paper's strategy converges in few demanded unrollings but widens
//!   the loop counter to `[0, +∞]`;
//! * delaying widening past the trip count pays more unrollings for the
//!   exact invariant `[0, 10]` (hence exactly `10` at exit);
//! * `⊑`-based convergence matches `=` here (interval iterates are
//!   increasing) — its value shows up for domains without canonical forms.
//!
//! Run with `cargo run --example widening_strategies`.

use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::strategy::{Convergence, FixStrategy};
use dai_domains::IntervalDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(
        "function f(n) {
             var i = 0;
             while (i < 10) { i = i + 1; }
             return i;
         }",
    )?;
    let cfg = lower_program(&program)?.cfgs()[0].clone();

    let strategies: &[(&str, FixStrategy)] = &[
        ("paper (∇ always, =)", FixStrategy::PAPER),
        ("delay 3", FixStrategy::delayed(3)),
        ("delay 12 (≥ trip count)", FixStrategy::delayed(12)),
        (
            "delay 12, ⊑-convergence",
            FixStrategy::delayed(12).with_convergence(Convergence::Leq),
        ),
    ];

    println!(
        "{:<28} {:>12} {:>10}  exit interval of i",
        "strategy", "unrollings", "computed"
    );
    for (label, strategy) in strategies {
        let mut analysis =
            FuncAnalysis::with_strategy(cfg.clone(), IntervalDomain::top(), *strategy);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let exit = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats)?;
        println!(
            "{:<28} {:>12} {:>10}  {}",
            label,
            stats.unrolls,
            stats.computed,
            exit.interval_of("i")
        );
    }

    // The trade is real: verify it programmatically.
    let run = |strategy| {
        let mut analysis =
            FuncAnalysis::with_strategy(cfg.clone(), IntervalDomain::top(), strategy);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let exit = analysis
            .query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .expect("query");
        (exit.interval_of("i"), stats.unrolls)
    };
    let (paper_iv, paper_unrolls) = run(FixStrategy::PAPER);
    let (delayed_iv, delayed_unrolls) = run(FixStrategy::delayed(12));
    assert!(paper_iv.contains(1_000_000), "paper strategy widens to +∞");
    assert_eq!(delayed_iv, dai_domains::interval::Interval::constant(10));
    assert!(
        delayed_unrolls > paper_unrolls,
        "precision costs unrollings"
    );
    println!("\nprecision bought: [10,+∞] → [10,10], paid {delayed_unrolls} vs {paper_unrolls} unrollings");
    Ok(())
}
