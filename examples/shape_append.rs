//! The paper's running example (Fig. 1): verify that `append` is
//! memory-safe and returns a well-formed list, using the separation-logic
//! shape domain — and watch the loop converge in one demanded unrolling.
//!
//! Run with `cargo run --example shape_append`.

use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::ShapeDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_lang::RETURN_VAR;
use dai_memo::MemoTable;

const APPEND: &str = "
function append(p, q) {
    if (p == null) { return q; }
    var r = p;
    while (r.next != null) { r = r.next; }
    r.next = q;
    return p;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(APPEND)?;
    let cfg = lower_program(&program)?
        .by_name("append")
        .expect("append")
        .clone();
    println!(
        "Fig. 1 / Fig. 2 CFG:\n{}",
        dai_lang::pretty::cfg_to_string(&cfg)
    );

    // φ₀: both parameters are well-formed, disjoint lists —
    // lseg(p, null) * lseg(q, null), the paper's precondition.
    let phi0 = ShapeDomain::with_lists(&["p", "q"]);
    println!("φ₀ = {phi0}\n");

    let mut analysis = FuncAnalysis::new(cfg, phi0);
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    let exit = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats)?;

    println!("exit state: {exit}\n");
    println!(
        "demanded unrollings of the ℓ3–ℓ4–ℓ3 loop: {}",
        stats.unrolls
    );
    println!(
        "memory-safe (no possible null dereference): {}",
        !exit.may_error()
    );
    println!(
        "returned value is a well-formed list:       {}",
        exit.proves_list(RETURN_VAR)
    );

    assert_eq!(
        stats.unrolls, 1,
        "the paper: converges in one demanded unrolling"
    );
    assert!(!exit.may_error());
    assert!(exit.proves_list(RETURN_VAR));
    println!("\nappend verified, matching §7.2 of the paper.");
    Ok(())
}
