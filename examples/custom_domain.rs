//! Instantiating the framework with a brand-new abstract domain, from
//! scratch, in one file — the paper's §7.1 claim made concrete:
//!
//! > "the effort required to instantiate the framework to a new abstract
//! > domain is comparable to the effort required to do so in a classical
//! > abstract interpreter framework. The required module signature is
//! > essentially the abstract interpreter signature ⟨Σ♯, φ₀, ⟦·⟧♯, ⊑, ⊔, ∇⟩."
//!
//! The domain below is *parity* (even/odd per variable) — about a hundred
//! lines including its expression evaluator. Implementing the
//! [`AbstractDomain`] trait is all it takes: the same DAIG machinery then
//! provides demand-driven queries, incremental edits, demanded unrolling,
//! and memoization for it, unchanged.
//!
//! Run with `cargo run --example custom_domain`.

use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::{AbstractDomain, CallSite};
use dai_lang::cfg::lower_program;
use dai_lang::interp::{ConcreteState, Value};
use dai_lang::parser::{parse_block, parse_program};
use dai_lang::{BinOp, Expr, Stmt, Symbol, UnOp, RETURN_VAR};
use dai_memo::MemoTable;
use std::collections::BTreeMap;
use std::fmt;

/// Parity of one variable: a bitset over {even, odd}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Parity(u8); // bit 1 = even, bit 2 = odd

impl Parity {
    const BOT: Parity = Parity(0);
    const EVEN: Parity = Parity(1);
    const ODD: Parity = Parity(2);
    const TOP: Parity = Parity(3);

    fn of(n: i64) -> Parity {
        if n.rem_euclid(2) == 0 {
            Parity::EVEN
        } else {
            Parity::ODD
        }
    }

    fn join(self, o: Parity) -> Parity {
        Parity(self.0 | o.0)
    }

    fn leq(self, o: Parity) -> bool {
        self.0 & !o.0 == 0
    }

    fn add(self, o: Parity) -> Parity {
        let mut out = Parity::BOT;
        for (a, b, r) in [
            (Parity::EVEN, Parity::EVEN, Parity::EVEN),
            (Parity::EVEN, Parity::ODD, Parity::ODD),
            (Parity::ODD, Parity::EVEN, Parity::ODD),
            (Parity::ODD, Parity::ODD, Parity::EVEN),
        ] {
            if a.leq(self) && b.leq(o) {
                out = out.join(r);
            }
        }
        out
    }

    fn mul(self, o: Parity) -> Parity {
        let mut out = Parity::BOT;
        for (a, b, r) in [
            (Parity::EVEN, Parity::EVEN, Parity::EVEN),
            (Parity::EVEN, Parity::ODD, Parity::EVEN),
            (Parity::ODD, Parity::EVEN, Parity::EVEN),
            (Parity::ODD, Parity::ODD, Parity::ODD),
        ] {
            if a.leq(self) && b.leq(o) {
                out = out.join(r);
            }
        }
        out
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Parity::BOT => write!(f, "⊥"),
            Parity::EVEN => write!(f, "even"),
            Parity::ODD => write!(f, "odd"),
            _ => write!(f, "⊤"),
        }
    }
}

/// The parity domain: `⊥` or parities for the integer-valued variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ParityDomain {
    Bottom,
    Env(BTreeMap<Symbol, Parity>),
}

impl ParityDomain {
    fn top() -> ParityDomain {
        ParityDomain::Env(BTreeMap::new())
    }

    fn parity_of(&self, var: &str) -> Parity {
        match self {
            ParityDomain::Bottom => Parity::BOT,
            ParityDomain::Env(env) => env.get(&Symbol::new(var)).copied().unwrap_or(Parity::TOP),
        }
    }
}

impl fmt::Display for ParityDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParityDomain::Bottom => write!(f, "⊥"),
            ParityDomain::Env(env) => {
                write!(f, "{{")?;
                for (i, (k, v)) in env.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parity of an expression; `None` means "not (provably) an integer".
fn eval(env: &BTreeMap<Symbol, Parity>, e: &Expr) -> Option<Parity> {
    match e {
        Expr::Int(n) => Some(Parity::of(*n)),
        Expr::Var(x) => Some(env.get(x).copied().unwrap_or(Parity::TOP)),
        Expr::Unary(UnOp::Neg, e) => eval(env, e), // negation preserves parity
        Expr::Binary(BinOp::Add, l, r) | Expr::Binary(BinOp::Sub, l, r) => {
            Some(eval(env, l)?.add(eval(env, r)?))
        }
        Expr::Binary(BinOp::Mul, l, r) => Some(eval(env, l)?.mul(eval(env, r)?)),
        _ => None,
    }
}

impl AbstractDomain for ParityDomain {
    fn bottom() -> Self {
        ParityDomain::Bottom
    }

    fn is_bottom(&self) -> bool {
        matches!(self, ParityDomain::Bottom)
    }

    fn entry_default(_params: &[Symbol]) -> Self {
        ParityDomain::top()
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (ParityDomain::Bottom, x) | (x, ParityDomain::Bottom) => x.clone(),
            (ParityDomain::Env(a), ParityDomain::Env(b)) => {
                let mut env = BTreeMap::new();
                for (k, va) in a {
                    if let Some(vb) = b.get(k) {
                        env.insert(k.clone(), va.join(*vb));
                    }
                }
                ParityDomain::Env(env)
            }
        }
    }

    fn widen(&self, next: &Self) -> Self {
        self.join(next) // finite height: join converges by itself
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (ParityDomain::Bottom, _) => true,
            (_, ParityDomain::Bottom) => false,
            (ParityDomain::Env(a), ParityDomain::Env(b)) => b
                .iter()
                .all(|(k, vb)| a.get(k).map(|va| va.leq(*vb)).unwrap_or(false)),
        }
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        let ParityDomain::Env(env) = self else {
            return ParityDomain::Bottom;
        };
        match stmt {
            Stmt::Assign(x, e) => {
                let p = eval(env, e);
                let mut env = env.clone();
                match p {
                    Some(p) if p != Parity::TOP => {
                        env.insert(x.clone(), p);
                    }
                    _ => {
                        env.remove(x);
                    }
                }
                ParityDomain::Env(env)
            }
            Stmt::Call { lhs: Some(x), .. } => {
                let mut env = env.clone();
                env.remove(x);
                ParityDomain::Env(env)
            }
            _ => self.clone(),
        }
    }

    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self {
        let ParityDomain::Env(env) = self else {
            return ParityDomain::Bottom;
        };
        let mut out = BTreeMap::new();
        for (p, a) in callee_params.iter().zip(site.args) {
            if let Some(par) = eval(env, a) {
                if par != Parity::TOP {
                    out.insert(p.clone(), par);
                }
            }
        }
        ParityDomain::Env(out)
    }

    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self {
        if self.is_bottom() || callee_exit.is_bottom() {
            return ParityDomain::Bottom;
        }
        let (Some(x), ParityDomain::Env(cenv)) = (site.lhs, callee_exit) else {
            return self.clone();
        };
        let ParityDomain::Env(env) = self else {
            return ParityDomain::Bottom;
        };
        let mut env = env.clone();
        match cenv.get(&Symbol::new(RETURN_VAR)) {
            Some(p) => {
                env.insert(x.clone(), *p);
            }
            None => {
                env.remove(x);
            }
        }
        ParityDomain::Env(env)
    }

    fn models(&self, concrete: &ConcreteState) -> bool {
        let ParityDomain::Env(env) = self else {
            return false;
        };
        concrete.env.iter().all(|(x, v)| match (env.get(x), v) {
            (None, _) => true,
            (Some(p), Value::Int(n)) => Parity::of(*n).leq(*p),
            (Some(_), _) => false,
        })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop that adds 2 each iteration: parity of `i` is invariant even
    // though its value is unbounded — exactly what a finite-height custom
    // domain can prove and an interval domain cannot.
    let program = parse_program(
        "function f(n) {
             var i = 0;
             while (i < n) { i = i + 2; }
             return i;
         }",
    )?;
    let cfg = lower_program(&program)?.cfgs()[0].clone();
    let mut analysis = FuncAnalysis::new(cfg, ParityDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();

    let exit = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats)?;
    println!("exit state: {exit}");
    println!(
        "work: {} computed, {} unrollings (finite-height ⇒ widening = join)",
        stats.computed, stats.unrolls
    );
    assert_eq!(
        exit.parity_of("i"),
        Parity::EVEN,
        "i stays even through the loop"
    );

    // Demanded AI comes for free: edit the loop body and re-query.
    let head = analysis.cfg().loop_heads()[0];
    let back = analysis.cfg().back_edge(head).expect("loop back edge");
    analysis.splice(back, &parse_block("i = i + 1;")?)?;
    let mut stats2 = QueryStats::default();
    let exit2 = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats2)?;
    println!("after inserting `i = i + 1;` in the body: {exit2}");
    assert_eq!(
        exit2.parity_of("i"),
        Parity::TOP,
        "parity now alternates: ⊤"
    );
    Ok(())
}
