//! Relational invariants with the from-scratch octagon domain: prove that
//! two loop counters stay related (`j ≤ i`), something the interval
//! domain cannot express.
//!
//! Run with `cargo run --example octagon_loop`.

use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::{IntervalDomain, OctagonDomain};
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;

const SRC: &str = "
function f(n) {
    var i = 0;
    var j = 0;
    while (i < n) {
        i = i + 1;
        if (j < i) { j = j + 1; }
    }
    return j - i;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = lower_program(&parse_program(SRC)?)?.cfgs()[0].clone();

    // Octagon: captures j - i <= 0 through the loop.
    let mut oct = FuncAnalysis::new(cfg.clone(), OctagonDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    let exit_oct = oct.query_exit(&mut memo, &mut IntraResolver, &mut stats)?;
    println!("octagon exit:  {exit_oct}");
    println!(
        "octagon proves j - i <= 0: {}",
        exit_oct.entails_diff_le("j", "i", 0)
    );
    println!(
        "octagon bound on __ret = j - i: {}",
        exit_oct.interval_of(dai_lang::RETURN_VAR)
    );

    // Interval: loses the relation entirely.
    let mut itv = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo2 = MemoTable::new();
    let mut stats2 = QueryStats::default();
    let exit_itv = itv.query_exit(&mut memo2, &mut IntraResolver, &mut stats2)?;
    println!("\ninterval exit: {exit_itv}");
    println!(
        "interval bound on __ret:       {}",
        exit_itv.interval_of(dai_lang::RETURN_VAR)
    );

    assert!(exit_oct.entails_diff_le("j", "i", 0));
    // The octagon-derived return bound excludes positive values; the
    // interval one does not.
    assert!(!exit_oct.interval_of(dai_lang::RETURN_VAR).contains(1));
    assert!(exit_itv.interval_of(dai_lang::RETURN_VAR).contains(1));
    println!("\nthe relational octagon domain proves what intervals cannot.");
    Ok(())
}
