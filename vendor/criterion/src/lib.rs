//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the benchmarking surface the workspace uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BatchSize`, `BenchmarkId`, and the `criterion_group!`
//! / `criterion_main!` macros — as a plain wall-clock harness: each
//! benchmark is warmed up once, then timed over an adaptive number of
//! iterations, and mean/min latency is printed as
//! `bench <name> ... <mean> per iter (<n> iters)`. There are no reports,
//! no statistics beyond mean/min, and no regression tracking.

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement budget per benchmark. Overridable with the
/// `CRITERION_BUDGET_MS` environment variable (useful to keep `cargo bench`
/// fast in CI).
fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// How batched inputs are grouped (accepted for source compatibility; the
/// harness always materializes one input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier, printable as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id from just a parameter (grouped benches prepend the group
    /// name when printing).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    name: String,
}

impl Bencher {
    fn report(&self, iters: u64, total: Duration, min: Duration) {
        let mean = total / (iters.max(1) as u32);
        println!(
            "bench {:<56} {:>12.3?} per iter, {:>12.3?} min ({iters} iters)",
            self.name, mean, min
        );
    }

    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup (also primes caches the way criterion's warmup phase does).
        let _ = routine();
        let budget = budget();
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        while total < budget && iters < 100_000 {
            let t0 = Instant::now();
            let _ = routine();
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
        }
        self.report(iters, total, min);
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        let budget = budget();
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        while total < budget && iters < 100_000 {
            let input = setup();
            let t0 = Instant::now();
            let _ = routine(input);
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
        }
        self.report(iters, total, min);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the adaptive budget governs the
    /// sample count instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            name: format!("{}/{id}", self.name),
        };
        f(&mut b);
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            name: format!("{}/{id}", self.name),
        };
        f(&mut b, input);
    }

    /// Ends the group (no-op; criterion requires it, so we accept it).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh harness.
    pub fn new() -> Criterion {
        Criterion {}
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            name: id.to_string(),
        };
        f(&mut b);
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// Declares a group-runner function invoking each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching upstream's `criterion::black_box` (pre-1.66 path);
/// the workspace imports `std::hint::black_box` directly, but keep this for
/// compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::new();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &k| {
            b.iter_batched(|| k, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn ids_render_like_paths() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
