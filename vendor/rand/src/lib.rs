//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the (small) API surface the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across runs and
//! platforms, which is all the §7.3 workload generator requires (the
//! *stream* need not match upstream `rand`, only be fixed per seed).

pub mod rngs {
    /// A deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the xoshiro state; the
        // all-zero state is unreachable because SplitMix64 is a bijection
        // composed with non-zero increments.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A type samplable uniformly from the generator's full range (subset of
/// `rand::distributions::Standard` support).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample(rng: &mut StdRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Types drawable uniformly from a bounded range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

/// Uniform draw below `n` via the widening-multiply construction (no
/// modulo bias).
fn uniform_below(rng: &mut StdRng, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// A range samplable uniformly; the element type parameter drives
/// inference exactly like upstream's `SampleRange<T>`, so integer literals
/// in `gen_range(0..10)` adopt the caller's expected type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Draws one value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u: usize = r.gen_range(0usize..3);
            assert!(u < 3);
            let w: u32 = r.gen_range(1u32..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_gen_bool_plausible() {
        let mut r = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..2000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.25) {
                trues += 1;
            }
        }
        // 25% ± generous slack.
        assert!((300..700).contains(&trues), "trues = {trues}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u64 = r.gen_range(5u64..5);
    }
}
