//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the property-testing surface the workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/`any` strategies,
//! `prop::collection::vec`, `prop::sample::select`, string generation for
//! pattern literals, and the `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream are deliberate and test-compatible:
//! generation is deterministic per test name (no persisted failure seeds),
//! there is **no shrinking** (failures report the panicking case as-is),
//! and string "regex" strategies only honor a trailing `{lo,hi}` length
//! bound (the workspace uses them solely for parser-robustness fuzz, where
//! any character soup is a valid input).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    use super::*;

    /// The generator threaded through strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A generator seeded deterministically from a label (the test
        /// name), so every `cargo test` run explores the same cases.
        pub fn deterministic(label: &str) -> TestRng {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            label.hash(&mut h);
            TestRng(StdRng::seed_from_u64(h.finish() ^ 0xDA1D_A1DA))
        }

        pub(crate) fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] for boxing.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union; `alternatives` must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.rng().gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String generation from a pattern literal. Only a trailing `{lo,hi}`
/// repetition bound is honored; the generated characters are a soup of
/// ASCII-printable and a few multibyte code points, which is exactly what
/// the parser-robustness properties need.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_bounds(self).unwrap_or((0, 64));
        let len = rng.rng().gen_range(lo..=hi.max(lo));
        const SOUP: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '(', ')', '{', '}', '[', ']', ';', ',',
            '.', '=', '<', '>', '+', '-', '*', '/', '%', '!', '&', '|', '"', '\'', '\\', '_', '#',
            '?', ':', '@', '~', '^', 'é', 'λ', '⊥', '∇', '界',
        ];
        (0..len)
            .map(|_| SOUP[rng.rng().gen_range(0..SOUP.len())])
            .collect()
    }
}

fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let (_, bounds) = body.rsplit_once('{')?;
    let (lo, hi) = bounds.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical "any value" strategy (subset of upstream's
/// `Arbitrary`).
pub trait ArbitraryValue: Sized + 'static {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.rng().gen::<bool>()
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> u64 {
        rng.rng().gen::<u64>()
    }
}

impl ArbitraryValue for i64 {
    fn arbitrary_value(rng: &mut TestRng) -> i64 {
        rng.rng().gen::<i64>()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// A strategy for vectors with element strategy `element` and a
        /// length drawn from `len` (half-open, as upstream).
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `prop::collection::vec(element, lo..hi)`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    rng.rng().gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Uniform choice from a fixed list.
        pub struct Select<T>(Vec<T>);

        /// `prop::sample::select(options)`; `options` must be non-empty.
        pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs options");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.rng().gen_range(0..self.0.len())].clone()
            }
        }
    }
}

/// Asserts a condition inside a property (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The property-test block macro: each contained function runs
/// `config.cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ($($arg,)+) = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                    let run = || -> () { $body };
                    if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {} of {} failed for `{}` (no shrinking in vendored proptest)",
                            case + 1, config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, ArbitraryValue, BoxedStrategy,
        Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t1");
        let s = (0i64..10, 5usize..6).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..20).contains(&a) && a % 2 == 0);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = TestRng::deterministic("t2");
        let s = prop_oneof![Just(1), Just(2), 10i32..20];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng).min(10));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&10));
    }

    #[test]
    fn vec_and_select_respect_their_inputs() {
        let mut rng = TestRng::deterministic("t3");
        let v = prop::collection::vec(0u32..5, 2..6);
        for _ in 0..50 {
            let xs = v.generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
        let sel = prop::sample::select(vec!["a", "b"]);
        for _ in 0..20 {
            assert!(["a", "b"].contains(&sel.generate(&mut rng)));
        }
    }

    #[test]
    fn string_pattern_honors_length_bounds() {
        let mut rng = TestRng::deterministic("t4");
        let s: &'static str = "\\PC{0,12}";
        for _ in 0..100 {
            let out = Strategy::generate(&s, &mut rng);
            assert!(out.chars().count() <= 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_form_runs(x in 0u64..100, ys in prop::collection::vec(0i64..5, 0..3)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 5).count(), 0);
        }
    }
}
