//! The observability acceptance gate: a traced octagon sweep served over
//! a unix socket must let a client reconstruct the engine's batching
//! profile *from spans alone* — the profile PRs 4/5 established with
//! counters (one session-lock acquisition and one union-cone walk per
//! same-function batch) must be readable off the wire-exported trace:
//!
//! * a sorted sweep over a five-function program produces **exactly 5**
//!   `engine.session_lock` spans and **exactly 5** `engine.cone_walk`
//!   spans;
//! * every cone walk is time-enclosed by exactly one session-lock span,
//!   and every `engine.cells` evaluation span by exactly one cone walk
//!   (so locks transitively enclose their cell-evaluation children);
//! * the spans carry real thread attribution (`dai-worker-{i}` names);
//! * the dump survives both export formats: the binary `TRCE` frame
//!   decodes back byte-equal, and the Chrome JSON re-parses with the
//!   same span/instant counts.
//!
//! This file is its own test binary on purpose: the trace recorder is
//! process-global, and this is the one test that asserts exact span
//! counts between an enable and a drain.

use dai_domains::OctagonDomain;
use dai_engine::{Engine, EngineConfig, Service};
use dai_lang::Loc;
use dai_rpc::{Addr, Client, Server};
use dai_trace::RecordKind;
use std::sync::Arc;

/// Five independent functions, so a sorted whole-program sweep coalesces
/// into five same-function batches — one lock, one cone walk each.
const FIVE_FUNCS: &str = "\
    function a(n) { var i = 0; var s = 0; \
        while (i < 4) { s = s + i; i = i + 1; } return s; } \
    function b(n) { var j = 0; while (j < 3) { j = j + 1; } return j; } \
    function c(n) { var x = 1; var y = 2; return x + y; } \
    function d(n) { var k = 0; var t = 5; while (k < t) { k = k + 2; } return k; } \
    function e(n) { var u = 7; return u + n; }";

fn scratch(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "dai-trace-flow-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn traced_sweep_over_socket_reconstructs_batch_profile_from_spans() {
    if !dai_trace::TraceConfig::probes_compiled() {
        eprintln!("trace_flow: probes compiled out; nothing to assert");
        return;
    }
    let engine: Arc<Engine<OctagonDomain>> = Arc::new(Engine::with_config(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    }));
    let server = Server::bind(&Addr::Unix(scratch("sweep")), engine).unwrap();
    let client: Client<OctagonDomain> = Client::connect(&server.addr().to_string()).unwrap();
    let session = client.open("flow", FIVE_FUNCS).unwrap();

    // Every location of every function, sorted — the same shape the
    // REPL's `sweep` and the fig10 harness use.
    let program = server.engine().program_of(session).unwrap();
    let mut targets: Vec<(String, Loc)> = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    assert_eq!(
        program.cfgs().len(),
        5,
        "the fixture must have exactly five functions"
    );

    let _ = dai_trace::drain(); // discard anything recorded before the gate
    client.trace_enable().unwrap();
    for answer in client.query_sweep(session, &targets) {
        answer.unwrap();
    }
    let dump = client.trace_dump().unwrap();
    client.trace_disable().unwrap();

    let label_of = |name: &str| dump.labels.iter().position(|l| l == name).map(|i| i as u32);
    let spans_of = |name: &str| -> Vec<&dai_trace::Record> {
        let Some(idx) = label_of(name) else {
            return Vec::new();
        };
        dump.records
            .iter()
            .filter(|r| r.kind == RecordKind::Span && r.label == idx)
            .collect()
    };

    // The PR 4/5 profile, from spans alone: five batches, five locks,
    // five union-cone walks.
    let locks = spans_of("engine.session_lock");
    let walks = spans_of("engine.cone_walk");
    assert_eq!(locks.len(), 5, "one session-lock span per batch: {dump:?}");
    assert_eq!(walks.len(), 5, "one cone-walk span per batch: {dump:?}");

    // Batches are serialized by the session lock: lock spans never
    // overlap one another.
    for (i, a) in locks.iter().enumerate() {
        for b in locks.iter().skip(i + 1) {
            assert!(
                a.end_ns <= b.start_ns || b.end_ns <= a.start_ns,
                "session-lock spans overlap: {a:?} vs {b:?}"
            );
        }
    }

    // Every cone walk sits inside exactly one lock span, and every cell
    // evaluation inside exactly one cone walk — the nesting a flame
    // viewer renders, checked numerically.
    let enclosed_by = |inner: &dai_trace::Record, outers: &[&dai_trace::Record]| {
        outers
            .iter()
            .filter(|o| o.start_ns <= inner.start_ns && inner.end_ns <= o.end_ns)
            .count()
    };
    for walk in &walks {
        assert_eq!(
            enclosed_by(walk, &locks),
            1,
            "cone walk not enclosed by exactly one lock: {walk:?}"
        );
    }
    let cells = spans_of("engine.cells");
    assert!(!cells.is_empty(), "a cold sweep must evaluate cells");
    for cell in &cells {
        assert_eq!(
            enclosed_by(cell, &walks),
            1,
            "cell evaluation not enclosed by exactly one cone walk: {cell:?}"
        );
    }

    // Thread attribution is real: batch leaders run on named pool
    // workers, and the index tables resolve every record.
    for r in &dump.records {
        assert!((r.label as usize) < dump.labels.len());
        assert!((r.thread as usize) < dump.threads.len());
        // Every engine-owned thread is named at spawn; a `thread-{id}`
        // here is the recorder's fallback for an unnamed thread, i.e. a
        // spawn site that lost its name.
        let thread = dump.thread_of(r);
        assert!(
            !thread.starts_with("thread-"),
            "record attributed to unnamed thread {thread:?}"
        );
    }
    for lock in &locks {
        let thread = &dump.threads[lock.thread as usize];
        assert!(
            thread.starts_with("dai-worker-"),
            "batch served off-pool on thread {thread:?}"
        );
    }
    // The RPC layer traced its side of the exchange too.
    assert!(
        label_of("rpc.dispatch").is_some(),
        "rpc dispatch spans missing from {:?}",
        dump.labels
    );

    // Both export formats survive a roundtrip of this very dump.
    let frame = dai_persist::encode_trace_frame(&dump);
    assert_eq!(
        dai_persist::decode_trace_frame(&frame).expect("binary dump decodes"),
        dump
    );
    let json = dai_trace::chrome_trace_json(&dump);
    let summary = dai_trace::validate_chrome_trace(&json).expect("chrome dump re-parses");
    let span_count = dump
        .records
        .iter()
        .filter(|r| r.kind == RecordKind::Span)
        .count();
    assert_eq!(summary.complete, span_count, "one X event per span");

    server.shutdown();
}
