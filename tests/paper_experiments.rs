//! End-to-end checks that the paper's evaluation artifacts regenerate with
//! the reported *shape* (see EXPERIMENTS.md for the full record):
//!
//! * E1–E3 (Fig. 10): the latency ordering batch > incremental >
//!   demand-driven > incremental+demand-driven holds on the synthetic
//!   workload, with the combined configuration best at the tail;
//! * E4 (§7.2 intervals): the context-sensitivity precision gradient;
//! * E5 (§7.2 shapes): list procedures verify; append needs one unrolling.

use dai_bench::buckets::run_buckets;
use dai_bench::harness::{run_fig10, summarize, Fig10Params};
use dai_bench::lists::check_procedure;
use dai_core::driver::Config;
use dai_core::interproc::ContextPolicy;

#[test]
fn fig10_latency_ordering_holds() {
    // Small but meaningful run: 60 edits x 2 trials, 3 queries per edit.
    let params = Fig10Params {
        edits: 60,
        trials: 2,
        queries_per_edit: 3,
    };
    let samples = run_fig10(params);
    let rows = summarize(&samples);
    let mean_of = |c: Config| {
        rows.iter()
            .find(|r| r.config == c)
            .expect("config present")
            .mean
    };
    let p95_of = |c: Config| {
        rows.iter()
            .find(|r| r.config == c)
            .expect("config present")
            .p95
    };
    // The paper's headline ordering (Fig. 10 table).
    assert!(
        mean_of(Config::Batch) > mean_of(Config::Incremental),
        "batch {:?} vs incr {:?}",
        mean_of(Config::Batch),
        mean_of(Config::Incremental)
    );
    assert!(
        mean_of(Config::Incremental) > mean_of(Config::IncrementalDemandDriven),
        "incr {:?} vs incr+dd {:?}",
        mean_of(Config::Incremental),
        mean_of(Config::IncrementalDemandDriven)
    );
    assert!(
        mean_of(Config::DemandDriven) > mean_of(Config::IncrementalDemandDriven),
        "dd {:?} vs incr+dd {:?}",
        mean_of(Config::DemandDriven),
        mean_of(Config::IncrementalDemandDriven)
    );
    // Tail latency: the combined configuration wins there too.
    assert!(p95_of(Config::IncrementalDemandDriven) <= p95_of(Config::Batch));
    assert!(p95_of(Config::IncrementalDemandDriven) <= p95_of(Config::DemandDriven));
}

#[test]
fn buckets_context_sensitivity_gradient() {
    let k0 = run_buckets(ContextPolicy::Insensitive);
    let k1 = run_buckets(ContextPolicy::CallString(1));
    let k2 = run_buckets(ContextPolicy::CallString(2));
    // Paper: 4/18 (22%) -> 71/74 (96%) -> 85/85 (100%).
    assert_eq!(k2.verified, k2.total, "k=2 verifies everything: {k2:?}");
    assert!(
        k1.ratio() > 0.85 && k1.verified < k1.total,
        "k=1 near-complete: {k1:?}"
    );
    assert!(
        k0.ratio() < 0.5 && k0.verified > 0,
        "k=0 mostly fails: {k0:?}"
    );
    assert!(
        k0.total < k1.total && k1.total <= k2.total,
        "context multiplication"
    );
}

#[test]
fn shape_verification_results() {
    let append = check_procedure("append", true);
    assert!(append.memory_safe);
    assert_eq!(append.returns_list, Some(true));
    assert_eq!(
        append.unrollings, 1,
        "paper: one demanded unrolling: {append:?}"
    );
    for name in ["foreach", "cons", "tail"] {
        let c = check_procedure(name, true);
        assert!(c.memory_safe, "{c:?}");
        assert_eq!(c.returns_list, Some(true), "{c:?}");
    }
    let idx = check_procedure("indexof", false);
    assert!(idx.memory_safe, "{idx:?}");
}

#[test]
fn buckets_functional_extension_verifies_everything() {
    // E7 (extension): the §2.3 functional approach matches k=2's perfect
    // score with summary sharing (one fewer unit than per-context k=2).
    let f = dai_bench::buckets::run_buckets_functional();
    assert_eq!(f.verified, f.total);
    let k2 = run_buckets(ContextPolicy::CallString(2));
    assert!(f.total <= k2.total);
}
