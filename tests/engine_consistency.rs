//! From-scratch consistency of the concurrent engine (extends
//! `from_scratch_consistency.rs` to `dai-engine`): after an arbitrary
//! interleaving of edits and queries served through the engine's request
//! stream, every answer — at **every worker count 1..=8** — equals the
//! result of the sequential batch oracle (`dai_core::batch`,
//! Theorem 6.1) on the current program. Answers are additionally compared
//! *across* worker counts, which must be bit-identical: parallel frontier
//! evaluation applies the same `apply_ready` computations to the same
//! inputs, only in a different order.

use dai_bench::workload::Workload;
use dai_core::batch::batch_analyze;
use dai_core::driver::ProgramEdit;
use dai_core::query::IntraResolver;
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain};
use dai_engine::{Engine, Request, Response, SessionId, Ticket};
use dai_lang::cfg::lower_program;
use dai_lang::{parse_program, Symbol};
use dai_persist::PersistDomain;

const SEED_PROGRAM: &str = "function main() { var x0 = 0; return x0; }";

fn initial_program() -> dai_lang::cfg::LoweredProgram {
    lower_program(&parse_program(SEED_PROGRAM).unwrap()).unwrap()
}

/// Runs one randomized edit/query script through an engine with `workers`
/// workers, asserting every answer against the batch oracle; returns the
/// full answer trace for cross-worker-count comparison.
fn run_script<D: PersistDomain>(workers: usize, seed: u64, steps: usize) -> Vec<D> {
    let engine: Engine<D> = Engine::new(workers);
    let session = engine.open_session(format!("seed-{seed}"), initial_program());
    let mut gen = Workload::new(seed);
    let mut trace = Vec::new();
    for step in 0..steps {
        // Random call-free structured edit at a random edge.
        let cfg = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .clone();
        let edges: Vec<_> = cfg.edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        engine
            .request(Request::Edit {
                session,
                edit: ProgramEdit::Insert {
                    func: Symbol::new("main"),
                    edge,
                    block,
                },
            })
            .unwrap_or_else(|e| panic!("workers {workers} seed {seed} step {step}: edit: {e}"));
        // Random query, checked against a from-scratch batch run of the
        // *current* program.
        let cfg = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .clone();
        let locs = cfg.locs();
        let loc = locs[gen.pick_index(locs.len())];
        let answer = engine
            .query(session, "main", loc)
            .unwrap_or_else(|e| panic!("workers {workers} seed {seed} step {step}: query: {e}"));
        let oracle = batch_analyze(&cfg, D::entry_default(cfg.params()), &mut IntraResolver)
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: oracle: {e}"));
        assert_eq!(
            answer, oracle[&loc],
            "workers {workers} seed {seed} step {step}: engine answer at {loc} \
             differs from the batch oracle"
        );
        trace.push(answer);
    }
    // Final sweep: every location of the final program.
    let cfg = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    let oracle = batch_analyze(&cfg, D::entry_default(cfg.params()), &mut IntraResolver).unwrap();
    for loc in cfg.locs() {
        let answer = engine.query(session, "main", loc).unwrap();
        assert_eq!(
            answer, oracle[&loc],
            "workers {workers} seed {seed}: final sweep at {loc}"
        );
        trace.push(answer);
    }
    trace
}

#[test]
fn interval_engine_matches_batch_oracle_at_every_worker_count() {
    for seed in [0xE11, 0xE12] {
        let reference = run_script::<IntervalDomain>(1, seed, 12);
        for workers in 2..=8 {
            let trace = run_script::<IntervalDomain>(workers, seed, 12);
            assert_eq!(
                trace, reference,
                "seed {seed}: {workers}-worker trace differs from 1-worker trace"
            );
        }
    }
}

#[test]
fn octagon_engine_matches_batch_oracle_at_every_worker_count() {
    for seed in [0xE21] {
        let reference = run_script::<OctagonDomain>(1, seed, 8);
        for workers in [2, 4, 8] {
            let trace = run_script::<OctagonDomain>(workers, seed, 8);
            assert_eq!(
                trace, reference,
                "seed {seed}: {workers}-worker trace differs from 1-worker trace"
            );
        }
    }
}

#[test]
fn concurrent_sessions_all_match_the_oracle() {
    // Eight sessions evolve independently (distinct seeds); their queries
    // are fired concurrently through the async request stream and every
    // in-flight answer must match each session's own oracle.
    let engine: Engine<IntervalDomain> = Engine::new(4);
    let mut sessions: Vec<(SessionId, Workload)> = (0..8u64)
        .map(|i| {
            (
                engine.open_session(format!("c{i}"), initial_program()),
                Workload::new(0xC0 + i),
            )
        })
        .collect();
    for _round in 0..6 {
        // Apply one random edit per session (serialized per session by the
        // engine; concurrent across sessions).
        let edit_tickets: Vec<Ticket<IntervalDomain>> = sessions
            .iter_mut()
            .map(|(s, gen)| {
                let cfg = engine
                    .program_of(*s)
                    .unwrap()
                    .by_name("main")
                    .unwrap()
                    .clone();
                let edges: Vec<_> = cfg.edges().map(|e| e.id).collect();
                let edge = edges[gen.pick_index(edges.len())];
                let block = gen.random_block_no_calls();
                engine.submit(Request::Edit {
                    session: *s,
                    edit: ProgramEdit::Insert {
                        func: Symbol::new("main"),
                        edge,
                        block,
                    },
                })
            })
            .collect();
        for t in edit_tickets {
            assert!(matches!(t.wait().unwrap(), Response::Edited(_)));
        }
        // Fire one query per session concurrently, then check each against
        // its own batch oracle.
        let targets: Vec<(SessionId, dai_lang::Cfg, dai_lang::Loc)> = sessions
            .iter_mut()
            .map(|(s, gen)| {
                let cfg = engine
                    .program_of(*s)
                    .unwrap()
                    .by_name("main")
                    .unwrap()
                    .clone();
                let locs = cfg.locs();
                let loc = locs[gen.pick_index(locs.len())];
                (*s, cfg, loc)
            })
            .collect();
        let query_tickets: Vec<Ticket<IntervalDomain>> = targets
            .iter()
            .map(|(s, _, loc)| {
                engine.submit(Request::Query {
                    session: *s,
                    func: "main".to_string(),
                    loc: *loc,
                })
            })
            .collect();
        for ((s, cfg, loc), t) in targets.iter().zip(query_tickets) {
            let answer = t.wait().unwrap().into_state().unwrap();
            let oracle = batch_analyze(
                cfg,
                IntervalDomain::entry_default(cfg.params()),
                &mut IntraResolver,
            )
            .unwrap();
            assert_eq!(answer, oracle[loc], "session {s} at {loc}");
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.sessions, 8);
    assert_eq!(stats.queries, 48);
    assert_eq!(stats.edits, 48);
}
