//! From-scratch consistency of the concurrent engine (extends
//! `from_scratch_consistency.rs` to `dai-engine`): after an arbitrary
//! interleaving of edits and queries served through the engine's request
//! stream, every answer — at **every worker count 1..=8** — equals the
//! result of the sequential batch oracle (`dai_core::batch`,
//! Theorem 6.1) on the current program. Answers are additionally compared
//! *across* worker counts, which must be bit-identical: parallel frontier
//! evaluation applies the same `apply_ready` computations to the same
//! inputs, only in a different order.

use dai_bench::workload::Workload;
use dai_core::batch::batch_analyze;
use dai_core::driver::ProgramEdit;
use dai_core::interproc::ContextPolicy;
use dai_core::query::IntraResolver;
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain};
use dai_engine::{Engine, EngineConfig, Request, ResolverChoice, Response, SessionId, Ticket};
use dai_lang::cfg::lower_program;
use dai_lang::{parse_program, Loc, Symbol};
use dai_persist::PersistDomain;
use proptest::prelude::*;

const SEED_PROGRAM: &str = "function main() { var x0 = 0; return x0; }";

fn initial_program() -> dai_lang::cfg::LoweredProgram {
    lower_program(&parse_program(SEED_PROGRAM).unwrap()).unwrap()
}

/// Runs one randomized edit/query script through an engine with `workers`
/// workers under `transfer`, asserting every answer against the batch
/// oracle; returns the full answer trace for cross-worker-count (and
/// cross-transfer-mode) comparison.
fn run_script<D: PersistDomain>(
    workers: usize,
    seed: u64,
    steps: usize,
    transfer: dai_core::TransferMode,
) -> Vec<D> {
    let engine: Engine<D> = Engine::with_config(EngineConfig {
        workers,
        transfer,
        ..EngineConfig::default()
    });
    let session = engine.open_session(format!("seed-{seed}"), initial_program());
    let mut gen = Workload::new(seed);
    let mut trace = Vec::new();
    for step in 0..steps {
        // Random call-free structured edit at a random edge.
        let cfg = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .clone();
        let edges: Vec<_> = cfg.edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        engine
            .request(Request::Edit {
                session,
                edit: ProgramEdit::Insert {
                    func: Symbol::new("main"),
                    edge,
                    block,
                },
            })
            .unwrap_or_else(|e| panic!("workers {workers} seed {seed} step {step}: edit: {e}"));
        // Random query, checked against a from-scratch batch run of the
        // *current* program.
        let cfg = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .clone();
        let locs = cfg.locs();
        let loc = locs[gen.pick_index(locs.len())];
        let answer = engine
            .query(session, "main", loc)
            .unwrap_or_else(|e| panic!("workers {workers} seed {seed} step {step}: query: {e}"));
        let oracle = batch_analyze(&cfg, D::entry_default(cfg.params()), &mut IntraResolver)
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: oracle: {e}"));
        assert_eq!(
            answer, oracle[&loc],
            "workers {workers} seed {seed} step {step}: engine answer at {loc} \
             differs from the batch oracle"
        );
        trace.push(answer);
    }
    // Final sweep: every location of the final program.
    let cfg = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    let oracle = batch_analyze(&cfg, D::entry_default(cfg.params()), &mut IntraResolver).unwrap();
    for loc in cfg.locs() {
        let answer = engine.query(session, "main", loc).unwrap();
        assert_eq!(
            answer, oracle[&loc],
            "workers {workers} seed {seed}: final sweep at {loc}"
        );
        trace.push(answer);
    }
    trace
}

#[test]
fn interval_engine_matches_batch_oracle_at_every_worker_count() {
    use dai_core::TransferMode;
    for seed in [0xE11, 0xE12] {
        // The 1-worker compiled trace anchors every other configuration:
        // worker counts AND transfer modes must be bit-identical.
        let reference = run_script::<IntervalDomain>(1, seed, 12, TransferMode::Compiled);
        for transfer in [TransferMode::Compiled, TransferMode::Interp] {
            for workers in 1..=8 {
                if workers == 1 && transfer == TransferMode::Compiled {
                    continue; // the reference itself
                }
                let trace = run_script::<IntervalDomain>(workers, seed, 12, transfer);
                assert_eq!(
                    trace, reference,
                    "seed {seed}: {workers}-worker {transfer:?} trace differs from \
                     the 1-worker compiled trace"
                );
            }
        }
    }
}

#[test]
fn octagon_engine_matches_batch_oracle_at_every_worker_count() {
    use dai_core::TransferMode;
    for seed in [0xE21] {
        let reference = run_script::<OctagonDomain>(1, seed, 8, TransferMode::Compiled);
        for (workers, transfer) in [
            (1, TransferMode::Interp),
            (2, TransferMode::Compiled),
            (4, TransferMode::Interp),
            (8, TransferMode::Compiled),
        ] {
            let trace = run_script::<OctagonDomain>(workers, seed, 8, transfer);
            assert_eq!(
                trace, reference,
                "seed {seed}: {workers}-worker {transfer:?} trace differs from \
                 the 1-worker compiled trace"
            );
        }
    }
}

#[test]
fn concurrent_sessions_all_match_the_oracle() {
    // Eight sessions evolve independently (distinct seeds); their queries
    // are fired concurrently through the async request stream and every
    // in-flight answer must match each session's own oracle.
    let engine: Engine<IntervalDomain> = Engine::new(4);
    let mut sessions: Vec<(SessionId, Workload)> = (0..8u64)
        .map(|i| {
            (
                engine.open_session(format!("c{i}"), initial_program()),
                Workload::new(0xC0 + i),
            )
        })
        .collect();
    for _round in 0..6 {
        // Apply one random edit per session (serialized per session by the
        // engine; concurrent across sessions).
        let edit_tickets: Vec<Ticket<IntervalDomain>> = sessions
            .iter_mut()
            .map(|(s, gen)| {
                let cfg = engine
                    .program_of(*s)
                    .unwrap()
                    .by_name("main")
                    .unwrap()
                    .clone();
                let edges: Vec<_> = cfg.edges().map(|e| e.id).collect();
                let edge = edges[gen.pick_index(edges.len())];
                let block = gen.random_block_no_calls();
                engine.submit(Request::Edit {
                    session: *s,
                    edit: ProgramEdit::Insert {
                        func: Symbol::new("main"),
                        edge,
                        block,
                    },
                })
            })
            .collect();
        for t in edit_tickets {
            assert!(matches!(t.wait().unwrap(), Response::Edited(_)));
        }
        // Fire one query per session concurrently, then check each against
        // its own batch oracle.
        let targets: Vec<(SessionId, dai_lang::Cfg, dai_lang::Loc)> = sessions
            .iter_mut()
            .map(|(s, gen)| {
                let cfg = engine
                    .program_of(*s)
                    .unwrap()
                    .by_name("main")
                    .unwrap()
                    .clone();
                let locs = cfg.locs();
                let loc = locs[gen.pick_index(locs.len())];
                (*s, cfg, loc)
            })
            .collect();
        let query_tickets: Vec<Ticket<IntervalDomain>> = targets
            .iter()
            .map(|(s, _, loc)| {
                engine.submit(Request::Query {
                    session: *s,
                    func: "main".to_string(),
                    loc: *loc,
                })
            })
            .collect();
        for ((s, cfg, loc), t) in targets.iter().zip(query_tickets) {
            let answer = t.wait().unwrap().into_state().unwrap();
            let oracle = batch_analyze(
                cfg,
                IntervalDomain::entry_default(cfg.params()),
                &mut IntraResolver,
            )
            .unwrap();
            assert_eq!(answer, oracle[loc], "session {s} at {loc}");
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.sessions, 8);
    assert_eq!(stats.queries, 48);
    assert_eq!(stats.edits, 48);
}

/// Drains a session's DOT snapshot through the request stream.
fn dot_of<D: PersistDomain>(engine: &Engine<D>, session: SessionId) -> dai_engine::SessionSnapshot {
    match engine.request(Request::Snapshot { session }).unwrap() {
        Response::Snapshot(s) => s,
        other => panic!("unexpected {other:?}"),
    }
}

/// One randomized batched-vs-sequential trial: the same edit stream is
/// applied to two engines under the same resolver; queries — a random mix
/// of same-function batches and cross-function singletons — are answered
/// *batched* (through `submit_query_batch` and the coalescing queue) on
/// one engine and *one at a time, synchronously* on the oracle engine.
/// Every value must agree, and so must the final DOT snapshots.
fn run_batched_vs_sequential(seed: u64, workers: usize, resolver: ResolverChoice) {
    let label = format!("seed {seed} workers {workers} resolver {resolver:?}");
    let batched: Engine<IntervalDomain> = Engine::with_config(EngineConfig {
        workers,
        resolver,
        ..EngineConfig::default()
    });
    let oracle: Engine<IntervalDomain> = Engine::with_config(EngineConfig {
        workers: 1,
        resolver,
        ..EngineConfig::default()
    });
    let sb = batched.open_session("prop", Workload::initial_program());
    let so = oracle.open_session("prop", Workload::initial_program());
    let mut gen = Workload::new(seed);
    for round in 0..3 {
        let edit = gen.next_edit(&batched.program_of(sb).unwrap());
        for (engine, s) in [(&batched, sb), (&oracle, so)] {
            engine
                .request(Request::Edit {
                    session: s,
                    edit: edit.clone(),
                })
                .unwrap_or_else(|e| panic!("{label} round {round}: edit: {e}"));
        }
        let program = batched.program_of(sb).unwrap();
        // Two same-function location batches plus two cross-function
        // singletons per round.
        let mut plan: Vec<(String, Vec<Loc>)> = Vec::new();
        for _ in 0..2 {
            let cfg = &program.cfgs()[gen.pick_index(program.cfgs().len())];
            let locs = cfg.locs();
            let batch: Vec<Loc> = (0..3).map(|_| locs[gen.pick_index(locs.len())]).collect();
            plan.push((cfg.name().to_string(), batch));
        }
        let singles: Vec<(Symbol, Loc)> = gen.next_queries(&program, 2);
        let mut tickets: Vec<(String, Loc, Ticket<IntervalDomain>)> = Vec::new();
        for (f, locs) in &plan {
            for (loc, t) in locs.iter().zip(batched.submit_query_batch(sb, f, locs)) {
                tickets.push((f.clone(), *loc, t));
            }
        }
        for (f, loc) in &singles {
            let t = batched.submit(Request::Query {
                session: sb,
                func: f.to_string(),
                loc: *loc,
            });
            tickets.push((f.to_string(), *loc, t));
        }
        for (f, loc, t) in tickets {
            let answer = t
                .wait()
                .unwrap_or_else(|e| panic!("{label} round {round}: batched {f} {loc}: {e}"))
                .into_state()
                .unwrap();
            let expected = oracle
                .query(so, &f, loc)
                .unwrap_or_else(|e| panic!("{label} round {round}: oracle {f} {loc}: {e}"));
            assert_eq!(
                answer, expected,
                "{label} round {round}: batched answer at {f} {loc} \
                 differs from the one-at-a-time oracle"
            );
        }
    }
    assert_eq!(
        dot_of(&batched, sb),
        dot_of(&oracle, so),
        "{label}: final DOT snapshots differ"
    );
    let stats = batched.stats();
    assert_eq!(
        stats.batch.coalesced_queries + stats.batch.singleton_queries,
        stats.queries,
        "{label}: every served query is coalesced or singleton"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    #[test]
    fn batched_queries_match_the_sequential_oracle(seed in 0u64..100_000) {
        for resolver in [
            ResolverChoice::Intra,
            ResolverChoice::Interproc { policy: ContextPolicy::CallString(1) },
        ] {
            for workers in 1..=8usize {
                run_batched_vs_sequential(seed, workers, resolver);
            }
        }
    }
}
