//! The preservation lemmas of §6 as executable checks over random edit and
//! query scripts:
//!
//! * Lemma 6.1 — DAIG well-formedness (Definition 4.1) is preserved by
//!   queries and edits;
//! * Lemma 6.2 — DAIG–CFG consistency (Definition 4.2) is preserved;
//! * Lemma 6.3 — DAIG–AI consistency (Definition 4.3) is preserved;
//! * Theorem 6.3 — queries terminate (every property run is bounded).

use dai_bench::workload::Workload;
use dai_core::analysis::FuncAnalysis;
use dai_core::consistency::{check_ai_consistency, check_cfg_consistency};
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain};
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;
use proptest::prelude::*;

fn assert_invariants<D: AbstractDomain>(fa: &FuncAnalysis<D>, context: &str) {
    fa.daig()
        .check_well_formed()
        .unwrap_or_else(|e| panic!("{context}: well-formedness: {e}"));
    check_cfg_consistency(fa.daig(), fa.cfg())
        .unwrap_or_else(|e| panic!("{context}: CFG consistency: {e}"));
    check_ai_consistency(fa.daig()).unwrap_or_else(|e| panic!("{context}: AI consistency: {e}"));
    fa.cfg()
        .validate()
        .unwrap_or_else(|e| panic!("{context}: CFG validity: {e}"));
    // Reducibility (paper §3 assumes it; lowering must maintain it).
    let la = dai_lang::loops::LoopAnalysis::of(fa.cfg());
    assert!(
        la.is_reducible(fa.cfg()),
        "{context}: CFG became irreducible"
    );
    // The incremental loop bookkeeping agrees with the from-scratch one.
    for l in fa.cfg().locs() {
        assert_eq!(
            la.enclosing_chain(l),
            fa.cfg().enclosing_loops(l),
            "{context}: loop nesting mismatch at {l}"
        );
    }
}

fn run_script<D: AbstractDomain>(phi0: D, seed: u64, steps: usize, check_every: bool) {
    let cfg = lower_program(&parse_program("function main() { var x0 = 0; return x0; }").unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    let mut gen = Workload::new(seed);
    let mut fa = FuncAnalysis::new(cfg, phi0);
    let mut memo = MemoTable::new();
    assert_invariants(&fa, &format!("seed {seed} initial"));
    for step in 0..steps {
        // Random edit.
        let edges: Vec<_> = fa.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        fa.splice(edge, &block).unwrap();
        if check_every {
            assert_invariants(&fa, &format!("seed {seed} step {step} post-edit"));
        }
        // Random query (also exercises demanded unrolling).
        let locs = fa.cfg().locs();
        let loc = locs[gen.pick_index(locs.len())];
        let mut stats = QueryStats::default();
        fa.query_loc(&mut memo, loc, &mut IntraResolver, &mut stats)
            .unwrap();
        if check_every {
            assert_invariants(&fa, &format!("seed {seed} step {step} post-query"));
        }
    }
    assert_invariants(&fa, &format!("seed {seed} final"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn invariants_preserved_interval(seed in 0u64..10_000) {
        run_script(IntervalDomain::top(), seed, 10, true);
    }

    #[test]
    fn invariants_preserved_octagon(seed in 0u64..10_000) {
        run_script(OctagonDomain::top(), seed, 8, true);
    }
}

#[test]
fn long_edit_script_stays_consistent() {
    // One long run with final (cheaper) checking to push structural depth:
    // nested loops, promoted heads, joins.
    run_script(IntervalDomain::top(), 0xC0FFEE, 60, false);
}

#[test]
fn relabel_and_delete_preserve_invariants() {
    let cfg = lower_program(
        &parse_program(
            "function main() { var a = 1; var i = 0; while (i < 9) { a = a + i; i = i + 1; } return a; }",
        )
        .unwrap(),
    )
    .unwrap()
    .cfgs()[0]
        .clone();
    let mut fa = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap();
    assert_invariants(&fa, "pre-edit");
    let edges: Vec<_> = fa.cfg().edges().map(|e| e.id).collect();
    for (i, &edge) in edges.iter().enumerate() {
        if i % 2 == 0 {
            // Relabel assignments in place; skip assume edges (they encode
            // branch structure).
            let is_assign = matches!(
                fa.cfg().edge(edge).unwrap().stmt,
                dai_lang::Stmt::Assign(..)
            );
            if is_assign {
                fa.relabel(
                    edge,
                    dai_lang::Stmt::Assign("a".into(), dai_lang::parse_expr("a + 2").unwrap()),
                )
                .unwrap();
            }
        } else if matches!(fa.cfg().edge(edge).unwrap().stmt, dai_lang::Stmt::Print(_)) {
            fa.delete(edge).unwrap();
        }
        assert_invariants(&fa, &format!("after edit {i}"));
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        assert_invariants(&fa, &format!("after re-query {i}"));
    }
}

#[test]
fn queries_terminate_on_widening_hungry_loops() {
    // Nested loops with interacting counters: several demanded unrollings
    // needed; Theorem 6.3 says the query terminates regardless.
    let cfg = lower_program(
        &parse_program(
            "function main() {
                var i = 0; var t = 0;
                while (i < 100) {
                    var j = 0;
                    while (j < i) { t = t + 1; j = j + 1; }
                    i = i + 1;
                }
                return t;
             }",
        )
        .unwrap(),
    )
    .unwrap()
    .cfgs()[0]
        .clone();
    let mut fa = FuncAnalysis::new(cfg, OctagonDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    let exit = fa
        .query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap();
    assert!(!exit.is_bottom());
    assert!(
        stats.unrolls >= 2,
        "nested widening should demand unrollings"
    );
    assert_invariants(&fa, "nested loops");
}

// ---------------------------------------------------------------------
// Query-order independence: a corollary of from-scratch consistency
// (Theorem 6.1) worth checking directly — the *final* value of every cell
// cannot depend on the order in which locations were demanded, even
// though the intermediate DAIG evolution (unrolling order, memo traffic)
// differs.
// ---------------------------------------------------------------------

#[test]
fn query_order_does_not_change_answers() {
    let src = "function main() {
        var a = 0; var b = 0;
        while (a < 7) { a = a + 1; }
        if (b < a) { b = a; } else { b = 0 - a; }
        while (b > 0) { b = b - 2; }
        return a + b;
    }";
    let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
    let locs = cfg.locs();

    // Reference: ascending order.
    let mut reference: Vec<(dai_lang::Loc, IntervalDomain)> = Vec::new();
    {
        let mut fa = FuncAnalysis::new(cfg.clone(), IntervalDomain::top());
        let mut memo = MemoTable::new();
        for &l in &locs {
            let mut stats = QueryStats::default();
            let v = fa
                .query_loc(&mut memo, l, &mut IntraResolver, &mut stats)
                .unwrap();
            reference.push((l, v));
        }
    }

    // Several permutations, each on a fresh DAIG + memo.
    let mut gen = Workload::new(0x0BDE);
    for round in 0..6 {
        let mut order = locs.clone();
        // Fisher–Yates with the deterministic workload RNG.
        for i in (1..order.len()).rev() {
            order.swap(i, gen.pick_index(i + 1));
        }
        let mut fa = FuncAnalysis::new(cfg.clone(), IntervalDomain::top());
        let mut memo = MemoTable::new();
        let mut got: Vec<(dai_lang::Loc, IntervalDomain)> = Vec::new();
        for &l in &order {
            let mut stats = QueryStats::default();
            let v = fa
                .query_loc(&mut memo, l, &mut IntraResolver, &mut stats)
                .unwrap();
            got.push((l, v));
        }
        got.sort_by_key(|(l, _)| *l);
        assert_eq!(
            got, reference,
            "round {round}: order {order:?} changed answers"
        );
        assert_invariants(&fa, &format!("permutation round {round}"));
    }
}

#[test]
fn interleaved_queries_match_upfront_queries_across_edits() {
    // Demand-as-you-go vs demand-everything-at-the-end over the same edit
    // stream: final per-location answers must agree.
    let seed = 0x1EAF;
    let base = "function main() { var x0 = 0; return x0; }";
    let build = || lower_program(&parse_program(base).unwrap()).unwrap().cfgs()[0].clone();
    let mut eager = FuncAnalysis::new(build(), IntervalDomain::top());
    let mut lazy = FuncAnalysis::new(build(), IntervalDomain::top());
    let mut eager_memo = MemoTable::new();
    let mut lazy_memo = MemoTable::new();
    let mut gen = Workload::new(seed);
    for _ in 0..25 {
        let edges: Vec<_> = eager.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        eager.splice(edge, &block).unwrap();
        lazy.splice(edge, &block).unwrap();
        // The eager twin queries a random location at every step.
        let locs = eager.cfg().locs();
        let l = locs[gen.pick_index(locs.len())];
        let mut stats = QueryStats::default();
        eager
            .query_loc(&mut eager_memo, l, &mut IntraResolver, &mut stats)
            .unwrap();
    }
    for l in eager.cfg().locs() {
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let a = eager
            .query_loc(&mut eager_memo, l, &mut IntraResolver, &mut s1)
            .unwrap();
        let b = lazy
            .query_loc(&mut lazy_memo, l, &mut IntraResolver, &mut s2)
            .unwrap();
        assert_eq!(a, b, "eager/lazy divergence at {l}");
    }
    assert_invariants(&eager, "eager twin");
    assert_invariants(&lazy, "lazy twin");
}
