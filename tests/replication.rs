//! End-to-end contract of streaming replication (`dai_rpc::Replica`):
//! a follower that tails a leader's journal over a real socket must be
//! indistinguishable from the leader once caught up — answer for
//! answer, DOT byte for DOT byte — and a follower that has *not*
//! caught up must still be sound: it is simply the leader as of an
//! earlier journal frame, and its answers match the batch oracle on
//! that older program (Stein et al., PLDI 2021, Theorems 6.1–6.3).
//!
//! * **equality** — on the Fig. 10 synthetic workload, a caught-up
//!   follower's full sweep and session DOT byte-match the leader's,
//!   under both `ResolverChoice::Intra` and `Interproc`;
//! * **lag soundness** — a follower frozen mid-history answers exactly
//!   like the batch oracle of its own (older) program, and rejects
//!   direct edits with `EngineError::ReadOnly`;
//! * **compaction** — a follower whose cursor points into compacted-
//!   away history catches up seamlessly through the snapshot frames.

use dai_bench::workload::Workload;
use dai_core::batch::batch_analyze;
use dai_core::driver::ProgramEdit;
use dai_core::query::IntraResolver;
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain};
use dai_engine::{
    Engine, EngineConfig, EngineError, JournalConfig, ResolverChoice, Service, SessionId,
};
use dai_lang::Loc;
use dai_persist::PersistDomain;
use dai_rpc::{Addr, Replica, Server};
use std::sync::Arc;

/// A unique scratch path for sockets and journals.
fn scratch(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "dai-replication-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
        .to_string_lossy()
        .into_owned()
}

/// Replays `grow` Workload edits through a scratch engine, returning
/// the deterministic (source, edit script, sorted sweep targets).
fn fig10_script(grow: usize, seed: u64) -> (String, Vec<ProgramEdit>, Vec<(String, Loc)>) {
    let source = Workload::initial_source();
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session_src("gen", &source).unwrap();
    let mut gen = Workload::new(seed);
    let mut edits = Vec::new();
    for _ in 0..grow {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        Service::<OctagonDomain>::edit(&engine, session, &edit).unwrap();
        edits.push(edit);
    }
    let program = engine.program_of(session).unwrap();
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    (source, edits, targets)
}

/// A journaled leader engine under the given resolver.
fn journaled_leader<D: PersistDomain>(resolver: ResolverChoice, tag: &str) -> Arc<Engine<D>> {
    let engine: Arc<Engine<D>> = Arc::new(Engine::with_config(EngineConfig {
        workers: 1,
        resolver,
        ..EngineConfig::default()
    }));
    let journal = scratch(&format!("{tag}.daij"));
    let _ = std::fs::remove_file(&journal);
    engine
        .open_journal(&journal, JournalConfig::default())
        .expect("fresh journal attaches");
    engine
}

/// The acceptance gate: a follower that caught up over a real socket
/// answers the full sweep and renders the session DOT byte-identically
/// to the leader.
fn follower_matches_leader(resolver: ResolverChoice, tag: &str) {
    let (source, edits, targets) = fig10_script(10, 379422);
    let leader = journaled_leader::<OctagonDomain>(resolver, tag);

    // The leader's own lifecycle: open, edit history, sweep, DOT.
    let session = leader.open(tag, &source).unwrap();
    for edit in &edits {
        leader.edit(session, edit).unwrap();
    }
    let leader_answers: Vec<_> = leader
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect();
    let leader_dot = leader.snapshot(session).unwrap();
    assert!(leader_answers.iter().all(|r| r.is_ok()), "leader sweep");

    // Serve the leader and catch a fresh follower up over the socket.
    let server = Server::bind(&Addr::Unix(scratch(tag)), Arc::clone(&leader)).unwrap();
    // The follower engine mirrors the leader's resolver configuration
    // (the stream carries edits, not resolver policy).
    let client = dai_rpc::Client::connect(&server.addr().to_string()).unwrap();
    let follower_engine: Arc<Engine<OctagonDomain>> = Arc::new(Engine::with_config(EngineConfig {
        workers: 1,
        resolver,
        ..EngineConfig::default()
    }));
    let follower = Replica::new(client, follower_engine);
    let applied = follower.catch_up().unwrap();
    assert_eq!(
        applied,
        1 + edits.len() as u64,
        "one open frame plus one frame per edit"
    );

    // The replicated session is the follower's first: id 1. Its sweep
    // and DOT must byte-match the leader's.
    let replica_session = SessionId(1);
    let follower_answers: Vec<_> = follower
        .engine()
        .query_sweep(replica_session, &targets)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect();
    assert_eq!(follower_answers, leader_answers, "follower sweep differs");
    let follower_dot = follower.engine().snapshot(replica_session).unwrap();
    assert_eq!(
        follower_dot, leader_dot,
        "follower session DOT is not byte-identical"
    );

    // Caught up means zero lag, and the replication stats say so.
    let stats = follower.engine().stats();
    assert_eq!(stats.replication.applied_seq, follower.applied_seq());
    assert_eq!(
        stats.replication.applied_frames,
        1 + edits.len() as u64,
        "every frame applied exactly once"
    );
    server.shutdown();
}

#[test]
fn caught_up_follower_matches_leader_intra() {
    follower_matches_leader(ResolverChoice::Intra, "intra");
}

#[test]
fn caught_up_follower_matches_leader_interproc() {
    follower_matches_leader(
        ResolverChoice::Interproc {
            policy: dai_core::interproc::ContextPolicy::CallString(1),
        },
        "interproc",
    );
}

#[test]
fn lagged_follower_is_the_leader_as_of_an_earlier_frame() {
    let (source, edits, _) = fig10_script(8, 911);
    let split = 4;
    let leader = journaled_leader::<IntervalDomain>(ResolverChoice::Intra, "lag");
    let session = leader.open("lag", &source).unwrap();
    for edit in &edits[..split] {
        leader.edit(session, edit).unwrap();
    }
    let server = Server::bind(&Addr::Unix(scratch("lag")), Arc::clone(&leader)).unwrap();
    let follower: Replica<IntervalDomain> =
        Replica::connect(&server.addr().to_string(), 1).unwrap();
    follower.catch_up().unwrap();
    let frozen_at = follower.applied_seq();

    // The leader moves on; the follower deliberately does not sync.
    for edit in &edits[split..] {
        leader.edit(session, edit).unwrap();
    }

    // The frozen follower answers exactly like the batch oracle of its
    // OWN (older) program — sound, merely stale.
    let replica_session = SessionId(1);
    let program = follower.engine().program_of(replica_session).unwrap();
    for cfg in program.cfgs() {
        let oracle = batch_analyze(
            cfg,
            IntervalDomain::entry_default(cfg.params()),
            &mut IntraResolver,
        )
        .unwrap();
        for loc in cfg.locs() {
            let func = cfg.name().to_string();
            let got = follower
                .engine()
                .query(replica_session, &func, loc)
                .unwrap();
            assert_eq!(
                got, oracle[&loc],
                "lagged follower differs from its own oracle at {loc}"
            );
        }
    }

    // Replica sessions are read-only: the only write path is the
    // stream. A direct edit is refused in-protocol.
    match follower.engine().edit(replica_session, &edits[split]) {
        Err(EngineError::ReadOnly(id)) => assert_eq!(id, replica_session),
        other => panic!("edit on a replica session: {other:?}"),
    }

    // Syncing now applies exactly the missed frames and re-converges
    // with the leader.
    let outcome = follower.sync_batch(dai_rpc::DEFAULT_PULL_BATCH).unwrap();
    assert_eq!(outcome.applied, (edits.len() - split) as u64);
    assert_eq!(outcome.lag, 0);
    assert!(follower.applied_seq() > frozen_at);
    let program = leader.program_of(session).unwrap();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            let func = cfg.name().to_string();
            assert_eq!(
                follower
                    .engine()
                    .query(replica_session, &func, loc)
                    .unwrap(),
                leader.query(session, &func, loc).unwrap(),
                "post-sync follower differs from leader at {loc}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn follower_catches_up_across_a_compaction() {
    let (source, edits, targets) = fig10_script(6, 2024);
    let leader = journaled_leader::<IntervalDomain>(ResolverChoice::Intra, "compact");
    let session = leader.open("compact", &source).unwrap();
    for edit in &edits[..3] {
        leader.edit(session, edit).unwrap();
    }
    let server = Server::bind(&Addr::Unix(scratch("compact")), Arc::clone(&leader)).unwrap();
    let follower: Replica<IntervalDomain> =
        Replica::connect(&server.addr().to_string(), 1).unwrap();
    follower.catch_up().unwrap();
    let parked_at = follower.applied_seq();

    // The leader edits on, then compacts: the frames the follower's
    // cursor points past are gone, replaced by snapshot frames with
    // FRESH sequence numbers above the old head.
    for edit in &edits[3..] {
        leader.edit(session, edit).unwrap();
    }
    assert!(leader.compact_journal(true).unwrap());
    let journal = leader.journal().expect("journal attached");
    assert!(journal.last_seq() > parked_at);

    // The parked follower pulls: it receives the snapshot frame(s),
    // applies them idempotently over its live session, and converges.
    let applied = follower.catch_up().unwrap();
    assert!(applied >= 1, "the snapshot frame must arrive");
    let replica_session = SessionId(1);
    let leader_answers: Vec<_> = leader
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect();
    let follower_answers: Vec<_> = follower
        .engine()
        .query_sweep(replica_session, &targets)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect();
    assert_eq!(
        follower_answers, leader_answers,
        "post-compaction follower differs from leader"
    );
    server.shutdown();
}

#[test]
fn subscribing_to_a_journal_less_leader_is_a_structured_rejection() {
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
    let server = Server::bind(&Addr::Unix(scratch("nojournal")), engine).unwrap();
    let follower: Replica<IntervalDomain> =
        Replica::connect(&server.addr().to_string(), 1).unwrap();
    match follower.sync_batch(16) {
        Err(EngineError::Remote { code, message }) => {
            assert_eq!(code, "rejected");
            assert!(message.contains("no-journal"), "{message}");
        }
        other => panic!("expected the no-journal rejection, got {other:?}"),
    }
    server.shutdown();
}
