//! End-to-end persistence: save → restore → requery must agree with the
//! never-persisted session — value-for-value on every query, and
//! byte-for-byte on the deterministic DOT snapshot — while damaged or
//! truncated snapshot files degrade to a (sound) cold start instead of
//! erroring or panicking.
//!
//! Three layers of evidence:
//!
//! 1. a deterministic fig10-workload roundtrip (grow through the engine's
//!    request stream, save, load into a fresh engine, full query sweep);
//! 2. a property test over random edit histories, checking values *and*
//!    DOT bytes against the live session;
//! 3. adversarial files: corrupted `FUNC`/`MEMO` sections must load cold
//!    with identical answers, a corrupted `SESS` section must fail
//!    cleanly, and every truncation prefix must either fail cleanly or
//!    restore a session that still answers identically.

use dai_bench::workload::Workload;
use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_domains::{IntervalDomain, OctagonDomain};
use dai_engine::{Engine, EngineConfig, EngineError, Request, ResolverChoice, Response, SessionId};
use dai_lang::cfg::lower_program;
use dai_lang::{parse_program, Loc, Symbol};
use dai_persist::{PersistDomain, TAG_FUNC, TAG_SESSION};
use proptest::prelude::*;

type D = OctagonDomain;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dai-persistence-tests-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Every `(function, location)` of the session's program, sorted.
fn all_targets<P: PersistDomain>(engine: &Engine<P>, session: SessionId) -> Vec<(String, Loc)> {
    let program = engine.program_of(session).expect("session open");
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    targets
}

fn sweep<P: PersistDomain>(
    engine: &Engine<P>,
    session: SessionId,
    targets: &[(String, Loc)],
) -> Vec<P> {
    targets
        .iter()
        .map(|(f, loc)| engine.query(session, f, *loc).expect("query succeeds"))
        .collect()
}

fn dot_snapshot<P: PersistDomain>(engine: &Engine<P>, session: SessionId) -> Vec<(String, String)> {
    match engine.request(Request::Snapshot { session }).unwrap() {
        Response::Snapshot(s) => s.functions,
        other => panic!("unexpected {other:?}"),
    }
}

/// An engine + session, the sweep targets, and the live answers.
type GrownSession = (Engine<D>, SessionId, Vec<(String, Loc)>, Vec<D>);

/// Grows a saveable fig10 session through the request stream and fully
/// sweeps it; returns the engine, session, targets, and live answers.
fn grown_session(edits: usize, seed: u64) -> GrownSession {
    let engine: Engine<D> = Engine::new(1);
    let session = engine
        .open_session_src("fig10", &Workload::initial_source())
        .expect("workload source compiles");
    let mut gen = Workload::new(seed);
    for _ in 0..edits {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        engine
            .request(Request::Edit { session, edit })
            .expect("edit applies");
    }
    let targets = all_targets(&engine, session);
    let answers = sweep(&engine, session, &targets);
    (engine, session, targets, answers)
}

fn save_to<P: PersistDomain>(engine: &Engine<P>, session: SessionId, path: &std::path::Path) {
    match engine
        .request(Request::Save {
            session,
            path: path.to_string_lossy().into_owned(),
        })
        .expect("save succeeds")
    {
        Response::Saved(outcome) => {
            assert!(outcome.bytes > 0);
        }
        other => panic!("unexpected {other:?}"),
    }
}

fn load_from(
    engine: &Engine<D>,
    path: &std::path::Path,
) -> Result<(SessionId, dai_engine::PersistOutcome), EngineError> {
    match engine.request(Request::Load {
        path: path.to_string_lossy().into_owned(),
    })? {
        Response::Loaded { session, outcome } => Ok((session, outcome)),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn fig10_roundtrip_restores_identical_answers_and_dot() {
    let (engine, session, targets, live) = grown_session(12, 0xF16);
    let path = scratch("fig10.daip");
    save_to(&engine, session, &path);
    let live_dot = dot_snapshot(&engine, session);
    drop(engine);

    let fresh: Engine<D> = Engine::new(1);
    let (restored, outcome) = load_from(&fresh, &path).expect("load succeeds");
    assert!(outcome.funcs > 0, "warm DAIGs restored: {outcome:?}");
    assert!(outcome.memo_entries > 0, "memo restored: {outcome:?}");
    assert_eq!(outcome.funcs_dropped, 0);
    // The restored session must answer every query with the exact live
    // value, without recomputing anything (pure Q-Reuse).
    let before = fresh.stats().query_stats;
    let answers = sweep(&fresh, restored, &targets);
    assert_eq!(answers, live, "restored answers differ");
    let after = fresh.stats().query_stats;
    assert_eq!(
        after.computed - before.computed,
        0,
        "warm restore recomputed"
    );
    // And the DOT export is byte-identical to the live session's.
    assert_eq!(dot_snapshot(&fresh, restored), live_dot);
}

#[test]
fn corrupted_func_and_memo_sections_degrade_to_cold_start() {
    let (engine, session, targets, live) = grown_session(8, 0xC0);
    let path = scratch("damaged.daip");
    save_to(&engine, session, &path);
    drop(engine);

    // Flip one byte inside every FUNC and MEMO payload.
    let mut bytes = std::fs::read(&path).unwrap();
    let positions: Vec<usize> = bytes
        .windows(4)
        .enumerate()
        .filter(|(_, w)| *w == TAG_FUNC || *w == b"MEMO")
        .map(|(i, _)| i)
        .collect();
    assert!(!positions.is_empty());
    for at in positions {
        bytes[at + 24] ^= 0xA5;
    }
    let damaged = scratch("damaged_flipped.daip");
    std::fs::write(&damaged, &bytes).unwrap();

    let fresh: Engine<D> = Engine::new(1);
    let (restored, outcome) = load_from(&fresh, &damaged).expect("lossy load still succeeds");
    assert_eq!(outcome.funcs, 0, "every warm section dropped: {outcome:?}");
    assert!(outcome.funcs_dropped > 0);
    // Cold, but correct: requerying recomputes the identical answers.
    let before = fresh.stats().query_stats;
    let answers = sweep(&fresh, restored, &targets);
    assert_eq!(answers, live, "cold restore answers differ");
    let after = fresh.stats().query_stats;
    assert!(
        after.computed > before.computed,
        "cold restore must recompute"
    );
}

#[test]
fn corrupted_session_header_fails_cleanly() {
    let (engine, session, _, _) = grown_session(4, 0x5E55);
    let path = scratch("badsess.daip");
    save_to(&engine, session, &path);
    drop(engine);
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes
        .windows(4)
        .position(|w| w == TAG_SESSION)
        .expect("has SESS");
    bytes[at + 16] ^= 0xFF;
    let bad = scratch("badsess_flipped.daip");
    std::fs::write(&bad, &bytes).unwrap();
    let fresh: Engine<D> = Engine::new(1);
    let err = load_from(&fresh, &bad).unwrap_err();
    assert!(matches!(err, EngineError::Persist(_)), "{err}");
    assert_eq!(fresh.stats().sessions, 0, "no half-restored session");
}

#[test]
fn every_truncation_prefix_is_cold_start_or_clean_error() {
    let (engine, session, targets, live) = grown_session(6, 0x7A);
    let path = scratch("trunc.daip");
    save_to(&engine, session, &path);
    drop(engine);
    let bytes = std::fs::read(&path).unwrap();
    // Sample prefixes across the whole file (every byte would be slow with
    // engine startup per cut; a stride still crosses every section
    // boundary region).
    let cuts: Vec<usize> = (0..bytes.len())
        .step_by((bytes.len() / 97).max(1))
        .chain([bytes.len() - 1, bytes.len() - 9, bytes.len() / 2])
        .collect();
    let trunc = scratch("trunc_cut.daip");
    for cut in cuts {
        std::fs::write(&trunc, &bytes[..cut]).unwrap();
        let fresh: Engine<D> = Engine::new(1);
        match load_from(&fresh, &trunc) {
            Err(EngineError::Persist(_)) => {} // header or SESS gone: clean error
            Err(other) => panic!("cut {cut}: unexpected error {other}"),
            Ok((restored, _)) => {
                // Whatever survived must still answer identically.
                let answers = sweep(&fresh, restored, &targets);
                assert_eq!(answers, live, "cut {cut}: truncated restore answers differ");
            }
        }
    }
}

#[test]
fn saving_a_sourceless_session_reports_not_replayable() {
    let program =
        lower_program(&parse_program("function main() { var x = 1; return x; }").unwrap()).unwrap();
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session("no-source", program);
    let err = engine
        .request(Request::Save {
            session,
            path: scratch("never.daip").to_string_lossy().into_owned(),
        })
        .unwrap_err();
    assert!(matches!(err, EngineError::NotReplayable(_)), "{err}");
}

#[test]
fn interproc_sessions_match_the_repl_analyzer() {
    // The pluggable resolver: an engine configured with
    // `ResolverChoice::Interproc` must answer exactly like the REPL's
    // `InterAnalyzer` (same policy) — the ROADMAP's "serve matches the
    // REPL's interprocedural answers".
    let src = "function inc(x) { return x + 1; }
               function main() { var a = 1; var b = inc(a); var i = 0;
                                 while (i < b) { i = i + 1; } return i; }";
    let policy = ContextPolicy::CallString(1);
    let engine: Engine<IntervalDomain> = Engine::with_config(EngineConfig {
        resolver: ResolverChoice::Interproc { policy },
        ..EngineConfig::default()
    });
    let session = engine.open_session_src("interproc", src).unwrap();
    let mut analyzer: InterAnalyzer<IntervalDomain> = InterAnalyzer::new(
        lower_program(&parse_program(src).unwrap()).unwrap(),
        policy,
        "main",
        IntervalDomain::top(),
    );
    for (f, loc) in all_targets(&engine, session) {
        let engine_answer = engine.query(session, &f, loc).unwrap();
        let repl_answer = analyzer.query_joined(&f, loc).unwrap();
        assert_eq!(engine_answer, repl_answer, "{f} {loc}");
    }
    // Interprocedural effect is visible (not the havoc answer): b = 2.
    let exit = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .exit();
    let state = engine.query(session, "main", exit).unwrap();
    assert_eq!(
        state.interval_of("b"),
        dai_domains::interval::Interval::constant(2)
    );
    // Edits route through the interprocedural units too.
    let inc_edge = engine
        .program_of(session)
        .unwrap()
        .by_name("inc")
        .unwrap()
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .unwrap()
        .id;
    engine
        .request(Request::Edit {
            session,
            edit: dai_core::ProgramEdit::Relabel {
                func: Symbol::new("inc"),
                edge: inc_edge,
                stmt: dai_lang::Stmt::Assign(
                    dai_lang::RETURN_VAR.into(),
                    dai_lang::parse_expr("x + 10").unwrap(),
                ),
            },
        })
        .unwrap();
    let after = engine.query(session, "main", exit).unwrap();
    assert_eq!(
        after.interval_of("b"),
        dai_domains::interval::Interval::constant(11),
        "editing the callee dirties the caller through the resolver"
    );
}

#[test]
fn snapshots_restore_under_their_saved_resolver_not_the_engines() {
    // A snapshot's semantics travel with it: an Intra-saved warm snapshot
    // loaded into an Interproc-configured engine restores as an *Intra*
    // session (that is what was persisted), so its warm DAIGs install,
    // its memo imports, and it answers exactly like the saved session —
    // the engine's resolver config applies only to newly opened sessions.
    let (engine, session, targets, live) = grown_session(4, 0xAB);
    let path = scratch("cross-config.daip");
    save_to(&engine, session, &path);
    drop(engine);
    let interproc: Engine<D> = Engine::with_config(EngineConfig {
        resolver: ResolverChoice::Interproc {
            policy: ContextPolicy::Insensitive,
        },
        ..EngineConfig::default()
    });
    let (restored, outcome) = match interproc
        .request(Request::Load {
            path: path.to_string_lossy().into_owned(),
        })
        .expect("load succeeds")
    {
        Response::Loaded { session, outcome } => (session, outcome),
        other => panic!("unexpected {other:?}"),
    };
    assert!(
        outcome.funcs > 0,
        "saved-resolver warm units install: {outcome:?}"
    );
    assert_eq!(outcome.funcs_dropped, 0, "{outcome:?}");
    assert!(outcome.memo_entries > 0, "{outcome:?}");
    assert_eq!(
        sweep(&interproc, restored, &targets),
        live,
        "restored session answers like the session that was saved"
    );
    // A *new* session on the same engine still gets the engine's
    // configured interprocedural resolver.
    let fresh = interproc
        .open_session_src("fresh", &Workload::initial_source())
        .unwrap();
    let snap = match interproc
        .request(Request::Save {
            session: fresh,
            path: scratch("fresh-ip.daip").to_string_lossy().into_owned(),
        })
        .expect("save succeeds")
    {
        Response::Saved(outcome) => outcome,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(snap.funcs, 0, "interproc sessions snapshot cold");
}

#[test]
fn interproc_save_restores_cold_with_identical_answers() {
    let src = "function inc(x) { return x + 1; }
               function main() { var a = 1; var b = inc(a); return b; }";
    let policy = ContextPolicy::CallString(1);
    let config = EngineConfig {
        resolver: ResolverChoice::Interproc { policy },
        ..EngineConfig::default()
    };
    let engine: Engine<IntervalDomain> = Engine::with_config(config);
    let session = engine.open_session_src("ip", src).unwrap();
    let targets = all_targets(&engine, session);
    let live = sweep(&engine, session, &targets);
    let path = scratch("interproc.daip");
    save_to(&engine, session, &path);
    drop(engine);
    let fresh: Engine<IntervalDomain> = Engine::with_config(config);
    let (restored, outcome) = load_from_iv(&fresh, &path);
    assert_eq!(outcome.funcs, 0, "interproc restores cold");
    assert_eq!(sweep(&fresh, restored, &targets), live);
}

fn load_from_iv(
    engine: &Engine<IntervalDomain>,
    path: &std::path::Path,
) -> (SessionId, dai_engine::PersistOutcome) {
    match engine
        .request(Request::Load {
            path: path.to_string_lossy().into_owned(),
        })
        .expect("load succeeds")
    {
        Response::Loaded { session, outcome } => (session, outcome),
        other => panic!("unexpected {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Property test: random edit histories roundtrip value-for-value and
// DOT-byte-for-byte.
// ---------------------------------------------------------------------

fn run_random_roundtrip(seed: u64, edits: usize) {
    let engine: Engine<D> = Engine::new(1);
    let session = engine
        .open_session_src(format!("prop-{seed}"), &Workload::initial_source())
        .expect("workload source compiles");
    let mut gen = Workload::new(seed);
    // Random call-free structured edits at random edges of random
    // functions (call-free keeps any edge a valid insertion point).
    for _ in 0..edits {
        let program = engine.program_of(session).unwrap();
        let cfgs = program.cfgs();
        let cfg = &cfgs[gen.pick_index(cfgs.len())];
        let edges: Vec<_> = cfg.edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let func = cfg.name().clone();
        let block = gen.random_block_no_calls();
        engine
            .request(Request::Edit {
                session,
                edit: dai_core::ProgramEdit::Insert { func, edge, block },
            })
            .expect("edit applies");
    }
    let targets = all_targets(&engine, session);
    let live = sweep(&engine, session, &targets);
    let live_dot = dot_snapshot(&engine, session);
    let path = scratch(&format!("prop-{seed}.daip"));
    save_to(&engine, session, &path);
    drop(engine);

    let fresh: Engine<D> = Engine::new(1);
    let (restored, outcome) = load_from(&fresh, &path).expect("load succeeds");
    assert_eq!(outcome.funcs_dropped, 0, "intact file drops nothing");
    let answers = sweep(&fresh, restored, &targets);
    assert_eq!(answers, live, "seed {seed}: value mismatch after restore");
    assert_eq!(
        dot_snapshot(&fresh, restored),
        live_dot,
        "seed {seed}: DOT mismatch after restore"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    #[test]
    fn save_restore_requery_agrees_with_live_session(seed in 0u64..100_000) {
        run_random_roundtrip(seed, 6);
    }
}

// ---------------------------------------------------------------------
// Per-session counter accounting.
// ---------------------------------------------------------------------

#[test]
fn save_and_load_counters_are_attributed_per_session_not_engine_wide() {
    // Two sessions with deliberately different persistence traffic: the
    // engine-wide `saves`/`loads` totals must decompose into the
    // per-session counters, and neither session may see the other's.
    let engine: Engine<D> = Engine::new(1);
    let source = "function main() { var x = 1; return x; }";
    let busy = engine.open_session_src("busy", source).unwrap();
    let quiet = engine.open_session_src("quiet", source).unwrap();

    let busy_path = scratch("per-session-busy.daip");
    let quiet_path = scratch("per-session-quiet.daip");
    for _ in 0..3 {
        save_to(&engine, busy, &busy_path);
    }
    save_to(&engine, quiet, &quiet_path);

    let busy_counters = engine.session_counters(busy).unwrap();
    let quiet_counters = engine.session_counters(quiet).unwrap();
    assert_eq!(busy_counters.saves, 3, "busy session saves");
    assert_eq!(quiet_counters.saves, 1, "quiet session saves");
    assert_eq!(busy_counters.loads, 0, "never restored");
    assert_eq!(quiet_counters.loads, 0, "never restored");

    // A restore produces a NEW session whose loads counter starts at 1;
    // the source session's counters are untouched.
    let (restored, _) = match engine
        .request(Request::Load {
            path: busy_path.to_string_lossy().into_owned(),
        })
        .expect("load succeeds")
    {
        Response::Loaded { session, outcome } => (session, outcome),
        other => panic!("unexpected {other:?}"),
    };
    let restored_counters = engine.session_counters(restored).unwrap();
    assert_eq!(restored_counters.loads, 1, "restored session loads");
    assert_eq!(restored_counters.saves, 0, "restored session never saved");
    assert_eq!(engine.session_counters(busy).unwrap().saves, 3);

    // The engine-wide totals are exactly the per-session sums.
    let stats = engine.stats();
    assert_eq!(
        stats.saves,
        busy_counters.saves + quiet_counters.saves,
        "engine saves != sum of session saves"
    );
    assert_eq!(stats.loads, 1, "engine loads != sum of session loads");

    // Query/edit attribution splits the same way: drive only `busy`.
    let exit = engine
        .program_of(busy)
        .unwrap()
        .by_name("main")
        .unwrap()
        .exit();
    engine.query(busy, "main", exit).unwrap();
    assert_eq!(engine.session_counters(busy).unwrap().queries, 1);
    assert_eq!(engine.session_counters(quiet).unwrap().queries, 0);

    let _ = std::fs::remove_file(&busy_path);
    let _ = std::fs::remove_file(&quiet_path);
}
