//! Differential suite for staged transfer compilation (PR 7): under
//! every compilable domain, analyses evaluated through the compiled
//! [`dai_core::TransferTable`] must be **bit-for-bit identical** to the
//! interpreted oracle — every queried value, the DOT bytes of the final
//! DAIG, and the memo table's `(key, value-digest)` set — across random
//! programs, random edit (splice/relabel) sequences, and the demanded
//! unrolling those queries force. The interpreter is kept precisely so
//! this oracle exists; a divergence here means a staged closure took a
//! different branch than `AbstractDomain::transfer`.

use dai_bench::workload::Workload;
use dai_core::analysis::FuncAnalysis;
use dai_core::dot::{to_dot, DotOptions};
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::strategy::FixStrategy;
use dai_core::{TransferMode, Value};
use dai_domains::product::Prod;
use dai_domains::{AbstractDomain, ConstDomain, IntervalDomain, OctagonDomain, SignDomain};
use dai_engine::{Engine, EngineConfig, Request, ResolverChoice, Response};
use dai_lang::cfg::lower_program;
use dai_lang::{parse_program, Stmt};
use dai_memo::{content_digest, MemoTable};
use proptest::prelude::*;

const SEED_PROGRAM: &str = "function main() { var x0 = 0; return x0; }";

fn seed_cfg() -> dai_lang::Cfg {
    lower_program(&parse_program(SEED_PROGRAM).unwrap())
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone()
}

/// The memo table's contents as a canonical `(key, value-digest)` set —
/// bit-identical modes must memoize bit-identical values under the same
/// keys.
fn memo_digests<D: AbstractDomain>(memo: &MemoTable<Value<D>>) -> Vec<(u128, u128)> {
    let mut v: Vec<(u128, u128)> = memo
        .entries()
        .map(|(k, val)| (k.0, content_digest(val)))
        .collect();
    v.sort_unstable();
    v
}

/// Runs the same random splice/relabel/query script through a compiled
/// and an interpreted [`FuncAnalysis`] and asserts bit-identity of
/// values, DOT bytes, and memo digests after every round.
fn run_core_differential<D: AbstractDomain>(domain: &str, seed: u64, rounds: usize) {
    let cfg = seed_cfg();
    let phi0 = D::entry_default(cfg.params());
    let mut compiled = FuncAnalysis::<D>::with_config(
        cfg.clone(),
        phi0.clone(),
        FixStrategy::PAPER,
        TransferMode::Compiled,
    );
    let mut interp =
        FuncAnalysis::<D>::with_config(cfg, phi0, FixStrategy::PAPER, TransferMode::Interp);
    let mut memo_c = MemoTable::new();
    let mut memo_i = MemoTable::new();
    let mut stats_c = QueryStats::default();
    let mut stats_i = QueryStats::default();
    let mut gen = Workload::new(seed);
    for round in 0..rounds {
        let label = format!("{domain} seed {seed} round {round}");
        // One random structured splice, applied to both analyses.
        let edges: Vec<_> = compiled.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        compiled
            .splice(edge, &block)
            .unwrap_or_else(|e| panic!("{label}: splice: {e}"));
        interp
            .splice(edge, &block)
            .unwrap_or_else(|e| panic!("{label}: splice: {e}"));
        // Every other round, relabel an assignment edge — the path that
        // restages the table and exercises the digest guard.
        if round % 2 == 1 {
            let target = compiled
                .cfg()
                .edges()
                .filter_map(|e| match &e.stmt {
                    Stmt::Assign(v, _) => Some((e.id, v.clone())),
                    _ => None,
                })
                .next();
            if let Some((id, var)) = target {
                let expr = dai_lang::parse_expr(&format!("{} + {}", var.as_str(), round)).unwrap();
                let stmt = Stmt::Assign(var, expr);
                compiled
                    .relabel(id, stmt.clone())
                    .unwrap_or_else(|e| panic!("{label}: relabel: {e}"));
                interp
                    .relabel(id, stmt)
                    .unwrap_or_else(|e| panic!("{label}: relabel: {e}"));
            }
        }
        // Query every location (forces demanded unrolling of any loops
        // the splices introduced) and compare bit-for-bit.
        for loc in compiled.cfg().locs() {
            let a = compiled
                .query_loc(&mut memo_c, loc, &mut IntraResolver, &mut stats_c)
                .unwrap_or_else(|e| panic!("{label}: compiled query at {loc}: {e}"));
            let b = interp
                .query_loc(&mut memo_i, loc, &mut IntraResolver, &mut stats_i)
                .unwrap_or_else(|e| panic!("{label}: interp query at {loc}: {e}"));
            assert_eq!(a, b, "{label}: value at {loc} diverges");
        }
        // The rendered DAIGs must be byte-identical…
        let opts = DotOptions::default();
        assert_eq!(
            to_dot(compiled.daig(), &opts),
            to_dot(interp.daig(), &opts),
            "{label}: DOT bytes diverge"
        );
        // …and so must what the two runs memoized.
        assert_eq!(
            memo_digests(&memo_c),
            memo_digests(&memo_i),
            "{label}: memo digests diverge"
        );
    }
    // The comparison is only meaningful if the compiled run actually
    // took the staged path (and the oracle never did).
    assert!(
        stats_c.transfers_compiled > 0,
        "{domain} seed {seed}: compiled run never used a staged closure"
    );
    assert_eq!(
        stats_i.transfers_compiled, 0,
        "{domain} seed {seed}: interp oracle used a staged closure"
    );
    assert!(stats_i.transfers_interp > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    #[test]
    fn compiled_matches_interpreter_on_every_compilable_domain(seed in 0u64..100_000) {
        run_core_differential::<SignDomain>("sign", seed, 4);
        run_core_differential::<ConstDomain>("const", seed, 4);
        run_core_differential::<IntervalDomain>("interval", seed, 4);
        run_core_differential::<OctagonDomain>("octagon", seed, 3);
        run_core_differential::<Prod<SignDomain, IntervalDomain>>("sign×interval", seed, 3);
    }
}

/// Engine-level differential under a resolver choice: the same edit
/// stream and query load through two engines that differ only in
/// [`EngineConfig::transfer`]; every answer and the final DOT snapshots
/// must be bit-identical, and each engine's counters must show it
/// evaluated through its configured path.
fn run_engine_differential(seed: u64, resolver: ResolverChoice, rounds: usize) {
    let label = format!("seed {seed} resolver {resolver:?}");
    let mk = |transfer| {
        Engine::<IntervalDomain>::with_config(EngineConfig {
            workers: 2,
            resolver,
            transfer,
            ..EngineConfig::default()
        })
    };
    let compiled = mk(TransferMode::Compiled);
    let interp = mk(TransferMode::Interp);
    let sc = compiled.open_session("diff", Workload::initial_program());
    let si = interp.open_session("diff", Workload::initial_program());
    let mut gen = Workload::new(seed);
    for round in 0..rounds {
        let edit = gen.next_edit(&compiled.program_of(sc).unwrap());
        for (engine, s) in [(&compiled, sc), (&interp, si)] {
            engine
                .request(Request::Edit {
                    session: s,
                    edit: edit.clone(),
                })
                .unwrap_or_else(|e| panic!("{label} round {round}: edit: {e}"));
        }
        for (f, loc) in gen.next_queries(&compiled.program_of(sc).unwrap(), 4) {
            let a = compiled
                .query(sc, f.as_str(), loc)
                .unwrap_or_else(|e| panic!("{label} round {round}: compiled {f} {loc}: {e}"));
            let b = interp
                .query(si, f.as_str(), loc)
                .unwrap_or_else(|e| panic!("{label} round {round}: interp {f} {loc}: {e}"));
            assert_eq!(a, b, "{label} round {round}: answer at {f} {loc} diverges");
        }
    }
    let snap = |engine: &Engine<IntervalDomain>, s| match engine
        .request(Request::Snapshot { session: s })
        .unwrap()
    {
        Response::Snapshot(snap) => snap,
        other => panic!("{label}: unexpected {other:?}"),
    };
    assert_eq!(
        snap(&compiled, sc),
        snap(&interp, si),
        "{label}: final DOT snapshots diverge"
    );
    let (cs, is) = (compiled.stats(), interp.stats());
    assert!(
        cs.query_stats.transfers_compiled > 0,
        "{label}: compiled engine never used a staged closure"
    );
    assert_eq!(
        is.query_stats.transfers_compiled, 0,
        "{label}: interp engine used a staged closure"
    );
    assert!(is.query_stats.transfers_interp > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, .. ProptestConfig::default() })]

    #[test]
    fn engine_transfer_modes_agree_under_both_resolvers(seed in 0u64..100_000) {
        run_engine_differential(seed, ResolverChoice::Intra, 4);
        run_engine_differential(
            seed,
            ResolverChoice::Interproc { policy: dai_core::ContextPolicy::CallString(1) },
            4,
        );
    }
}

/// The digest guard end to end: after a relabel, a query must never be
/// answered from a closure staged for the old statement — the new value
/// must reflect the new statement immediately in both modes.
#[test]
fn relabel_never_serves_a_stale_closure() {
    let cfg = lower_program(&parse_program("function main() { var x0 = 7; return x0; }").unwrap())
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    for mode in [TransferMode::Compiled, TransferMode::Interp] {
        let mut fa = FuncAnalysis::<IntervalDomain>::with_config(
            cfg.clone(),
            IntervalDomain::entry_default(cfg.params()),
            FixStrategy::PAPER,
            mode,
        );
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let first = fa
            .query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        let edge = fa
            .cfg()
            .edges()
            .find(|e| matches!(&e.stmt, Stmt::Assign(v, _) if v.as_str() == "x0"))
            .unwrap()
            .id;
        fa.relabel(
            edge,
            Stmt::Assign("x0".into(), dai_lang::parse_expr("42").unwrap()),
        )
        .unwrap();
        let second = fa
            .query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        assert_ne!(
            first, second,
            "{mode:?}: relabel to a different constant must change the exit value"
        );
    }
}
