//! Language-substrate properties: pretty-print/parse round-trips on
//! randomly generated programs, CFG lowering invariants, and concrete
//! interpreter determinism.

use dai_bench::workload::Workload;
use dai_lang::ast::{Block, Function, Program};
use dai_lang::cfg::lower_program;
use dai_lang::interp::collect;
use dai_lang::loops::LoopAnalysis;
use dai_lang::pretty::program_to_source;
use dai_lang::{parse_program, Symbol};
use proptest::prelude::*;

/// Builds a random single-function program from workload blocks.
fn random_program(seed: u64, blocks: usize) -> Program {
    let mut gen = Workload::new(seed);
    let mut stmts = Vec::new();
    for _ in 0..blocks {
        stmts.extend(gen.random_block_no_calls().0);
    }
    stmts.push(dai_lang::ast::AstStmt::Return(Some(dai_lang::Expr::var(
        "x0",
    ))));
    Program {
        functions: vec![Function {
            name: Symbol::new("main"),
            params: vec![],
            body: Block(stmts),
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn pretty_parse_roundtrip(seed in 0u64..100_000, blocks in 1usize..8) {
        let program = random_program(seed, blocks);
        let printed = program_to_source(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(program, reparsed);
    }

    #[test]
    fn lowering_produces_valid_reducible_cfgs(seed in 0u64..100_000, blocks in 1usize..8) {
        let program = random_program(seed, blocks);
        let lowered = lower_program(&program).unwrap();
        for cfg in lowered.cfgs() {
            cfg.validate().unwrap();
            let la = LoopAnalysis::of(cfg);
            prop_assert!(la.is_reducible(cfg));
            // Incremental loop bookkeeping agrees with dominators.
            prop_assert_eq!(la.heads(), cfg.loop_heads());
            for l in cfg.locs() {
                prop_assert_eq!(la.enclosing_chain(l), cfg.enclosing_loops(l));
            }
        }
    }

    #[test]
    fn interpreter_is_deterministic(seed in 0u64..100_000, blocks in 1usize..6) {
        let program = random_program(seed, blocks);
        let lowered = lower_program(&program).unwrap();
        let r1 = collect(&lowered, "main", vec![], 5_000);
        let r2 = collect(&lowered, "main", vec![], 5_000);
        prop_assert_eq!(r1.return_value, r2.return_value);
        prop_assert_eq!(r1.errors.len(), r2.errors.len());
    }
}

#[test]
fn lowering_the_buckets_and_lists_suites() {
    for src in [dai_bench::buckets::BUCKETS_SRC, dai_bench::lists::LISTS_SRC] {
        let program = parse_program(src).unwrap();
        let printed = program_to_source(&program);
        assert_eq!(parse_program(&printed).unwrap(), program, "roundtrip");
        let lowered = lower_program(&program).unwrap();
        for cfg in lowered.cfgs() {
            cfg.validate().unwrap();
        }
    }
}

#[test]
fn concrete_runs_of_the_buckets_suite_have_no_errors() {
    // The §7.2 verification targets really are safe: the concrete
    // interpreter agrees (no bounds violations at runtime).
    let lowered = lower_program(&parse_program(dai_bench::buckets::BUCKETS_SRC).unwrap()).unwrap();
    let run = collect(&lowered, "main", vec![], 500_000);
    assert!(
        run.errors.is_empty(),
        "the array suite must execute cleanly: {:?}",
        run.errors
    );
}

#[test]
fn concrete_append_matches_shape_verification() {
    // Build two concrete lists, append them, and confirm the result is a
    // well-formed list — the runtime counterpart of the E5 verification.
    let src = format!(
        "{}\nfunction main() {{
            var a = new Node(); var b = new Node(); var c = new Node();
            a.next = b; b.next = null; c.next = null;
            var r = append(a, c);
            var n = 0;
            while (r != null) {{ n = n + 1; r = r.next; }}
            return n;
        }}",
        dai_bench::lists::LISTS_SRC
    );
    let lowered = lower_program(&parse_program(&src).unwrap()).unwrap();
    let run = collect(&lowered, "main", vec![], 100_000);
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    assert_eq!(run.return_value, Some(dai_lang::interp::Value::Int(3)));
}

// ---------------------------------------------------------------------
// Parser robustness: arbitrary byte soup must produce a ParseError, never
// a panic; and the `for`/`do`-`while` sugar round-trips through its
// desugared form.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,120}") {
        // Any outcome is fine; panics are not.
        let _ = parse_program(&s);
        let _ = dai_lang::parse_block(&s);
        let _ = dai_lang::parse_expr(&s);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "function", "var", "if", "else", "while", "for", "do",
                "return", "true", "false", "null", "new", "print", "len",
                "(", ")", "{", "}", "[", "]", ";", ",", ".", "=", "==",
                "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "&&",
                "||", "!", "x", "y", "f", "0", "1", "42",
            ]),
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_program(&src);
        let _ = dai_lang::parse_block(&src);
    }
}

#[test]
fn sugar_roundtrips_through_desugared_source() {
    // `for`/`do` have no printer form (they desugar at parse time); the
    // *desugared* program must round-trip exactly.
    let sugared = "function main() {
        var s = 0;
        for (var i = 0; i < 4; i = i + 1) { s = s + i; }
        do { s = s - 1; } while (s > 3);
        return s;
    }";
    let once = parse_program(sugared).unwrap();
    let printed = program_to_source(&once);
    let twice = parse_program(&printed).unwrap();
    assert_eq!(once, twice, "printed:\n{printed}");
    // And the concrete semantics agree before/after the round-trip.
    let r1 = collect(&lower_program(&once).unwrap(), "main", vec![], 10_000);
    let r2 = collect(&lower_program(&twice).unwrap(), "main", vec![], 10_000);
    assert_eq!(r1.return_value, r2.return_value);
    // s = 0+1+2+3 = 6, then do-while: 6→5→4→3 (stops at 3).
    assert_eq!(r1.return_value, Some(dai_lang::interp::Value::Int(3)));
}

#[test]
fn sugar_and_manual_desugaring_agree_concretely_and_abstractly() {
    let sugared = "function main() {
        var s = 0;
        for (var i = 0; i < 6; i = i + 1) { s = s + 2; }
        return s;
    }";
    let manual = "function main() {
        var s = 0;
        var i = 0;
        while (i < 6) { s = s + 2; i = i + 1; }
        return s;
    }";
    let (ps, pm) = (
        lower_program(&parse_program(sugared).unwrap()).unwrap(),
        lower_program(&parse_program(manual).unwrap()).unwrap(),
    );
    let rs = collect(&ps, "main", vec![], 10_000);
    let rm = collect(&pm, "main", vec![], 10_000);
    assert_eq!(rs.return_value, rm.return_value);
    assert_eq!(rs.return_value, Some(dai_lang::interp::Value::Int(12)));
    // Same abstract result at the exit, too.
    use dai_core::analysis::FuncAnalysis;
    use dai_core::query::{IntraResolver, QueryStats};
    use dai_domains::IntervalDomain;
    use dai_memo::MemoTable;
    let exit_of = |prog: &dai_lang::cfg::LoweredProgram| {
        let cfg = prog.by_name("main").unwrap().clone();
        let mut fa = FuncAnalysis::new(cfg, IntervalDomain::top());
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap()
    };
    assert_eq!(exit_of(&ps).interval_of("s"), exit_of(&pm).interval_of("s"));
}
