//! Property-based tests of the §3 abstract-interpreter laws for all
//! domains: `⊔` is an upper bound, `⊑` is a partial order compatible with
//! `⊔`, `∇` is an upper-bound operator with `∇(a, a) = a`, widening chains
//! stabilize, and `models` is monotone along `⊑` (γ is monotone). Covers
//! the paper's three evaluation domains (interval, octagon, shape) and the
//! finite-height extensions (sign, constant propagation, products).

use dai_domains::constprop::{Const, ConstDomain};
use dai_domains::interval::{AbsVal, Interval};
use dai_domains::sign::Sign;
use dai_domains::{
    AbstractDomain, Bool3, IntervalDomain, OctagonDomain, Prod, ShapeDomain, SignDomain,
};
use dai_lang::interp::{ConcreteState, Value};
use dai_lang::{parse_expr, Stmt, Symbol};
use proptest::prelude::*;

// ---------- generators ----------

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-50i64..50, 0i64..40).prop_map(|(lo, w)| Interval::of(lo, lo + w))
}

fn arb_absval() -> impl Strategy<Value = AbsVal> {
    prop_oneof![
        arb_interval().prop_map(AbsVal::Num),
        Just(AbsVal::Boolean(Bool3::True)),
        Just(AbsVal::Boolean(Bool3::Top)),
        Just(AbsVal::NullRef),
        Just(AbsVal::NodeRef),
        Just(AbsVal::AnyRef),
        Just(AbsVal::Top),
    ]
}

fn arb_interval_state() -> impl Strategy<Value = IntervalDomain> {
    prop::collection::vec((0usize..4, arb_absval()), 0..4).prop_map(|binds| {
        IntervalDomain::from_bindings(
            binds
                .into_iter()
                .map(|(i, v)| (Symbol::new(format!("v{i}")), v)),
        )
    })
}

/// Octagon states built by random assignment/assume sequences (keeps them
/// satisfiable-by-construction or ⊥, both valid).
fn arb_octagon_state() -> impl Strategy<Value = OctagonDomain> {
    prop::collection::vec((0usize..3, -10i64..10, 0usize..3), 0..5).prop_map(|ops| {
        let mut s = OctagonDomain::top();
        for (v, c, kind) in ops {
            let var = format!("v{v}");
            s = match kind {
                0 => s.transfer(&Stmt::Assign(
                    var.into(),
                    parse_expr(&c.to_string()).unwrap(),
                )),
                1 => s.transfer(&Stmt::Assign(
                    var.clone().into(),
                    parse_expr(&format!("v{} + {c}", (v + 1) % 3)).unwrap(),
                )),
                _ => s.transfer(&Stmt::Assume(
                    parse_expr(&format!("v{v} <= v{} + {c}", (v + 1) % 3)).unwrap(),
                )),
            };
        }
        s
    })
}

fn arb_sign() -> impl Strategy<Value = Sign> {
    prop_oneof![
        Just(Sign::NEG),
        Just(Sign::ZERO),
        Just(Sign::POS),
        Just(Sign::NONPOS),
        Just(Sign::NONNEG),
        Just(Sign::NONZERO),
        Just(Sign::TOP),
    ]
}

fn arb_sign_state() -> impl Strategy<Value = SignDomain> {
    prop::collection::vec((0usize..4, arb_sign()), 0..4).prop_map(|binds| {
        SignDomain::from_bindings(
            binds
                .into_iter()
                .map(|(i, s)| (Symbol::new(format!("v{i}")), s)),
        )
    })
}

fn arb_const() -> impl Strategy<Value = Const> {
    prop_oneof![
        (-20i64..20).prop_map(Const::Int),
        any::<bool>().prop_map(Const::Bool),
        Just(Const::Null),
    ]
}

fn arb_const_state() -> impl Strategy<Value = ConstDomain> {
    prop::collection::vec((0usize..4, arb_const()), 0..4).prop_map(|binds| {
        ConstDomain::from_bindings(
            binds
                .into_iter()
                .map(|(i, c)| (Symbol::new(format!("v{i}")), c)),
        )
    })
}

fn arb_product_state() -> impl Strategy<Value = Prod<IntervalDomain, SignDomain>> {
    (arb_interval_state(), arb_sign_state()).prop_map(|(a, b)| Prod::new(a, b))
}

fn arb_shape_state() -> impl Strategy<Value = ShapeDomain> {
    prop::collection::vec(0usize..5, 0..6).prop_map(|ops| {
        let mut s = ShapeDomain::with_lists(&["p"]);
        for op in ops {
            s = match op {
                0 => s.transfer(&Stmt::Assign("q".into(), dai_lang::Expr::AllocNode)),
                1 => s.transfer(&Stmt::Assign("r".into(), parse_expr("p").unwrap())),
                2 => s.transfer(&Stmt::Assume(parse_expr("p != null").unwrap())),
                3 => s.transfer(&Stmt::Assign("r".into(), parse_expr("p.next").unwrap())),
                _ => s.transfer(&Stmt::Assign("p".into(), parse_expr("null").unwrap())),
            };
        }
        s
    })
}

// ---------- the laws, generic ----------

fn law_join_upper_bound<D: AbstractDomain>(a: &D, b: &D) {
    let j = a.join(b);
    prop_assert_ok(a.leq(&j), "a ⊑ a⊔b");
    prop_assert_ok(b.leq(&j), "b ⊑ a⊔b");
}

fn law_widen_upper_bound<D: AbstractDomain>(a: &D, b: &D) {
    let w = a.widen(b);
    let j = a.join(b);
    prop_assert_ok(j.leq(&w), "a⊔b ⊑ a∇b");
}

fn law_widen_reflexive<D: AbstractDomain>(a: &D) {
    // Required so converged loops stay converged: ∇(a, a) = a on widen
    // outputs. Feed a through one widen first to reach the canonical form
    // widening operates on.
    let c = a.widen(a);
    prop_assert_ok(c.widen(&c) == c, "∇(c, c) = c on widen outputs");
}

fn law_leq_partial_order<D: AbstractDomain>(a: &D, b: &D) {
    prop_assert_ok(a.leq(a), "reflexivity");
    prop_assert_ok(D::bottom().leq(a), "⊥ least");
    if a.leq(b) && b.leq(a) {
        // Antisymmetry up to semantic equality: join must be a no-gain.
        let j = a.join(b);
        prop_assert_ok(j.leq(a) && j.leq(b), "mutual ⊑ implies join adds nothing");
    }
}

fn law_widening_chain_stabilizes<D: AbstractDomain>(mut acc: D, steps: &[D]) {
    // acc, acc ∇ s1, (acc ∇ s1) ∇ s2, ... must stabilize within the test's
    // horizon when the same steps repeat.
    for _round in 0..60 {
        let mut changed = false;
        for s in steps {
            let grown = acc.join(s);
            let next = acc.widen(&grown);
            if next != acc {
                acc = next;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
    panic!("widening chain failed to stabilize");
}

fn prop_assert_ok(cond: bool, msg: &str) {
    assert!(cond, "domain law violated: {msg}");
}

// ---------- instantiations ----------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn interval_laws(a in arb_interval_state(), b in arb_interval_state()) {
        law_join_upper_bound(&a, &b);
        law_widen_upper_bound(&a, &b);
        law_widen_reflexive(&a);
        law_leq_partial_order(&a, &b);
    }

    #[test]
    fn interval_widening_chains(a in arb_interval_state(), steps in prop::collection::vec(arb_interval_state(), 1..4)) {
        law_widening_chain_stabilizes(a, &steps);
    }

    #[test]
    fn octagon_laws(a in arb_octagon_state(), b in arb_octagon_state()) {
        law_join_upper_bound(&a, &b);
        law_widen_upper_bound(&a, &b);
        law_widen_reflexive(&a);
        law_leq_partial_order(&a, &b);
    }

    #[test]
    fn octagon_widening_chains(a in arb_octagon_state(), steps in prop::collection::vec(arb_octagon_state(), 1..3)) {
        law_widening_chain_stabilizes(a, &steps);
    }

    #[test]
    fn shape_laws(a in arb_shape_state(), b in arb_shape_state()) {
        law_join_upper_bound(&a, &b);
        law_widen_upper_bound(&a, &b);
        law_widen_reflexive(&a);
        law_leq_partial_order(&a, &b);
    }

    #[test]
    fn shape_widening_chains(a in arb_shape_state(), steps in prop::collection::vec(arb_shape_state(), 1..3)) {
        law_widening_chain_stabilizes(a, &steps);
    }

    #[test]
    fn sign_laws(a in arb_sign_state(), b in arb_sign_state()) {
        law_join_upper_bound(&a, &b);
        law_widen_upper_bound(&a, &b);
        law_widen_reflexive(&a);
        law_leq_partial_order(&a, &b);
    }

    #[test]
    fn sign_widening_chains(a in arb_sign_state(), steps in prop::collection::vec(arb_sign_state(), 1..4)) {
        law_widening_chain_stabilizes(a, &steps);
    }

    #[test]
    fn constprop_laws(a in arb_const_state(), b in arb_const_state()) {
        law_join_upper_bound(&a, &b);
        law_widen_upper_bound(&a, &b);
        law_widen_reflexive(&a);
        law_leq_partial_order(&a, &b);
    }

    #[test]
    fn constprop_widening_chains(a in arb_const_state(), steps in prop::collection::vec(arb_const_state(), 1..4)) {
        law_widening_chain_stabilizes(a, &steps);
    }

    #[test]
    fn product_laws(a in arb_product_state(), b in arb_product_state()) {
        law_join_upper_bound(&a, &b);
        law_widen_upper_bound(&a, &b);
        law_widen_reflexive(&a);
        law_leq_partial_order(&a, &b);
    }

    #[test]
    fn product_widening_chains(a in arb_product_state(), steps in prop::collection::vec(arb_product_state(), 1..3)) {
        law_widening_chain_stabilizes(a, &steps);
    }

    #[test]
    fn sign_models_monotone(a in arb_sign(), b in arb_sign(), n in -60i64..60) {
        if a.leq(b) && a.contains(n) {
            prop_assert!(b.contains(n), "γ must be monotone on signs");
        }
    }

    #[test]
    fn product_models_iff_both(a in arb_interval_state(), s in arb_sign_state(), n in -20i64..20) {
        let p = Prod::new(a.clone(), s.clone());
        let mut c = ConcreteState::new();
        c.env.insert("v0".into(), Value::Int(n));
        if !p.is_bottom() {
            prop_assert_eq!(p.models(&c), a.models(&c) && s.models(&c));
        }
    }

    #[test]
    fn interval_models_monotone(v in arb_absval(), w in arb_absval(), n in -60i64..60) {
        // γ monotone: v ⊑ w and σ ⊨ v implies σ ⊨ w — at the value level.
        let concrete = Value::Int(n);
        if v.leq(&w) && v.models(&concrete) {
            prop_assert!(w.models(&concrete));
        }
    }

    #[test]
    fn interval_join_models_both_sides(a in arb_interval_state(), b in arb_interval_state(), n in -20i64..20) {
        // Anything modelled by a side is modelled by the join.
        let mut c = ConcreteState::new();
        c.env.insert("v0".into(), Value::Int(n));
        let j = a.join(&b);
        if a.models(&c) || b.models(&c) {
            prop_assert!(j.models(&c));
        }
    }
}

#[test]
fn transfer_preserves_bottom() {
    let stmts = [
        Stmt::Assign("x".into(), parse_expr("1").unwrap()),
        Stmt::Assume(parse_expr("x < 5").unwrap()),
        Stmt::Skip,
    ];
    for s in &stmts {
        assert!(IntervalDomain::bottom().transfer(s).is_bottom());
        assert!(OctagonDomain::bottom().transfer(s).is_bottom());
        assert!(ShapeDomain::bottom().transfer(s).is_bottom());
        assert!(SignDomain::bottom().transfer(s).is_bottom());
        assert!(ConstDomain::bottom().transfer(s).is_bottom());
        assert!(Prod::<IntervalDomain, SignDomain>::bottom()
            .transfer(s)
            .is_bottom());
    }
}
