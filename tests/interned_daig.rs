//! The interned-id DAIG representation (PR 2) against the Name-keyed
//! semantics it replaced.
//!
//! Two layers of evidence:
//!
//! 1. **Graph-level model agreement** — a `ModelDaig` reimplementing the
//!    original `HashMap<Name, …>`/`BTreeSet<Name>` graph is driven
//!    through random operation sequences in lock-step with the interned
//!    [`dai_core::Daig`]; every observable (`contains`, `value`, `comp`,
//!    `dependents`, counts, the ready frontier) must agree after every
//!    step, including cell removal and id-resurrecting re-adds.
//! 2. **Pipeline-level representation independence** — random
//!    build/edit/unroll/query histories leave the graph with interning
//!    orders that depend on the whole history; a freshly built analysis
//!    of the final program must nevertheless produce identical
//!    `value(&Name)` answers for every cell *and* byte-identical DOT
//!    export after full evaluation.
//!
//! Plus the incrementality regression check: an engine evaluation whose
//! loops unroll N times still traverses the demanded cone exactly once
//! (`QueryStats::cone_walks`).

use dai_bench::workload::Workload;
use dai_core::analysis::FuncAnalysis;
use dai_core::dot::{to_dot, DotOptions};
use dai_core::graph::{Daig, Func, Value};
use dai_core::name::{IterCtx, Name};
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::IntervalDomain;
use dai_lang::{EdgeId, Loc, Stmt};
use dai_memo::MemoTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};

type D = IntervalDomain;

// ---------------------------------------------------------------------
// Layer 1: the Name-keyed reference model (the pre-interning Daig).
// ---------------------------------------------------------------------

#[derive(Default)]
struct ModelDaig {
    cells: HashMap<Name, Option<Value<D>>>,
    comps: HashMap<Name, (Func, Vec<Name>)>,
    dependents: HashMap<Name, BTreeSet<Name>>,
}

impl ModelDaig {
    fn add_cell(&mut self, n: Name, v: Option<Value<D>>) {
        self.cells.insert(n, v);
    }

    fn write(&mut self, n: &Name, v: Value<D>) {
        if let Some(slot) = self.cells.get_mut(n) {
            *slot = Some(v);
        }
    }

    fn clear(&mut self, n: &Name) {
        if let Some(slot) = self.cells.get_mut(n) {
            *slot = None;
        }
    }

    fn add_comp(&mut self, dest: Name, func: Func, srcs: Vec<Name>) {
        self.remove_comp(&dest);
        for s in &srcs {
            self.dependents
                .entry(s.clone())
                .or_default()
                .insert(dest.clone());
        }
        self.comps.insert(dest, (func, srcs));
    }

    fn remove_comp(&mut self, dest: &Name) {
        if let Some((_, srcs)) = self.comps.remove(dest) {
            for s in &srcs {
                if let Some(ds) = self.dependents.get_mut(s) {
                    ds.remove(dest);
                    if ds.is_empty() {
                        self.dependents.remove(s);
                    }
                }
            }
        }
    }

    fn remove_cell(&mut self, n: &Name) {
        self.remove_comp(n);
        self.cells.remove(n);
    }

    fn value(&self, n: &Name) -> Option<&Value<D>> {
        self.cells.get(n).and_then(|v| v.as_ref())
    }

    fn ready_frontier(&self) -> BTreeSet<Name> {
        // The namespace is the cell map: a computation whose destination
        // cell was never added (or was removed) is latent until the cell
        // (re)appears.
        self.comps
            .iter()
            .filter(|(dest, (_, srcs))| {
                self.cells.contains_key(*dest)
                    && self.value(dest).is_none()
                    && srcs.iter().all(|s| self.value(s).is_some())
            })
            .map(|(dest, _)| dest.clone())
            .collect()
    }
}

fn name_pool() -> Vec<Name> {
    let mut pool = Vec::new();
    for l in 0..6u32 {
        pool.push(Name::State {
            loc: Loc(l),
            ctx: IterCtx::root(),
        });
        pool.push(Name::State {
            loc: Loc(l),
            ctx: IterCtx::root().push(Loc(l), l % 3),
        });
        pool.push(Name::Stmt(EdgeId(l)));
        pool.push(Name::PreJoin {
            edge: EdgeId(l),
            ctx: IterCtx::root(),
        });
        pool.push(Name::PreWiden {
            head: Loc(l),
            ctx: IterCtx::root().push(Loc(l), 0),
        });
    }
    pool
}

fn random_value(rng: &mut StdRng) -> Value<D> {
    if rng.gen_range(0..4usize) == 0 {
        Value::Stmt(Stmt::Skip)
    } else {
        Value::State(IntervalDomain::top())
    }
}

/// Drives the interned graph and the Name-keyed model through the same
/// random op sequence and checks every observable after each step.
fn run_model_agreement(seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = name_pool();
    let mut daig: Daig<D> = Daig::new();
    let mut model = ModelDaig::default();
    let pick = |rng: &mut StdRng| pool[rng.gen_range(0..30usize) % 30].clone();

    for step in 0..steps {
        match rng.gen_range(0..7usize) {
            0 => {
                let n = pick(&mut rng);
                let v = if rng.gen_range(0..2usize) == 0 {
                    Some(random_value(&mut rng))
                } else {
                    None
                };
                daig.add_cell(n.clone(), v.clone());
                model.add_cell(n, v);
            }
            1 => {
                let n = pick(&mut rng);
                let v = random_value(&mut rng);
                daig.write(&n, v.clone());
                model.write(&n, v);
            }
            2 => {
                let n = pick(&mut rng);
                daig.clear(&n);
                model.clear(&n);
            }
            3 => {
                let dest = pick(&mut rng);
                let arity = rng.gen_range(1..4usize);
                let srcs: Vec<Name> = (0..arity).map(|_| pick(&mut rng)).collect();
                let func =
                    [Func::Transfer, Func::Join, Func::Widen, Func::Fix][rng.gen_range(0..4usize)];
                daig.add_comp(dest.clone(), func, srcs.clone());
                model.add_comp(dest, func, srcs);
            }
            4 => {
                let n = pick(&mut rng);
                daig.remove_comp(&n);
                model.remove_comp(&n);
            }
            5 => {
                let n = pick(&mut rng);
                daig.remove_cell(&n);
                model.remove_cell(&n);
            }
            _ => {
                // Resurrection: remove then re-add the same name; the
                // interned graph must reuse the id and look identical.
                let n = pick(&mut rng);
                let id_before = daig.id_of(&n);
                daig.remove_cell(&n);
                model.remove_cell(&n);
                daig.add_cell(n.clone(), None);
                model.add_cell(n.clone(), None);
                if let Some(id) = id_before {
                    assert_eq!(daig.id_of(&n), Some(id), "step {step}: id resurrects");
                }
            }
        }

        // Observable agreement on the full pool.
        assert_eq!(
            daig.cell_count(),
            model.cells.len(),
            "step {step}: cell count"
        );
        assert_eq!(
            daig.comp_count(),
            model.comps.len(),
            "step {step}: comp count"
        );
        assert_eq!(
            daig.filled_count(),
            model.cells.values().filter(|v| v.is_some()).count(),
            "step {step}: filled count"
        );
        for n in &pool {
            assert_eq!(
                daig.contains(n),
                model.cells.contains_key(n),
                "step {step}: contains({n})"
            );
            assert_eq!(daig.value(n), model.value(n), "step {step}: value({n})");
            let comp = daig.comp(n);
            let model_comp = model.comps.get(n).filter(|_| model.cells.contains_key(n));
            assert_eq!(
                comp.as_ref().map(|c| (c.func, c.srcs.clone())),
                model_comp.map(|(f, s)| (*f, s.clone())),
                "step {step}: comp({n})"
            );
            let deps: BTreeSet<Name> = daig.dependents(n).cloned().collect();
            let model_deps: BTreeSet<Name> =
                match (model.cells.contains_key(n), model.dependents.get(n)) {
                    (true, Some(ds)) => ds.clone(),
                    _ => BTreeSet::new(),
                };
            assert_eq!(deps, model_deps, "step {step}: dependents({n})");
        }
        let frontier: BTreeSet<Name> = daig.ready_frontier().cloned().collect();
        assert_eq!(frontier, model.ready_frontier(), "step {step}: frontier");
    }
}

// ---------------------------------------------------------------------
// Layer 2: pipeline representation independence.
// ---------------------------------------------------------------------

/// Applies a random splice/query history to a demanded analysis, then
/// compares it — values for every cell, and DOT export — against a fresh
/// analysis of the final program. The two graphs interned their names in
/// completely different orders (the history one carries unroll/rollback
/// churn); every Name-level observable must agree.
fn run_history_vs_fresh(seed: u64, edits: usize) {
    let mut gen = Workload::new(seed);
    let program = Workload::initial_program();
    let cfg = program.by_name("main").unwrap().clone();
    let mut fa: FuncAnalysis<D> = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();

    for step in 0..edits {
        let edges: Vec<EdgeId> = fa.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        fa.splice(edge, &block).unwrap();
        // Interleave demanded queries so unroll/rollback churn happens
        // mid-history (this is what scrambles interning order).
        if step % 2 == 0 {
            fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                .unwrap();
        }
    }
    // Fully evaluate the edited analysis.
    fa.evaluate_all(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap();
    fa.daig().check_well_formed().unwrap();

    // A fresh analysis of the final program, fully evaluated.
    let final_cfg = fa.cfg().clone();
    let mut fresh: FuncAnalysis<D> = FuncAnalysis::new(final_cfg, IntervalDomain::top());
    let mut fresh_memo = MemoTable::new();
    let mut fresh_stats = QueryStats::default();
    fresh
        .evaluate_all(&mut fresh_memo, &mut IntraResolver, &mut fresh_stats)
        .unwrap();

    // Identical namespaces and identical value(&Name) answers.
    let mut names: Vec<Name> = fa.daig().names().cloned().collect();
    names.sort();
    let mut fresh_names: Vec<Name> = fresh.daig().names().cloned().collect();
    fresh_names.sort();
    assert_eq!(names, fresh_names, "seed {seed}: namespace");
    for n in &names {
        assert_eq!(
            fa.daig().value(n),
            fresh.daig().value(n),
            "seed {seed}: value({n})"
        );
    }
    // Byte-identical DOT export despite disjoint interning histories.
    let opts = DotOptions::default();
    assert_eq!(
        to_dot(fa.daig(), &opts),
        to_dot(fresh.daig(), &opts),
        "seed {seed}: dot export"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn interned_daig_agrees_with_name_keyed_model(seed in 0u64..10_000) {
        run_model_agreement(seed, 60);
    }

    #[test]
    fn edit_unroll_history_matches_fresh_build(seed in 0u64..10_000) {
        run_history_vs_fresh(seed, 5);
    }
}

#[test]
fn converged_query_walks_cone_once_despite_unrolls() {
    // The incremental-cone regression gate: an engine evaluation that
    // unrolls nested loops several times performs exactly one demanded
    // cone traversal.
    let src = "function f(n) { var i = 0; var s = 0; \
               while (i < 9) { var j = 0; while (j < 4) { s = s + j; j = j + 1; } i = i + 1; } \
               return s; }";
    let cfg = dai_lang::cfg::lower_program(&dai_lang::parse_program(src).unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    let mut fa: FuncAnalysis<D> = FuncAnalysis::new(cfg, IntervalDomain::top());
    let pool = dai_engine::WorkerPool::new(1);
    let memo = dai_memo::SharedMemoTable::new(4);
    let mut stats = QueryStats::default();
    let exit = Name::State {
        loc: fa.cfg().exit(),
        ctx: IterCtx::root(),
    };
    dai_engine::evaluate_targets(
        &mut fa,
        std::slice::from_ref(&exit),
        &memo,
        &IntraResolver,
        &pool.handle(),
        &mut stats,
    )
    .unwrap();
    assert!(
        stats.unrolls >= 2,
        "workload must unroll (got {})",
        stats.unrolls
    );
    assert_eq!(
        stats.cone_walks, 1,
        "one cone traversal for {} unrolls",
        stats.unrolls
    );
    // Re-evaluating the now-filled target walks nothing at all.
    dai_engine::evaluate_targets(
        &mut fa,
        &[exit],
        &memo,
        &IntraResolver,
        &pool.handle(),
        &mut stats,
    )
    .unwrap();
    assert_eq!(stats.cone_walks, 1);
}
