//! Replays of the paper's §2 worked examples, as executable tests:
//!
//! * Fig. 3 / Fig. 4a — demand-driven query evaluation on `append`'s DAIG:
//!   a query for the early-return state computes only its dependency cone;
//! * Fig. 4b — the incremental edit (inserting a `print` before
//!   `ret = q`): the statement cell is reused, only forward-reachable
//!   cells are dirtied, and the re-query executes just the red/green
//!   edges;
//! * Fig. 4c — demanded fixed points: the loop is unrolled one abstract
//!   iteration at a time, the fix edge slides forward, and an edit to the
//!   loop body rolls it back;
//! * §2.2's auxiliary memo table — `⟦s₀⟧♯(φ₀)` computed at one location is
//!   reused (`Q-Match`) at structurally identical computations elsewhere.

use dai_core::analysis::FuncAnalysis;
use dai_core::build::Overrides;
use dai_core::name::{IterCtx, Name};
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::Func;
use dai_domains::{AbstractDomain, IntervalDomain, ShapeDomain};
use dai_lang::cfg::{lower_program, Cfg};
use dai_lang::parser::{parse_block, parse_program};
use dai_lang::RETURN_VAR;
use dai_memo::MemoTable;

const APPEND: &str = r#"
    function append(p, q) {
        if (p == null) { return q; }
        var r = p;
        while (r.next != null) { r = r.next; }
        r.next = q;
        return p;
    }
"#;

fn append_cfg() -> Cfg {
    lower_program(&parse_program(APPEND).unwrap())
        .unwrap()
        .by_name("append")
        .unwrap()
        .clone()
}

/// Fig. 4a: querying the pre-join cell for the `p == null` branch
/// evaluates only that branch — the loop is never unrolled.
#[test]
fn fig4a_demand_query_computes_only_dependency_cone() {
    let cfg = append_cfg();
    let mut fa = FuncAnalysis::new(cfg.clone(), ShapeDomain::with_lists(&["p", "q"]));
    let mut memo = MemoTable::new();
    // The `return q` edge's destination is the exit join: find its
    // pre-join cell (the paper's 1·ℓret).
    let ret_q = cfg
        .edges()
        .find(|e| e.stmt.to_string() == "__ret = q")
        .expect("return q edge");
    let pre_join = Name::PreJoin {
        edge: ret_q.id,
        ctx: IterCtx::root(),
    };
    let mut stats = QueryStats::default();
    let v = fa
        .query_name(&mut memo, &pre_join, &mut IntraResolver, &mut stats)
        .unwrap();
    let state = v.as_state().unwrap();
    // The returned state knows p = null and ret is a list.
    assert!(state.proves_list(RETURN_VAR), "{state}");
    // Crucially: no demanded unrolling happened — the loop was not needed.
    assert_eq!(stats.unrolls, 0, "query must not evaluate the loop");
    // And the loop's fixed-point cell is still empty.
    let head = cfg.loop_heads()[0];
    let fix_cell = Name::State {
        loc: head,
        ctx: IterCtx::root(),
    };
    assert!(fa.daig().value(&fix_cell).is_none());
}

/// Fig. 4b: inserting `print(...)` before `ret = q` reuses the statement
/// cell, dirties only the forward-reachable cells, and the re-query
/// executes only two transfers and one join.
#[test]
fn fig4b_incremental_edit_dirties_only_downstream() {
    let cfg = append_cfg();
    let mut fa = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    // Fully evaluate first (so reuse is observable).
    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap();
    let filled_before = fa.daig().filled_count();

    let ret_q = fa
        .cfg()
        .edges()
        .find(|e| e.stmt.to_string() == "__ret = q")
        .expect("return q edge")
        .id;
    fa.splice(ret_q, &parse_block("print(0);").unwrap())
        .unwrap();

    // Only the pre-join for this branch and the exit join were dirtied
    // (two state cells), while new empty cells were added.
    let filled_after = fa.daig().filled_count();
    assert!(
        filled_after >= filled_before - 2,
        "over-dirtied: {filled_before} -> {filled_after}"
    );

    // Re-query: exactly the paper's "two transfers and one join" — the
    // new print transfer, the relocated return transfer, and the join.
    let mut stats2 = QueryStats::default();
    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats2)
        .unwrap();
    assert!(
        stats2.computed + stats2.memo_matched <= 3,
        "expected at most 2 transfers + 1 join, did {} computations and {} matches",
        stats2.computed,
        stats2.memo_matched
    );
    assert_eq!(stats2.unrolls, 0, "the loop fixed point must be reused");
}

/// Fig. 4c: the fix edge initially reads iterates 0 and 1; demanded
/// unrolling slides it forward; an edit to the loop-body statement rolls
/// it back to (0, 1).
#[test]
fn fig4c_demanded_unrolling_slides_and_rolls_back() {
    let cfg = append_cfg();
    let mut fa = FuncAnalysis::new(cfg.clone(), ShapeDomain::with_lists(&["p", "q"]));
    let head = cfg.loop_heads()[0];
    let fix_cell = Name::State {
        loc: head,
        ctx: IterCtx::root(),
    };
    let it = |i: u32| Name::State {
        loc: head,
        ctx: IterCtx::root().push(head, i),
    };

    // Initial: fix(ℓ⟨0⟩, ℓ⟨1⟩).
    let comp = fa.daig().comp(&fix_cell).unwrap();
    assert_eq!(comp.func, Func::Fix);
    assert_eq!(comp.srcs, vec![it(0), it(1)]);

    // Demand the fixed point: one unrolling (§7.2), fix slides to (1, 2).
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    fa.query_name(&mut memo, &fix_cell, &mut IntraResolver, &mut stats)
        .unwrap();
    assert_eq!(stats.unrolls, 1);
    let comp = fa.daig().comp(&fix_cell).unwrap();
    assert_eq!(comp.srcs, vec![it(1), it(2)]);
    assert!(fa.daig().contains(&it(2)));

    // Edit the loop body statement (`r = r.next`): E-Loop rolls the fix
    // edge back to (0, 1) and removes the unrolled copies.
    let back = cfg.back_edge(head).unwrap();
    fa.relabel(
        back,
        dai_lang::Stmt::Assign("r".into(), dai_lang::parse_expr("r.next").unwrap()),
    )
    .unwrap();
    let comp = fa.daig().comp(&fix_cell).unwrap();
    assert_eq!(comp.srcs, vec![it(0), it(1)], "fix edge must roll back");
    assert!(
        !fa.daig().contains(&it(2)),
        "unrolled iterate must be removed"
    );
    fa.daig().check_well_formed().unwrap();

    // Statement cells are never duplicated by unrolling (Fig. 4c caption).
    let stmt_cells = fa.daig().names().filter(|n| n.is_stmt()).count();
    assert_eq!(stmt_cells, cfg.edge_count());
}

/// §2.2: the auxiliary memo table reuses `⟦s⟧♯(φ)` across *different* DAIG
/// cells with identical inputs.
#[test]
fn auxiliary_memo_table_matches_across_locations() {
    // Two identical branches: the same statement applied to the same
    // abstract state in two different cells. The branch condition is an
    // opaque boolean, so the two `assume` refinements leave the state
    // unchanged and the pre-states are *equal* — the memo key
    // `⟦·⟧♯·(x = x + 1)·φ` matches across the two DAIG cells.
    let src = "function f(c) { var x = 1; if (c) { x = x + 1; } else { x = x + 1; } return x; }";
    let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
    let mut fa = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap();
    assert!(
        memo.stats().hits >= 1,
        "identical branch transfers must memo-match: {:?}",
        memo.stats()
    );
    assert!(stats.memo_matched >= 1, "{stats:?}");
}

/// §2.2 (end): "it is sound to drop cached results from the DAIG and/or
/// memo table and later recompute those results" — clearing the memo
/// table between queries changes nothing observable.
#[test]
fn dropping_memo_entries_is_sound() {
    let cfg = append_cfg();
    let mut fa = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    let before = fa
        .query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap();
    memo.clear();
    fa.dirty_everything();
    let after = fa
        .query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap();
    assert_eq!(before, after);
    // A capacity-bounded memo table gives the same results too.
    let mut small: MemoTable<dai_core::Value<IntervalDomain>> = MemoTable::with_capacity_limit(4);
    fa.dirty_everything();
    let mut stats2 = QueryStats::default();
    let bounded = fa
        .query_exit(&mut small, &mut IntraResolver, &mut stats2)
        .unwrap();
    assert_eq!(before, bounded);
}

/// The interval instantiation of the paper's Fig. 1 program: array-bounds
/// clients and the shape clients agree that `append` has no *numeric*
/// obligations; this exercises the domain-agnosticity claim (§7.2) — the
/// same DAIG machinery runs three different domains over one CFG.
#[test]
fn same_cfg_three_domains() {
    let cfg = append_cfg();
    let mut i = FuncAnalysis::new(cfg.clone(), IntervalDomain::top());
    let mut o = FuncAnalysis::new(cfg.clone(), dai_domains::OctagonDomain::top());
    let mut s = FuncAnalysis::new(cfg, ShapeDomain::with_lists(&["p", "q"]));
    let mut stats = QueryStats::default();
    let mut m1 = MemoTable::new();
    let mut m2 = MemoTable::new();
    let mut m3 = MemoTable::new();
    assert!(!i
        .query_exit(&mut m1, &mut IntraResolver, &mut stats)
        .unwrap()
        .is_bottom());
    assert!(!o
        .query_exit(&mut m2, &mut IntraResolver, &mut stats)
        .unwrap()
        .is_bottom());
    let shape_exit = s
        .query_exit(&mut m3, &mut IntraResolver, &mut stats)
        .unwrap();
    assert!(!shape_exit.may_error());
}

/// Footnote 5 / Definition A.2: a loop-exit edge reads the head's
/// fixed-point cell, so a query *after* the loop forces convergence, while
/// body cells read the iterate cells.
#[test]
fn loop_exit_reads_fix_cell() {
    let cfg = append_cfg();
    let head = cfg.loop_heads()[0];
    let ov = Overrides::new();
    // Exit edge: assume r.next == null leaves the loop.
    let exit_edge = cfg
        .edges()
        .find(|e| e.src == head && !cfg.loops_containing(e.dst).contains(&head))
        .expect("loop exit edge");
    let src = dai_core::build::src_name(&cfg, exit_edge.src, exit_edge.dst, &ov);
    assert_eq!(
        src,
        Name::State {
            loc: head,
            ctx: IterCtx::root()
        }
    );
    // Body edge: assume r.next != null stays inside.
    let body_edge = cfg
        .edges()
        .find(|e| e.src == head && cfg.loops_containing(e.dst).contains(&head))
        .expect("loop body edge");
    let src = dai_core::build::src_name(&cfg, body_edge.src, body_edge.dst, &ov);
    assert_eq!(
        src,
        Name::State {
            loc: head,
            ctx: IterCtx::root().push(head, 0)
        }
    );
}
