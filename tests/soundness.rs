//! Corollary 6.2 (query results are sound), as an executable property:
//! every concrete state the interpreter witnesses at a location is
//! modelled (`σ ⊨ φ`, i.e. `σ ∈ γ(φ)`) by the abstract state a demanded
//! query returns there — for all three domains, including across edits.

use dai_bench::workload::Workload;
use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::{
    AbstractDomain, ConstDomain, IntervalDomain, OctagonDomain, Prod, ShapeDomain, SignDomain,
};
use dai_lang::cfg::lower_program;
use dai_lang::interp::{collect, Value as CValue};
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;

/// Checks, for one single-function program, that the demanded analysis
/// covers the bounded collecting semantics.
fn check_soundness<D: AbstractDomain>(src: &str, phi0: D, args: Vec<CValue>) {
    let lowered = lower_program(&parse_program(src).unwrap()).unwrap();
    let fname = lowered.cfgs()[0].name().clone();
    let run = collect(&lowered, fname.as_str(), args, 50_000);
    let cfg = lowered.cfgs()[0].clone();
    let mut fa = FuncAnalysis::new(cfg.clone(), phi0);
    let mut memo = MemoTable::new();
    for loc in cfg.locs() {
        let mut stats = QueryStats::default();
        let abs = fa
            .query_loc(&mut memo, loc, &mut IntraResolver, &mut stats)
            .unwrap_or_else(|e| panic!("query {loc}: {e}"));
        for (i, concrete) in run.states_at(fname.as_str(), loc).iter().enumerate() {
            assert!(
                abs.models(concrete),
                "UNSOUND at {loc} (witness {i}):\n  concrete: {concrete:?}\n  abstract: {abs}\n  program:\n{src}"
            );
        }
    }
}

const NUMERIC_PROGRAMS: &[&str] = &[
    "function main() { var x = 1; var y = x + 2; if (y > 2) { x = y * y; } else { x = 0 - y; } return x; }",
    "function main() { var i = 0; var s = 0; while (i < 7) { s = s + i; i = i + 1; } return s; }",
    "function main() { var i = 0; var j = 0; while (i < 5) { i = i + 1; if (j < i) { j = j + 2; } } return j - i; }",
    "function main() { var a = [1, 2, 3]; var i = 0; var s = 0; while (i < len(a)) { s = s + a[i]; i = i + 1; } return s; }",
    "function main() { var x = 9223372036854775807; var y = x + 1; return y; }", // wraps!
    "function main() { var b = true; var x = 0; if (b) { x = 5; } return x % 3; }",
    "function main() { var n = 4; var f = 1; while (n > 0) { f = f * n; n = n - 1; } return f; }",
    "function main() { var a = [5, 6]; a[0] = a[1] + 1; var m = a[0]; if (m == 7) { m = m - 7; } return m; }",
    "function main() { var x = 10; var y = x / 3; var z = x % 3; return y * 3 + z; }",
    // Surface sugar: `for` and `do`-`while` desugar to the while core.
    "function main() { var s = 0; for (var i = 0; i < 5; i = i + 1) { s = s + i; } return s; }",
    "function main() { var x = 0; do { x = x + 3; } while (x < 10); return x; }",
    "function main() { var t = 0; for (var i = 0; i < 3; i = i + 1) { for (var j = 0; j < 2; j = j + 1) { t = t + 1; } } return t; }",
];

#[test]
fn interval_sound_on_numeric_programs() {
    for src in NUMERIC_PROGRAMS {
        check_soundness(src, IntervalDomain::top(), vec![]);
    }
}

#[test]
fn octagon_sound_on_numeric_programs() {
    for src in NUMERIC_PROGRAMS {
        check_soundness(src, OctagonDomain::top(), vec![]);
    }
}

#[test]
fn shape_sound_on_numeric_programs() {
    // The shape domain must remain sound even on programs it does not
    // track precisely.
    for src in NUMERIC_PROGRAMS {
        check_soundness(src, ShapeDomain::top_state(), vec![]);
    }
}

#[test]
fn sign_sound_on_numeric_programs() {
    for src in NUMERIC_PROGRAMS {
        check_soundness(src, SignDomain::top(), vec![]);
    }
}

#[test]
fn constprop_sound_on_numeric_programs() {
    for src in NUMERIC_PROGRAMS {
        check_soundness(src, ConstDomain::top(), vec![]);
    }
}

#[test]
fn product_sound_on_numeric_programs() {
    // Products must inherit soundness componentwise, including the
    // ⊥-smashing interaction.
    for src in NUMERIC_PROGRAMS {
        check_soundness(
            src,
            Prod::new(IntervalDomain::top(), SignDomain::top()),
            vec![],
        );
        check_soundness(
            src,
            Prod::new(SignDomain::top(), ConstDomain::top()),
            vec![],
        );
    }
}

const LIST_PROGRAMS: &[&str] = &[
    "function main() { var a = new Node(); a.next = null; var b = new Node(); b.next = a; var r = b; while (r.next != null) { r = r.next; } return r == a; }",
    "function main() { var p = null; var i = 0; while (i < 3) { var n = new Node(); n.next = p; p = n; i = i + 1; } var c = 0; while (p != null) { c = c + 1; p = p.next; } return c; }",
    "function main() { var a = new Node(); a.next = null; a.data = 5; var x = a.data; var t = a.next; return t == null; }",
];

#[test]
fn shape_sound_on_list_programs() {
    for src in LIST_PROGRAMS {
        check_soundness(src, ShapeDomain::top_state(), vec![]);
    }
}

#[test]
fn interval_sound_on_list_programs() {
    for src in LIST_PROGRAMS {
        check_soundness(src, IntervalDomain::top(), vec![]);
    }
}

#[test]
fn sign_and_constprop_sound_on_list_programs() {
    // Numeric domains must stay sound on heap-manipulating programs they
    // do not track (references untracked, field reads havoc).
    for src in LIST_PROGRAMS {
        check_soundness(src, SignDomain::top(), vec![]);
        check_soundness(src, ConstDomain::top(), vec![]);
    }
}

fn check_soundness_across_random_edits<D: AbstractDomain>(phi0: D, seeds: &[u64]) {
    // Grow a program by random (call-free) edits; at each step, run the
    // concrete semantics of the *current* program and compare with the
    // incremental analysis results at every location.
    for &seed in seeds {
        let cfg =
            lower_program(&parse_program("function main() { var x0 = 1; return x0; }").unwrap())
                .unwrap()
                .cfgs()[0]
                .clone();
        let mut gen = Workload::new(seed);
        let mut fa = FuncAnalysis::new(cfg, phi0.clone());
        let mut memo = MemoTable::new();
        for _step in 0..12 {
            let edges: Vec<_> = fa.cfg().edges().map(|e| e.id).collect();
            let edge = edges[gen.pick_index(edges.len())];
            let block = gen.random_block_no_calls();
            fa.splice(edge, &block).unwrap();
            // Rebuild a Program-source equivalent for the interpreter by
            // running the concrete collector directly over the edited CFG.
            let mut lowered = lower_program(
                &parse_program("function main() { var x0 = 1; return x0; }").unwrap(),
            )
            .unwrap();
            *lowered.by_name_mut("main").unwrap() = fa.cfg().clone();
            let run = collect(&lowered, "main", vec![], 20_000);
            for loc in fa.cfg().locs() {
                let mut stats = QueryStats::default();
                let abs = fa
                    .query_loc(&mut memo, loc, &mut IntraResolver, &mut stats)
                    .unwrap();
                for concrete in run.states_at("main", loc) {
                    assert!(
                        abs.models(concrete),
                        "seed {seed}: UNSOUND at {loc}\n  concrete: {concrete:?}\n  abstract: {abs}"
                    );
                }
            }
        }
    }
}

#[test]
fn soundness_preserved_across_random_edits() {
    check_soundness_across_random_edits(IntervalDomain::top(), &[3, 11, 42]);
}

#[test]
fn sign_soundness_preserved_across_random_edits() {
    check_soundness_across_random_edits(SignDomain::top(), &[5, 23]);
}

#[test]
fn constprop_soundness_preserved_across_random_edits() {
    check_soundness_across_random_edits(ConstDomain::top(), &[7, 31]);
}

#[test]
fn product_soundness_preserved_across_random_edits() {
    check_soundness_across_random_edits(Prod::new(IntervalDomain::top(), SignDomain::top()), &[13]);
}
