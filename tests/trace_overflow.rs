//! Ring-overflow accounting: a tracing session that outruns the
//! per-thread rings must stay fully diagnosable. A multi-worker engine
//! sweep runs alongside threads that deliberately overflow their rings
//! by known amounts; the resulting dump must
//!
//! * report **exact** per-thread drop counts (`dropped_by_thread`,
//!   parallel to the thread table, summing to `dropped`),
//! * charge nothing to threads that did not overflow,
//! * still export as a valid Chrome trace and roundtrip the binary
//!   `TRCE` frame byte-equal,
//! * feed the `dai_trace_dropped_records_total` counter.
//!
//! Its own test binary on purpose: the recorder is process-global, and
//! this test owns the enable/drain window.

use dai_domains::IntervalDomain;
use dai_engine::Engine;
use dai_lang::Loc;
use dai_trace::RING_CAPACITY;

const LOOPY: &str = "function f(n) { var i = 0; var s = 0; \
                     while (i < 9) { s = s + i; i = i + 1; } \
                     return s; }";

#[test]
fn overflowing_rings_report_exact_per_thread_drops() {
    if !dai_trace::TraceConfig::probes_compiled() {
        eprintln!("trace_overflow: probes compiled out; nothing to assert");
        return;
    }
    let _ = dai_trace::drain();
    let counter_before = dai_trace::metrics()
        .counter("dai_trace_dropped_records_total")
        .get();
    dai_trace::config().set_enabled(true);

    // A multi-worker sweep, so pool workers record real spans into their
    // own rings (far below capacity — they must be charged zero drops).
    let engine: Engine<IntervalDomain> = Engine::new(2);
    let session = engine.open_session_src("overflow", LOOPY).unwrap();
    let targets: Vec<(String, Loc)> = {
        let program = engine.program_of(session).unwrap();
        let cfg = program.by_name("f").unwrap();
        cfg.locs().iter().map(|&l| ("f".to_string(), l)).collect()
    };
    for ticket in engine.submit_query_sweep(session, &targets) {
        ticket.wait().unwrap();
    }

    // Two named threads overflow their rings by distinct, known amounts.
    let overflows: [(&str, u64); 2] = [("overflow-a", 3), ("overflow-b", 41)];
    for (name, extra) in overflows {
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                for i in 0..(RING_CAPACITY as u64 + extra) {
                    dai_trace::event!("test.overflow.push", i);
                }
            })
            .unwrap()
            .join()
            .unwrap();
    }

    dai_trace::config().set_enabled(false);
    let dump = dai_trace::drain();

    // The drop table is parallel to the thread table and sums exactly.
    assert_eq!(dump.dropped_by_thread.len(), dump.threads.len());
    assert_eq!(dump.dropped, dump.dropped_by_thread.iter().sum::<u64>());
    for (name, extra) in overflows {
        let at = dump
            .threads
            .iter()
            .position(|t| t == name)
            .unwrap_or_else(|| panic!("thread {name} not registered in {:?}", dump.threads));
        assert_eq!(
            dump.dropped_by_thread[at], extra,
            "thread {name} drop count is not exact"
        );
    }
    for (at, thread) in dump.threads.iter().enumerate() {
        if thread.starts_with("dai-worker-") {
            assert_eq!(
                dump.dropped_by_thread[at], 0,
                "worker {thread} charged with drops it did not incur"
            );
        }
    }
    // The sweep left real worker records, and each overflowing ring
    // still holds a full window (only the oldest were overwritten).
    let held_by = |at: usize| {
        dump.records
            .iter()
            .filter(|r| r.thread as usize == at)
            .count()
    };
    assert!(
        dump.threads
            .iter()
            .enumerate()
            .any(|(at, t)| t.starts_with("dai-worker-") && held_by(at) > 0),
        "the sweep left no worker records"
    );
    for (name, _) in overflows {
        let at = dump.threads.iter().position(|t| t == name).unwrap();
        assert_eq!(
            held_by(at),
            RING_CAPACITY,
            "overflowed ring of {name} must retain exactly RING_CAPACITY records"
        );
    }

    // The lossy dump is still a valid Chrome trace and a stable frame.
    let json = dai_trace::chrome_trace_json(&dump);
    let summary = dai_trace::validate_chrome_trace(&json).expect("overflowed dump re-parses");
    assert!(summary.total > 0);
    let frame = dai_persist::encode_trace_frame(&dump);
    assert_eq!(
        dai_persist::decode_trace_frame(&frame).expect("binary dump decodes"),
        dump
    );

    // And the losses were counted into the metrics registry.
    let counter_after = dai_trace::metrics()
        .counter("dai_trace_dropped_records_total")
        .get();
    assert_eq!(
        counter_after - counter_before,
        overflows.iter().map(|(_, e)| e).sum::<u64>()
    );
}
