//! Interprocedural demanded analysis (paper §7.1): demand-driven callee
//! DAIG construction, context policies, entry joins as `φ₀` edits, and
//! cross-function dirtying.

use dai_core::driver::{Config, Driver, ProgramEdit};
use dai_core::interproc::{Context, ContextPolicy, InterAnalyzer};
use dai_domains::interval::Interval;
use dai_domains::{AbstractDomain, IntervalDomain};
use dai_lang::cfg::lower_program;
use dai_lang::parser::{parse_block, parse_program};
use dai_lang::Symbol;

const SRC: &str = r#"
    function id(v) { return v; }
    function addOne(v) { var w = id(v); return w + 1; }
    function main() {
        var a = id(10);
        var b = id(20);
        var c = addOne(a);
        return a + b + c;
    }
"#;

fn analyzer(policy: ContextPolicy) -> InterAnalyzer<IntervalDomain> {
    let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
    InterAnalyzer::new(program, policy, "main", IntervalDomain::top())
}

#[test]
fn callee_daigs_are_constructed_on_demand() {
    let mut an = analyzer(ContextPolicy::Insensitive);
    assert_eq!(an.unit_count(), 0, "no DAIG before the first query");
    let exit = an.program().by_name("main").unwrap().exit();
    an.query_joined("main", exit).unwrap();
    // main + id + addOne, one context each under k=0.
    assert_eq!(an.unit_count(), 3);
}

#[test]
fn context_counts_follow_the_policy() {
    // id is called from main (×2) and from addOne (×1).
    let an = analyzer(ContextPolicy::Insensitive);
    assert_eq!(an.contexts_of("id").len(), 1);
    let an = analyzer(ContextPolicy::CallString(1));
    assert_eq!(an.contexts_of("id").len(), 3);
    // With k=2 the id-in-addOne context splits per addOne's own caller.
    let an = analyzer(ContextPolicy::CallString(2));
    assert_eq!(an.contexts_of("id").len(), 3);
    assert_eq!(an.contexts_of("addOne").len(), 1);
}

#[test]
fn insensitive_joins_while_call_strings_separate() {
    // Under k=0, id's entry joins 10, 20, and a; under k=1 each call site
    // sees its own argument exactly.
    let mut k0 = analyzer(ContextPolicy::Insensitive);
    let exit = k0.program().by_name("id").unwrap().exit();
    let joined = k0.query_joined("id", exit).unwrap();
    let v0 = joined.interval_of("v");
    assert!(v0.contains(10) && v0.contains(20), "{v0}");

    let mut k1 = analyzer(ContextPolicy::CallString(1));
    let per_ctx = k1.query_at("id", exit).unwrap();
    assert_eq!(per_ctx.len(), 3);
    let singletons = per_ctx
        .iter()
        .filter(|(_, s)| {
            let iv = s.interval_of("v");
            iv == Interval::constant(10) || iv == Interval::constant(20)
        })
        .count();
    assert!(singletons >= 2, "k=1 must keep main's two arguments apart");
}

#[test]
fn whole_program_result_is_precise_with_contexts() {
    let mut k1 = analyzer(ContextPolicy::CallString(2));
    let exit = k1.program().by_name("main").unwrap().exit();
    let v = k1.query_joined("main", exit).unwrap();
    // a = 10, b = 20, c = 11, total 41.
    assert_eq!(v.interval_of(dai_lang::RETURN_VAR), Interval::constant(41));
}

#[test]
fn editing_a_leaf_callee_propagates_to_all_callers() {
    let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
    let mut d: Driver<IntervalDomain> = Driver::new(
        Config::IncrementalDemandDriven,
        program,
        ContextPolicy::CallString(2),
        "main",
        IntervalDomain::top(),
    );
    let exit = d.analyzer().program().by_name("main").unwrap().exit();
    assert_eq!(
        d.query("main", exit)
            .unwrap()
            .interval_of(dai_lang::RETURN_VAR),
        Interval::constant(41)
    );
    // id now returns v + 1: a = 11, b = 21, w = 12, c = 13, total 45.
    let id_ret = d
        .analyzer()
        .program()
        .by_name("id")
        .unwrap()
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .unwrap()
        .id;
    d.apply_edit(&ProgramEdit::Relabel {
        func: Symbol::new("id"),
        edge: id_ret,
        stmt: dai_lang::Stmt::Assign(
            dai_lang::RETURN_VAR.into(),
            dai_lang::parse_expr("v + 1").unwrap(),
        ),
    })
    .unwrap();
    assert_eq!(
        d.query("main", exit)
            .unwrap()
            .interval_of(dai_lang::RETURN_VAR),
        Interval::constant(45)
    );
}

#[test]
fn editing_a_caller_reaches_callee_entries() {
    let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
    let mut d: Driver<IntervalDomain> = Driver::new(
        Config::IncrementalDemandDriven,
        program,
        ContextPolicy::CallString(1),
        "main",
        IntervalDomain::top(),
    );
    let id_exit = d.analyzer().program().by_name("id").unwrap().exit();
    let before = d.query("id", id_exit).unwrap();
    assert!(before.interval_of("v").contains(10));
    // Change main's first argument to 99.
    let a_edge = d
        .analyzer()
        .program()
        .by_name("main")
        .unwrap()
        .edges()
        .find(|e| e.stmt.to_string().contains("id(10)"))
        .unwrap()
        .id;
    d.apply_edit(&ProgramEdit::Relabel {
        func: Symbol::new("main"),
        edge: a_edge,
        stmt: dai_lang::Stmt::Call {
            lhs: Some("a".into()),
            callee: "id".into(),
            args: vec![dai_lang::parse_expr("99").unwrap()],
        },
    })
    .unwrap();
    let after = d.query("id", id_exit).unwrap();
    assert!(after.interval_of("v").contains(99), "{after}");
    assert!(
        !after.interval_of("v").contains(10),
        "stale entry survived: {after}"
    );
}

#[test]
fn unreachable_function_queries_are_bottom() {
    let src = "function dead(x) { return x; } function main() { return 1; }";
    let program = lower_program(&parse_program(src).unwrap()).unwrap();
    let mut an: InterAnalyzer<IntervalDomain> = InterAnalyzer::new(
        program,
        ContextPolicy::Insensitive,
        "main",
        IntervalDomain::top(),
    );
    let dead_exit = an.program().by_name("dead").unwrap().exit();
    let v = an.query_joined("dead", dead_exit).unwrap();
    assert!(v.is_bottom());
}

#[test]
fn inserting_a_call_extends_the_call_graph() {
    let src = "function helper(x) { return x * 2; } function main() { var a = 1; return a; }";
    let program = lower_program(&parse_program(src).unwrap()).unwrap();
    let mut d: Driver<IntervalDomain> = Driver::new(
        Config::IncrementalDemandDriven,
        program,
        ContextPolicy::CallString(1),
        "main",
        IntervalDomain::top(),
    );
    let exit = d.analyzer().program().by_name("main").unwrap().exit();
    let _ = d.query("main", exit).unwrap();
    let ret = d
        .analyzer()
        .program()
        .by_name("main")
        .unwrap()
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .unwrap()
        .id;
    d.apply_edit(&ProgramEdit::Insert {
        func: Symbol::new("main"),
        edge: ret,
        block: parse_block("var b = helper(a);").unwrap(),
    })
    .unwrap();
    let helper_exit = d.analyzer().program().by_name("helper").unwrap().exit();
    let v = d.query("helper", helper_exit).unwrap();
    assert_eq!(v.interval_of(dai_lang::RETURN_VAR), Interval::constant(2));
}

#[test]
fn context_display_and_ordering() {
    let root = Context::root();
    assert_eq!(root.to_string(), "ε");
    let c = ContextPolicy::CallString(2).extend(&root, &Symbol::new("main"), dai_lang::EdgeId(3));
    assert_eq!(c.to_string(), "main:e3");
    let c2 = ContextPolicy::CallString(2).extend(&c, &Symbol::new("f"), dai_lang::EdgeId(1));
    assert_eq!(c2.0.len(), 2);
    // Truncation at k.
    let c3 = ContextPolicy::CallString(1).extend(&c, &Symbol::new("f"), dai_lang::EdgeId(1));
    assert_eq!(c3.0.len(), 1);
    assert_eq!(
        ContextPolicy::Insensitive.extend(&c, &Symbol::new("f"), dai_lang::EdgeId(1)),
        root
    );
}

// ---------------------------------------------------------------------
// The functional approach (paper §2.3's Sharir–Pnueli sketch), exercised
// against the call-string layer and the concrete semantics.
// ---------------------------------------------------------------------

use dai_bench::workload::Workload;
use dai_core::summaries::SummaryAnalyzer;
use dai_lang::interp::collect;

fn functional(src: &str) -> SummaryAnalyzer<IntervalDomain> {
    let program = lower_program(&parse_program(src).unwrap()).unwrap();
    SummaryAnalyzer::new(program, "main", IntervalDomain::top())
}

#[test]
fn functional_matches_call_strings_on_the_shared_fixture() {
    let mut fa = functional(SRC);
    let exit = fa.program().by_name("main").unwrap().exit();
    let v = fa.query_joined("main", exit).unwrap();
    // Same exact result the 2-call-string test establishes: 41.
    assert_eq!(v.interval_of(dai_lang::RETURN_VAR), Interval::constant(41));
    // `id` is called from three sites — main(10), main(20), addOne(10) —
    // but the first and third induce the *same* entry state, so the
    // functional approach shares one summary between them: two distinct
    // entries, versus three 1-call-string contexts.
    assert_eq!(fa.entries_of("id").unwrap().len(), 2);
}

#[test]
fn functional_is_sound_on_random_interprocedural_programs() {
    // Grow a multi-function program with the §7.3 workload generator
    // (whose edits include `x = f(y)` calls), analyze with both the
    // functional analyzer and a 1-call-string analyzer, and check every
    // concrete state the interpreter witnesses in `main` is modelled by
    // both analyzers' answers.
    // Seeds chosen so the 40-edit streams insert several calls into main
    // (the generator's call probability is ~10% per edit).
    let mut total_summary_misses = 0;
    for seed in [1u64, 13u64] {
        let mut program = Workload::initial_program();
        let mut gen = Workload::new(seed);
        let mut fun: SummaryAnalyzer<IntervalDomain> =
            SummaryAnalyzer::new(program.clone(), "main", IntervalDomain::top());
        let mut cs: InterAnalyzer<IntervalDomain> = InterAnalyzer::new(
            program.clone(),
            ContextPolicy::CallString(1),
            "main",
            IntervalDomain::top(),
        );
        for step in 0..40 {
            let edit = gen.next_edit(&program);
            let dai_core::driver::ProgramEdit::Insert { func, edge, block } = &edit else {
                panic!("workload only inserts");
            };
            // Mirror the edit on all three program copies.
            dai_lang::edit::splice_block_on_edge(
                program.by_name_mut(func.as_str()).unwrap(),
                *edge,
                block,
            )
            .unwrap();
            program.refresh_call_graph().unwrap();
            fun.splice(func.as_str(), *edge, block).unwrap();
            cs.splice(func.as_str(), *edge, block).unwrap();

            // Concrete oracle over the current program. Querying main's
            // exit crosses every call site in main, so summaries get
            // demanded whenever calls exist.
            let run = collect(&program, "main", vec![], 30_000);
            let main_cfg = program.by_name("main").unwrap();
            let mut targets = vec![main_cfg.exit()];
            let locs = main_cfg.locs();
            targets.extend(locs.iter().take(4).copied());
            for loc in targets {
                let a = fun.query_joined("main", loc).unwrap();
                let b = cs.query_joined("main", loc).unwrap();
                for concrete in run.states_at("main", loc) {
                    assert!(
                        a.models(concrete),
                        "seed {seed} step {step}: functional UNSOUND at {loc}\n  {concrete:?}\n  {a}"
                    );
                    assert!(
                        b.models(concrete),
                        "seed {seed} step {step}: call-string UNSOUND at {loc}\n  {concrete:?}\n  {b}"
                    );
                }
            }
        }
        total_summary_misses += fun.summary_stats().misses;
    }
    assert!(
        total_summary_misses > 0,
        "no summaries were ever computed across seeds"
    );
}

#[test]
fn functional_unreachable_function_has_no_entries() {
    let src = "function dead(x) { return x; } function main() { return 1; }";
    let mut fa = functional(src);
    assert!(fa.entries_of("dead").unwrap().is_empty());
    let dead_exit = fa.program().by_name("dead").unwrap().exit();
    let v = fa.query_joined("dead", dead_exit).unwrap();
    assert!(v.is_bottom());
}
