//! Contract of the session-sharding router (`dai_rpc::Router`): a
//! router over N backends is just another `Service` — answers match a
//! single unsharded engine — while its per-shard accounting closes
//! (`routed == served` on every shard) and live migration moves a
//! session between shards mid-workload without losing a single query.
//!
//! * **accounting** — query members routed to each shard equal that
//!   backend's own `stats().queries`, over singles, batches, and
//!   sweeps;
//! * **equality** — every sharded answer equals the unsharded oracle;
//! * **migration** — a live `migrate` mid-workload: queries racing the
//!   move all succeed (the binding table serializes them against the
//!   move), answers stay correct, and the session afterwards lives —
//!   and is served — on the destination shard;
//! * **remote shards** — the same accounting holds when the backends
//!   are socket `Client`s instead of in-process engines.

use dai_bench::workload::Workload;
use dai_core::driver::ProgramEdit;
use dai_domains::IntervalDomain;
use dai_engine::{Engine, Service, SessionId};
use dai_lang::Loc;
use dai_rpc::{Addr, Client, Router, Server};
use std::sync::Arc;

/// A unique scratch path for sockets and snapshots.
fn scratch(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "dai-router-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
        .to_string_lossy()
        .into_owned()
}

/// Replays `grow` Workload edits, returning (source, edits, targets).
fn fig10_script(grow: usize, seed: u64) -> (String, Vec<ProgramEdit>, Vec<(String, Loc)>) {
    let source = Workload::initial_source();
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session_src("gen", &source).unwrap();
    let mut gen = Workload::new(seed);
    let mut edits = Vec::new();
    for _ in 0..grow {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        Service::<IntervalDomain>::edit(&engine, session, &edit).unwrap();
        edits.push(edit);
    }
    let program = engine.program_of(session).unwrap();
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    (source, edits, targets)
}

fn engines(n: usize) -> Vec<Arc<Engine<IntervalDomain>>> {
    (0..n).map(|_| Arc::new(Engine::new(1))).collect()
}

#[test]
fn routed_query_members_equal_each_backends_served_count() {
    let (source, edits, targets) = fig10_script(6, 379422);
    let backends = engines(3);
    let router = Router::new(backends.clone());

    // Twelve sessions spread over the ring, each doing the full
    // lifecycle: edits, one single query, one batch, one sweep.
    let mut sessions = Vec::new();
    for i in 0..12 {
        let session = router.open(&format!("tenant-{i}"), &source).unwrap();
        for edit in &edits {
            router.edit(session, edit).unwrap();
        }
        sessions.push(session);
    }
    let (func, loc) = targets.last().unwrap().clone();
    let batch_locs: Vec<Loc> = targets
        .iter()
        .filter(|(f, _)| *f == func)
        .map(|&(_, l)| l)
        .collect();
    for &session in &sessions {
        router.query(session, &func, loc).unwrap();
        for r in router.query_batch(session, &func, &batch_locs) {
            r.unwrap();
        }
        for r in router.query_sweep(session, &targets) {
            r.unwrap();
        }
    }

    // The fan-out accounting closes per shard: what the router counted
    // out equals what each backend counted served.
    let routed = router.routed_queries();
    assert_eq!(routed.len(), 3);
    let per_session = 1 + batch_locs.len() as u64 + targets.len() as u64;
    assert_eq!(
        routed.iter().sum::<u64>(),
        per_session * sessions.len() as u64,
        "router-side total"
    );
    for (shard, backend) in backends.iter().enumerate() {
        assert_eq!(
            routed[shard],
            backend.stats().queries,
            "shard {shard}: routed != served"
        );
    }
    // The spread was real: more than one shard saw traffic.
    assert!(
        routed.iter().filter(|&&n| n > 0).count() >= 2,
        "12 sessions all hashed onto one shard: {routed:?}"
    );
}

#[test]
fn sharded_answers_equal_the_unsharded_oracle() {
    let (source, edits, targets) = fig10_script(8, 911);
    // Unsharded oracle.
    let oracle: Engine<IntervalDomain> = Engine::new(1);
    let oracle_session = oracle.open("oracle", &source).unwrap();
    for edit in &edits {
        oracle.edit(oracle_session, edit).unwrap();
    }
    let expected: Vec<_> = oracle
        .query_sweep(oracle_session, &targets)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect();

    let router = Router::new(engines(3));
    for i in 0..6 {
        let session = router.open(&format!("eq-{i}"), &source).unwrap();
        for edit in &edits {
            router.edit(session, edit).unwrap();
        }
        let got: Vec<_> = router
            .query_sweep(session, &targets)
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect();
        assert_eq!(got, expected, "session eq-{i} differs from the oracle");
    }
}

#[test]
fn live_migration_loses_no_queries_and_lands_on_the_destination() {
    let (source, edits, targets) = fig10_script(6, 2024);
    let backends = engines(2);
    let router = Arc::new(Router::new(backends.clone()));
    let session = router.open("mover", &source).unwrap();
    for edit in &edits {
        router.edit(session, edit).unwrap();
    }
    let from = router.shard_of(session).unwrap();
    let to = 1 - from;
    let expected: Vec<_> = router
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    // Hammer the session with queries from two threads while the main
    // thread migrates it: every single query must succeed — racing
    // calls serialize against the move on the binding table, they are
    // never routed to a shard that no longer holds the session.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammers: Vec<_> = (0..2)
        .map(|h| {
            let router = Arc::clone(&router);
            let targets = targets.clone();
            let expected = expected.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("hammer-{h}"))
                .spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for (i, r) in router
                            .query_sweep(session, &targets)
                            .into_iter()
                            .enumerate()
                        {
                            let got =
                                r.unwrap_or_else(|e| panic!("query lost during migration: {e}"));
                            assert_eq!(got, expected[i], "wrong answer during migration");
                            served += 1;
                        }
                    }
                    served
                })
                .expect("spawn hammer")
        })
        .collect();

    // A few round trips while the hammers run.
    let snap = scratch("mover.daip");
    for round in 0..4 {
        let dest = if round % 2 == 0 { to } else { from };
        router.migrate(session, dest, &snap).unwrap();
        assert_eq!(router.shard_of(session), Some(dest), "round {round}");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total = 0;
    for hammer in hammers {
        total += hammer.join().expect("hammer must not panic");
    }
    assert!(total > 0, "the hammers never queried at all");

    // The session ended up on `from` (even round count) and is served
    // there: the destination backend, addressed directly, knows it.
    let final_shard = router.shard_of(session).unwrap();
    let post: Vec<_> = router
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(post, expected, "answers changed across migration");
    // The other backend no longer serves any session (close landed).
    let idle = backends[1 - final_shard].stats().sessions;
    assert_eq!(idle, 0, "source shard still holds the migrated session");
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn router_over_socket_clients_keeps_the_accounting_closed() {
    let (source, edits, targets) = fig10_script(5, 77);
    // Two real servers, each its own engine; the router shards over
    // socket clients, so `release` exercises the handoff path.
    let servers: Vec<_> = (0..2)
        .map(|i| {
            let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
            Server::bind(&Addr::Unix(scratch(&format!("shard-{i}"))), engine).unwrap()
        })
        .collect();
    let clients: Vec<Arc<Client<IntervalDomain>>> = servers
        .iter()
        .map(|s| Arc::new(Client::connect(&s.addr().to_string()).unwrap()))
        .collect();
    let router = Router::new(clients);

    let mut sessions = Vec::new();
    for i in 0..6 {
        let session = router.open(&format!("remote-{i}"), &source).unwrap();
        for edit in &edits {
            router.edit(session, edit).unwrap();
        }
        for r in router.query_sweep(session, &targets) {
            r.unwrap();
        }
        sessions.push(session);
    }

    let routed = router.routed_queries();
    for (shard, server) in servers.iter().enumerate() {
        assert_eq!(
            routed[shard],
            server.engine().stats().queries,
            "shard {shard}: routed != served over the socket"
        );
    }

    // Migrate one session across the socket boundary: save on the
    // owner, handoff (release), close, load on the other server.
    let session = sessions[0];
    let from = router.shard_of(session).unwrap();
    let to = 1 - from;
    let before: Vec<_> = router
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let snap = scratch("remote-mover.daip");
    router.migrate(session, to, &snap).unwrap();
    assert_eq!(router.shard_of(session), Some(to));
    let after: Vec<_> = router
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(after, before, "answers changed across a remote migration");

    let _ = std::fs::remove_file(&snap);
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn routing_to_an_unknown_session_or_shard_is_structured() {
    let router = Router::new(engines(2));
    match router.query(SessionId(99), "main", Loc(0)) {
        Err(dai_engine::EngineError::NoSuchSession(id)) => assert_eq!(id, SessionId(99)),
        other => panic!("expected NoSuchSession, got {other:?}"),
    }
    let session = router
        .open("bounds", "function main() { var x = 1; return x; }")
        .unwrap();
    match router.migrate(session, 7, "/tmp/nope") {
        Err(dai_engine::EngineError::Remote { code, .. }) => assert_eq!(code, "rejected"),
        other => panic!("expected a shard-bounds rejection, got {other:?}"),
    }
}
