//! Cross-request query batching: coalescing, edit/load fencing, and
//! `BatchStats` accounting.
//!
//! The engine answers every concurrently pending query against one
//! `(session, function)` from a single union demanded-cone evaluation
//! under a single session-lock acquisition. These tests lock down the
//! three properties that make that sound and worth having:
//!
//! * **identity** — a coalesced batch answers every member with exactly
//!   the sequential batch oracle's value, per member (a bad member fails
//!   alone);
//! * **fencing** — an `Edit` or `Load` interleaved into a pending batch
//!   splits it at the fence: no query submitted after the mutation is
//!   ever answered from pre-mutation state, and a *failed* mutation still
//!   releases the queries it fenced;
//! * **accounting** — `coalesced_queries + singleton_queries` equals the
//!   queries served, one session lock and one union-cone traversal per
//!   cold coalesced batch, and a union cone is never larger than the sum
//!   of its members' solo cones.

use dai_core::batch::batch_analyze;
use dai_core::driver::ProgramEdit;
use dai_core::query::IntraResolver;
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain};
use dai_engine::{Engine, EngineError, Request, Response, SessionId, Ticket};
use dai_lang::cfg::lower_program;
use dai_lang::{parse_program, Loc, Symbol};

use dai_bench::workload::Workload;

const LOOPY: &str = "function f(n) { var i = 0; var s = 0; \
                     while (i < 9) { s = s + i; i = i + 1; } \
                     return s; }";

const STRAIGHT: &str = "function main() { var a = 1; var b = a + 2; return b; }";

fn program(src: &str) -> dai_lang::cfg::LoweredProgram {
    lower_program(&parse_program(src).unwrap()).unwrap()
}

fn oracle_of(cfg: &dai_lang::Cfg) -> dai_core::batch::InvariantMap<IntervalDomain> {
    batch_analyze(
        cfg,
        IntervalDomain::entry_default(cfg.params()),
        &mut IntraResolver,
    )
    .unwrap()
}

#[test]
fn coalesced_batch_takes_one_lock_and_one_union_walk() {
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session("batch", program(LOOPY));
    let cfg = engine
        .program_of(session)
        .unwrap()
        .by_name("f")
        .unwrap()
        .clone();
    let locs = cfg.locs();
    assert!(locs.len() >= 4, "loopy function has a real sweep");
    let before = engine.stats();
    let answers = engine.query_batch(session, "f", &locs);
    let after = engine.stats();
    // One drain: one session-lock acquisition, one coalesced batch, one
    // union-cone traversal for the whole (cold) sweep.
    assert_eq!(after.session_locks - before.session_locks, 1);
    assert_eq!(after.batch.batches - before.batch.batches, 1);
    assert_eq!(
        after.batch.coalesced_queries - before.batch.coalesced_queries,
        locs.len() as u64
    );
    assert_eq!(
        after.batch.union_cone_walks - before.batch.union_cone_walks,
        1
    );
    assert!(after.batch.union_cone_cells > before.batch.union_cone_cells);
    // Every member answers with the sequential batch oracle's value.
    let oracle = oracle_of(&cfg);
    for (loc, answer) in locs.iter().zip(answers) {
        assert_eq!(answer.unwrap(), oracle[loc], "batched answer at {loc}");
    }
    // A warm repeat of the same batch: still one lock, but no traversal.
    let before = engine.stats();
    let _ = engine.query_batch(session, "f", &locs);
    let after = engine.stats();
    assert_eq!(after.session_locks - before.session_locks, 1);
    assert_eq!(
        after.batch.union_cone_walks - before.batch.union_cone_walks,
        0
    );
}

#[test]
fn batch_members_fail_individually() {
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session("batch", program(STRAIGHT));
    let cfg = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    let mut locs = cfg.locs();
    locs.push(Loc(424242)); // bogus member
    let before = engine.stats();
    let answers = engine.query_batch(session, "main", &locs);
    let after = engine.stats();
    // Failed members were still served: the accounting identity holds
    // with failures in the batch.
    assert_eq!(after.queries - before.queries, locs.len() as u64);
    assert_eq!(
        (after.batch.coalesced_queries + after.batch.singleton_queries)
            - (before.batch.coalesced_queries + before.batch.singleton_queries),
        after.queries - before.queries
    );
    let oracle = oracle_of(&cfg);
    for (loc, answer) in locs.iter().zip(&answers) {
        if *loc == Loc(424242) {
            assert!(
                matches!(
                    answer,
                    Err(EngineError::Daig(dai_core::DaigError::NoSuchCell(_)))
                ),
                "bogus member must fail alone: {answer:?}"
            );
        } else {
            assert_eq!(*answer.as_ref().unwrap(), oracle[loc]);
        }
    }
    // Unknown functions and sessions fail every member cleanly.
    for r in engine.query_batch(session, "nope", &cfg.locs()) {
        assert!(matches!(r, Err(EngineError::NoSuchFunction(_))));
    }
    for r in engine.query_batch(SessionId(999), "main", &cfg.locs()) {
        assert!(matches!(r, Err(EngineError::NoSuchSession(_))));
    }
}

/// An `Edit` interleaved between two pending batches: the first batch is
/// answered from the pre-edit program, the second — submitted *after* the
/// edit — must never see pre-edit values, even though it may well be
/// sitting in the same pending queue when the first batch drains. The
/// fence splits the batch instead.
#[test]
fn edit_interleaved_into_pending_batches_never_yields_stale_answers() {
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session("fence", program(STRAIGHT));
    let cfg_before = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    let locs = cfg_before.locs();
    assert!(locs.len() >= 2);
    let edge = cfg_before
        .edges()
        .find(|e| e.stmt.to_string() == "a = 1")
        .unwrap()
        .id;
    assert_eq!(engine.session_fence(session), (0, 0), "no fences yet");

    // Pending batch 1 → edit → pending batch 2, all submitted before the
    // single worker can possibly have served them all.
    let batch1 = engine.submit_query_batch(session, "main", &locs);
    let edit_ticket = engine.submit(Request::Edit {
        session,
        edit: ProgramEdit::Relabel {
            func: Symbol::new("main"),
            edge,
            stmt: dai_lang::Stmt::Assign("a".into(), dai_lang::parse_expr("10").unwrap()),
        },
    });
    assert_eq!(
        engine.session_fence(session).0,
        1,
        "the edit bumped the fence at submit time"
    );
    let batch2 = engine.submit_query_batch(session, "main", &locs);

    let pre_oracle = oracle_of(&cfg_before);
    for (loc, t) in locs.iter().zip(batch1) {
        let answer = t.wait().unwrap().into_state().unwrap();
        assert_eq!(answer, pre_oracle[loc], "batch 1 at {loc} is pre-edit");
    }
    assert!(matches!(edit_ticket.wait().unwrap(), Response::Edited(_)));
    // Batch 2 must reflect the edit: check against a fresh-from-scratch
    // analysis of the *edited* program.
    let cfg_after = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    let post_oracle = oracle_of(&cfg_after);
    assert_ne!(
        pre_oracle[&cfg_before.exit()],
        post_oracle[&cfg_after.exit()],
        "the edit must change the exit invariant for this test to bite"
    );
    for (loc, t) in locs.iter().zip(batch2) {
        let answer = t.wait().unwrap().into_state().unwrap();
        assert_eq!(
            answer, post_oracle[loc],
            "batch 2 at {loc} was submitted after the edit and must be post-edit"
        );
    }
    // Epoch assertions: exactly one fence submitted and applied, and the
    // two sweeps were two separate coalesced batches — the pending queue
    // split at the fence rather than merging them.
    assert_eq!(engine.session_fence(session), (1, 1));
    let stats = engine.stats();
    assert_eq!(stats.batch.batches, 2, "{:?}", stats.batch);
    assert_eq!(stats.batch.coalesced_queries, 2 * locs.len() as u64);
    assert_eq!(stats.batch.singleton_queries, 0);
}

/// A failed edit must still advance the fence: the queries it deferred
/// are released (and answered from the unchanged program), never stranded.
#[test]
fn failed_edit_still_releases_fenced_queries() {
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session("fence", program(STRAIGHT));
    let cfg = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    let locs = cfg.locs();
    let edge = cfg.edges().next().unwrap().id;
    let batch1 = engine.submit_query_batch(session, "main", &locs);
    // A self-recursive call violates the call-graph invariant: rejected.
    let edit_ticket = engine.submit(Request::Edit {
        session,
        edit: ProgramEdit::Relabel {
            func: Symbol::new("main"),
            edge,
            stmt: dai_lang::Stmt::Call {
                lhs: Some("a".into()),
                callee: Symbol::new("main"),
                args: vec![],
            },
        },
    });
    let batch2 = engine.submit_query_batch(session, "main", &locs);
    let oracle = oracle_of(&cfg);
    for t in batch1 {
        let _ = t.wait().unwrap();
    }
    assert!(edit_ticket.wait().is_err(), "the edit must be rejected");
    for (loc, t) in locs.iter().zip(batch2) {
        let answer = t.wait().unwrap().into_state().unwrap();
        assert_eq!(answer, oracle[loc], "released member at {loc}");
    }
    assert_eq!(engine.session_fence(session), (1, 1));
}

/// A `Load` interleaved between two pending batches fences the whole
/// engine: the second batch is deferred until the restore (and its
/// engine-wide memo import) completed, splitting the pending queue in
/// two instead of answering ahead of the load.
#[test]
fn load_interleaved_into_pending_batches_splits_at_the_global_fence() {
    let dir = std::env::temp_dir().join(format!("dai-batch-fence-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("fence.daip").to_string_lossy().into_owned();
    {
        let engine: Engine<IntervalDomain> = Engine::new(1);
        let session = engine.open_session_src("saved", STRAIGHT).unwrap();
        match engine
            .request(Request::Save {
                session,
                path: snap.clone(),
            })
            .unwrap()
        {
            Response::Saved(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session("live", program(STRAIGHT));
    let cfg = engine
        .program_of(session)
        .unwrap()
        .by_name("main")
        .unwrap()
        .clone();
    let locs = cfg.locs();
    assert_eq!(engine.global_fence(), (0, 0));
    let batch1 = engine.submit_query_batch(session, "main", &locs);
    let load_ticket = engine.submit(Request::Load { path: snap.clone() });
    assert_eq!(engine.global_fence().0, 1, "load bumped the global fence");
    let batch2 = engine.submit_query_batch(session, "main", &locs);

    let oracle = oracle_of(&cfg);
    for (loc, t) in locs.iter().zip(batch1) {
        assert_eq!(t.wait().unwrap().into_state().unwrap(), oracle[loc]);
    }
    let restored = match load_ticket.wait().unwrap() {
        Response::Loaded { session, .. } => session,
        other => panic!("unexpected {other:?}"),
    };
    for (loc, t) in locs.iter().zip(batch2) {
        assert_eq!(
            t.wait().unwrap().into_state().unwrap(),
            oracle[loc],
            "deferred member at {loc} answers after the load"
        );
    }
    // The restored session serves too, and the fence settled.
    let restored_answers = engine.query_batch(restored, "main", &locs);
    for (loc, r) in locs.iter().zip(restored_answers) {
        assert_eq!(r.unwrap(), oracle[loc]);
    }
    assert_eq!(engine.global_fence(), (1, 1));
    let stats = engine.stats();
    assert!(
        stats.batch.batches >= 3,
        "the two live sweeps split at the fence (plus the restored sweep): {:?}",
        stats.batch
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `BatchStats` accounting on the Fig. 10 workload: every served query is
/// either coalesced or a singleton, with one batch (and one lock) per
/// function sweep.
#[test]
fn accounting_balances_on_the_fig10_workload() {
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session("fig10", Workload::initial_program());
    let mut gen = Workload::new(0xBA7C);
    for _ in 0..6 {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        engine.request(Request::Edit { session, edit }).unwrap();
    }
    let program = engine.program_of(session).unwrap();
    let functions: Vec<(String, Vec<Loc>)> = program
        .cfgs()
        .iter()
        .map(|cfg| (cfg.name().to_string(), cfg.locs()))
        .collect();
    let before = engine.stats();
    let mut tickets: Vec<Ticket<OctagonDomain>> = Vec::new();
    for (f, locs) in &functions {
        tickets.extend(engine.submit_query_batch(session, f, locs));
    }
    Ticket::wait_all(tickets).unwrap();
    // A few synchronous one-off queries ride along as singletons.
    let singles = 3u64;
    for _ in 0..singles {
        let (f, loc) = gen.next_queries(&program, 1).pop().unwrap();
        engine.query(session, f.as_str(), loc).unwrap();
    }
    let after = engine.stats();
    let served = after.queries - before.queries;
    let coalesced = after.batch.coalesced_queries - before.batch.coalesced_queries;
    let singleton = after.batch.singleton_queries - before.batch.singleton_queries;
    assert_eq!(
        coalesced + singleton,
        served,
        "every query is coalesced or singleton: {:?}",
        after.batch
    );
    assert_eq!(singleton, singles, "synchronous queries cannot coalesce");
    assert_eq!(
        after.batch.batches - before.batch.batches,
        functions.len() as u64,
        "one coalesced batch per function sweep"
    );
    assert_eq!(
        after.session_locks - before.session_locks,
        functions.len() as u64 + singles,
        "one lock per batch and per singleton"
    );
}

/// The socket path keeps the accounting identity: the same Fig. 10
/// sweep submitted as one wire frame per function (plus a few singleton
/// query frames) produces the same `coalesced + singleton == served`
/// balance and the same one-lock-per-batch profile, observed entirely
/// through the wire's own `stats()` — a remote client never needs
/// in-process access to assert coalescing happened.
#[test]
fn accounting_balances_over_the_socket_path() {
    use dai_engine::Service;
    use dai_rpc::{Addr, Client, Server};
    use std::sync::Arc;

    let engine: Arc<Engine<OctagonDomain>> = Arc::new(Engine::new(1));
    let sock = std::env::temp_dir()
        .join(format!("dai-batch-socket-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let server = Server::bind(&Addr::Unix(sock), Arc::clone(&engine)).unwrap();
    let client: Client<OctagonDomain> = Client::connect(&server.addr().to_string()).unwrap();
    let session = client
        .open("fig10-socket", &Workload::initial_source())
        .unwrap();
    let mut gen = Workload::new(0xBA7C);
    for _ in 0..6 {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        client.edit(session, &edit).unwrap();
    }
    let program = engine.program_of(session).unwrap();
    let functions: Vec<(String, Vec<Loc>)> = program
        .cfgs()
        .iter()
        .map(|cfg| (cfg.name().to_string(), cfg.locs()))
        .collect();
    let before = client.stats().unwrap();
    for (f, locs) in &functions {
        // One wire frame per function: the whole batch coalesces.
        for r in client.query_batch(session, f, locs) {
            r.unwrap();
        }
    }
    // A few per-query frames ride along as singletons.
    let singles = 3u64;
    for _ in 0..singles {
        let (f, loc) = gen.next_queries(&program, 1).pop().unwrap();
        client.query(session, f.as_str(), loc).unwrap();
    }
    let after = client.stats().unwrap();
    let served = after.queries - before.queries;
    let coalesced = after.batch.coalesced_queries - before.batch.coalesced_queries;
    let singleton = after.batch.singleton_queries - before.batch.singleton_queries;
    assert_eq!(
        coalesced + singleton,
        served,
        "every query is coalesced or singleton: {:?}",
        after.batch
    );
    assert_eq!(singleton, singles, "per-query frames cannot coalesce");
    assert_eq!(
        after.batch.batches - before.batch.batches,
        functions.len() as u64,
        "one coalesced batch per function's wire frame"
    );
    assert_eq!(
        after.session_locks - before.session_locks,
        functions.len() as u64 + singles,
        "one lock per batch frame and per singleton frame"
    );
    // The wire's stats byte-agree with the engine's own.
    assert_eq!(after, engine.stats());
    server.shutdown();
}

/// The union cone of a coalesced pair is no larger than the sum of the
/// two members' solo cones — the sharing is the point of coalescing.
#[test]
fn union_cone_is_at_most_the_sum_of_solo_cones() {
    let solo_cone = |loc: Loc| -> u64 {
        let engine: Engine<IntervalDomain> = Engine::new(1);
        let session = engine.open_session("solo", program(LOOPY));
        let before = engine.stats().query_stats.cone_cells;
        engine.query(session, "f", loc).unwrap();
        engine.stats().query_stats.cone_cells - before
    };
    let cfg = program(LOOPY).by_name("f").unwrap().clone();
    let exit = cfg.exit();
    // A location inside the loop body (destination of the guard edge).
    let head = cfg.loop_heads()[0];
    let body = cfg
        .out_edges(head)
        .iter()
        .map(|&e| cfg.edge(e).unwrap().clone())
        .find(|e| e.stmt.to_string().contains('<'))
        .unwrap()
        .dst;
    let c_exit = solo_cone(exit);
    let c_body = solo_cone(body);
    assert!(c_exit > 0 && c_body > 0, "cold solo queries load cones");

    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine.open_session("pair", program(LOOPY));
    let before = engine.stats();
    for r in engine.query_batch(session, "f", &[exit, body]) {
        r.unwrap();
    }
    let after = engine.stats();
    let union = after.batch.union_cone_cells - before.batch.union_cone_cells;
    assert!(union > 0);
    assert!(
        union <= c_exit + c_body,
        "union cone ({union}) exceeds the sum of solo cones ({c_exit} + {c_body})"
    );

    // Same property on the grown Fig. 10 workload's `main`.
    let grow = |seed: u64| -> (Engine<OctagonDomain>, SessionId, Vec<Loc>) {
        let engine: Engine<OctagonDomain> = Engine::new(1);
        let session = engine.open_session("fig10", Workload::initial_program());
        let mut gen = Workload::new(seed);
        for _ in 0..8 {
            let program = engine.program_of(session).unwrap();
            let edit = gen.next_edit(&program);
            engine.request(Request::Edit { session, edit }).unwrap();
        }
        let locs = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .locs();
        (engine, session, locs)
    };
    let seed = 0xF16;
    let (pair, pair_session, locs) = grow(seed);
    let (a, b) = (locs[0], *locs.last().unwrap());
    let before = pair.stats();
    for r in pair.query_batch(pair_session, "main", &[a, b]) {
        r.unwrap();
    }
    let union = pair.stats().batch.union_cone_cells - before.batch.union_cone_cells;
    let solo = |loc: Loc| -> u64 {
        let (engine, session, _) = grow(seed);
        let before = engine.stats().query_stats.cone_cells;
        engine.query(session, "main", loc).unwrap();
        engine.stats().query_stats.cone_cells - before
    };
    assert!(
        union <= solo(a) + solo(b),
        "fig10 union cone exceeds the sum of solo cones"
    );
}
