//! Failure injection around result caching (paper §2.2):
//!
//! > "it is sound to drop cached results from the DAIG and/or memo table
//! > and later recompute those results if needed, trading efficiency of
//! > reuse for a lower memory footprint."
//!
//! These tests adversarially drop cached state at random points of an
//! edit/query stream — clearing the memo table, bounding its capacity so
//! it continually evicts, dirtying whole DAIGs, and purging the summary
//! analyzer — and assert that query answers never change relative to an
//! unperturbed twin run over the same stream.

use dai_bench::workload::Workload;
use dai_core::analysis::FuncAnalysis;
use dai_core::consistency::{check_ai_consistency, check_cfg_consistency};
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::summaries::SummaryAnalyzer;
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain};
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;

const SEED_PROGRAM: &str = "function main() { var x0 = 1; return x0; }";

/// Runs the same random edit/query stream twice — once with a pristine
/// memo table, once with `perturb` applied after every step — and checks
/// that all query answers agree.
fn check_against_unperturbed<D, F>(phi0: D, seed: u64, steps: usize, mut perturb: F)
where
    D: AbstractDomain,
    F: FnMut(usize, &mut FuncAnalysis<D>, &mut MemoTable<dai_core::Value<D>>),
{
    let cfg = lower_program(&parse_program(SEED_PROGRAM).unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    let mut clean = FuncAnalysis::new(cfg.clone(), phi0.clone());
    let mut dirty = FuncAnalysis::new(cfg, phi0);
    let mut clean_memo = MemoTable::new();
    let mut dirty_memo = MemoTable::new();
    // Identical streams: one generator drives both runs.
    let mut gen = Workload::new(seed);
    for step in 0..steps {
        let edges: Vec<_> = clean.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        clean.splice(edge, &block).unwrap();
        dirty.splice(edge, &block).unwrap();

        perturb(step, &mut dirty, &mut dirty_memo);

        let locs = clean.cfg().locs();
        let loc = locs[gen.pick_index(locs.len())];
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let a = clean
            .query_loc(&mut clean_memo, loc, &mut IntraResolver, &mut s1)
            .unwrap();
        let b = dirty
            .query_loc(&mut dirty_memo, loc, &mut IntraResolver, &mut s2)
            .unwrap();
        assert_eq!(
            a, b,
            "seed {seed} step {step}: perturbed run diverged at {loc}"
        );
        dirty.daig().check_well_formed().unwrap();
    }
    check_cfg_consistency(dirty.daig(), dirty.cfg()).unwrap();
    check_ai_consistency(dirty.daig()).unwrap();
}

#[test]
fn clearing_memo_table_every_step_is_sound() {
    check_against_unperturbed(
        IntervalDomain::top(),
        101,
        30,
        |_, _, memo: &mut MemoTable<_>| memo.clear(),
    );
}

#[test]
fn clearing_memo_at_random_steps_is_sound() {
    let mut chaos = Workload::new(0xC4A05);
    check_against_unperturbed(IntervalDomain::top(), 202, 30, move |_, _, memo| {
        if chaos.pick_index(3) == 0 {
            memo.clear();
        }
    });
}

#[test]
fn tiny_memo_capacity_is_sound() {
    // A 4-entry table evicts constantly: reuse rates collapse, answers
    // must not.
    let cfg = lower_program(&parse_program(SEED_PROGRAM).unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    let mut clean = FuncAnalysis::new(cfg.clone(), IntervalDomain::top());
    let mut bounded = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut clean_memo = MemoTable::new();
    let mut bounded_memo = MemoTable::with_capacity_limit(4);
    let mut gen = Workload::new(303);
    for step in 0..30 {
        let edges: Vec<_> = clean.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        clean.splice(edge, &block).unwrap();
        bounded.splice(edge, &block).unwrap();
        let locs = clean.cfg().locs();
        let loc = locs[gen.pick_index(locs.len())];
        let mut s = QueryStats::default();
        let a = clean
            .query_loc(&mut clean_memo, loc, &mut IntraResolver, &mut s)
            .unwrap();
        let b = bounded
            .query_loc(&mut bounded_memo, loc, &mut IntraResolver, &mut s)
            .unwrap();
        assert_eq!(a, b, "step {step}: bounded-memo run diverged");
        assert!(bounded_memo.len() <= 4, "capacity bound violated");
    }
    assert!(
        bounded_memo.stats().evictions > 0,
        "the bounded table must actually have evicted"
    );
}

#[test]
fn dirtying_everything_at_random_steps_is_sound() {
    let mut chaos = Workload::new(0xD117);
    check_against_unperturbed(IntervalDomain::top(), 404, 25, move |_, fa, memo| {
        if chaos.pick_index(4) == 0 {
            fa.dirty_everything();
            memo.clear();
        }
    });
}

#[test]
fn octagon_survives_combined_perturbations() {
    let mut chaos = Workload::new(0x0C7A);
    check_against_unperturbed(
        OctagonDomain::top(),
        505,
        15,
        move |_, fa, memo| match chaos.pick_index(4) {
            0 => memo.clear(),
            1 => fa.dirty_everything(),
            _ => {}
        },
    );
}

#[test]
fn summary_analyzer_purge_is_sound() {
    const SRC: &str = r#"
        function dbl(x) { return x * 2; }
        function addsq(y) { var t = dbl(y); return t + y; }
        function main() {
            var a = addsq(3);
            var b = dbl(a);
            return a + b;
        }
    "#;
    let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
    let mut an = SummaryAnalyzer::<IntervalDomain>::new(program, "main", IntervalDomain::top());
    let exit = an.program().by_name("main").unwrap().exit();
    let reference = an.query_joined("main", exit).unwrap();
    // Purge between every re-query: answers must be stable.
    for _ in 0..3 {
        an.purge();
        assert_eq!(an.summary_count(), 0);
        let again = an.query_joined("main", exit).unwrap();
        assert_eq!(again, reference);
    }
}

#[test]
fn memo_reuse_actually_happens_when_not_perturbed() {
    // Guard against the trivial pass: the clean runs above must be
    // genuinely exercising memoization, otherwise "sound under eviction"
    // is vacuous.
    let cfg = lower_program(&parse_program(SEED_PROGRAM).unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    let mut fa = FuncAnalysis::new(cfg, IntervalDomain::top());
    let mut memo = MemoTable::new();
    let mut gen = Workload::new(606);
    for _ in 0..20 {
        let edges: Vec<_> = fa.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        fa.splice(edge, &gen.random_block_no_calls()).unwrap();
        let mut s = QueryStats::default();
        let locs = fa.cfg().locs();
        let loc = locs[gen.pick_index(locs.len())];
        fa.query_loc(&mut memo, loc, &mut IntraResolver, &mut s)
            .unwrap();
    }
    assert!(memo.stats().hits > 0, "no memo reuse in the clean run");
}
