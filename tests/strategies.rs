//! Widening strategies and convergence modes (paper §2.3, footnote 4):
//!
//! > "We describe here the widening strategy of applying ∇ every iteration
//! > until a fixed-point is reached for simplicity, but the same general
//! > idea applies for other widening strategies or checking convergence
//! > with ⊑ instead of =."
//!
//! These tests exercise `dai_core::strategy`: delayed widening improves
//! precision on the textbook count-up loop; every strategy stays
//! from-scratch consistent with a batch oracle running the *same*
//! strategy; `⊑`-convergence equals `=`-convergence for well-behaved
//! domains but converges strictly earlier for domains whose widening
//! carries non-semantic bookkeeping; and the meta-theoretic checkers
//! (well-formedness, Definition 4.2/4.3) hold at every step under every
//! strategy.

use dai_bench::workload::Workload;
use dai_core::analysis::FuncAnalysis;
use dai_core::batch::batch_analyze_with;
use dai_core::consistency::{check_ai_consistency, check_cfg_consistency};
use dai_core::driver::{Config, Driver, ProgramEdit};
use dai_core::interproc::ContextPolicy;
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::strategy::{Convergence, FixStrategy};
use dai_domains::interval::Interval;
use dai_domains::{AbstractDomain, CallSite, IntervalDomain, OctagonDomain};
use dai_lang::cfg::lower_program;
use dai_lang::interp::ConcreteState;
use dai_lang::parser::{parse_block, parse_program};
use dai_lang::{Stmt, Symbol};
use dai_memo::MemoTable;
use std::fmt;

const COUNT_UP: &str = "function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }";

fn analysis_with(src: &str, strategy: FixStrategy) -> FuncAnalysis<IntervalDomain> {
    let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
    FuncAnalysis::with_strategy(cfg, IntervalDomain::top(), strategy)
}

fn exit_interval(fa: &mut FuncAnalysis<IntervalDomain>, var: &str) -> Interval {
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .unwrap()
        .interval_of(var)
}

#[test]
fn paper_strategy_widens_to_infinity_on_count_up_loop() {
    let mut fa = analysis_with(COUNT_UP, FixStrategy::PAPER);
    let iv = exit_interval(&mut fa, "i");
    // Widening every iteration overshoots the upper bound; the exit guard
    // recovers the lower bound only: [10, +∞].
    assert!(iv.contains(10) && iv.contains(1_000_000), "{iv}");
}

#[test]
fn delayed_widening_recovers_exact_bound() {
    // Delaying widening past the loop's trip count lets plain joins reach
    // the exact invariant [0, 10] at the head, hence exactly 10 at exit.
    let mut fa = analysis_with(COUNT_UP, FixStrategy::delayed(12));
    let iv = exit_interval(&mut fa, "i");
    assert_eq!(
        iv,
        Interval::constant(10),
        "delayed widening must be exact, got {iv}"
    );
}

#[test]
fn short_delay_still_widens() {
    // A delay smaller than the trip count runs out and ∇ fires: imprecise
    // again, but convergent.
    let mut fa = analysis_with(COUNT_UP, FixStrategy::delayed(3));
    let iv = exit_interval(&mut fa, "i");
    assert!(iv.contains(10) && iv.contains(1_000_000), "{iv}");
}

#[test]
fn delayed_widening_costs_more_unrollings() {
    let mut stats_paper = QueryStats::default();
    let mut stats_delayed = QueryStats::default();
    for (strategy, stats) in [
        (FixStrategy::PAPER, &mut stats_paper),
        (FixStrategy::delayed(12), &mut stats_delayed),
    ] {
        let mut fa = analysis_with(COUNT_UP, strategy);
        let mut memo = MemoTable::new();
        fa.query_exit(&mut memo, &mut IntraResolver, stats).unwrap();
    }
    assert!(
        stats_delayed.unrolls > stats_paper.unrolls,
        "precision is paid for in unrollings: {} vs {}",
        stats_delayed.unrolls,
        stats_paper.unrolls
    );
}

#[test]
fn leq_convergence_equals_equal_convergence_for_intervals() {
    // Interval iterates are increasing (∇ and ⊔ are upper bounds), so
    // `newer ⊑ older` can only hold at equality: both modes agree.
    for delay in [0, 2, 12] {
        let eq = FixStrategy::delayed(delay);
        let leq = eq.with_convergence(Convergence::Leq);
        let mut fa_eq = analysis_with(COUNT_UP, eq);
        let mut fa_leq = analysis_with(COUNT_UP, leq);
        assert_eq!(
            exit_interval(&mut fa_eq, "i"),
            exit_interval(&mut fa_leq, "i")
        );
    }
}

#[test]
fn strategies_agree_with_batch_oracle_under_edits() {
    // From-scratch consistency (Theorem 6.1), strategy by strategy: after
    // random splices and interleaved queries, every location equals the
    // batch engine running the same strategy.
    let strategies = [
        FixStrategy::PAPER,
        FixStrategy::delayed(2),
        FixStrategy::delayed(7).with_convergence(Convergence::Leq),
        FixStrategy::PAPER.with_convergence(Convergence::Leq),
    ];
    for (si, &strategy) in strategies.iter().enumerate() {
        let cfg =
            lower_program(&parse_program("function main() { var x0 = 0; return x0; }").unwrap())
                .unwrap()
                .cfgs()[0]
                .clone();
        let mut gen = Workload::new(0xA11CE + si as u64);
        let mut fa = FuncAnalysis::with_strategy(cfg, IntervalDomain::top(), strategy);
        let mut memo = MemoTable::new();
        for step in 0..40 {
            let edges: Vec<_> = fa.cfg().edges().map(|e| e.id).collect();
            let edge = edges[gen.pick_index(edges.len())];
            let block = gen.random_block_no_calls();
            fa.splice(edge, &block)
                .unwrap_or_else(|e| panic!("strategy {strategy} step {step}: {e}"));
            let locs = fa.cfg().locs();
            let loc = locs[gen.pick_index(locs.len())];
            let mut stats = QueryStats::default();
            fa.query_loc(&mut memo, loc, &mut IntraResolver, &mut stats)
                .unwrap_or_else(|e| panic!("strategy {strategy} step {step}: {e}"));
            fa.daig().check_well_formed().unwrap();
        }
        let batch = batch_analyze_with(
            fa.cfg(),
            IntervalDomain::top(),
            &mut IntraResolver,
            strategy,
        )
        .unwrap();
        for loc in fa.cfg().locs() {
            let mut stats = QueryStats::default();
            let demanded = fa
                .query_loc(&mut memo, loc, &mut IntraResolver, &mut stats)
                .unwrap();
            assert_eq!(
                demanded, batch[&loc],
                "strategy {strategy}: mismatch at {loc}"
            );
        }
        check_cfg_consistency(fa.daig(), fa.cfg()).unwrap();
        check_ai_consistency(fa.daig()).unwrap();
    }
}

#[test]
fn octagon_strategies_agree_with_batch_oracle() {
    let src =
        "function f(n) { var i = 0; var j = 0; while (i < 8) { i = i + 1; j = j + 2; } return j; }";
    for strategy in [FixStrategy::PAPER, FixStrategy::delayed(10)] {
        let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
        let mut fa = FuncAnalysis::with_strategy(cfg.clone(), OctagonDomain::top(), strategy);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let demanded = fa
            .query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        let batch =
            batch_analyze_with(&cfg, OctagonDomain::top(), &mut IntraResolver, strategy).unwrap();
        assert_eq!(demanded, batch[&cfg.exit()], "strategy {strategy}");
    }
}

#[test]
fn driver_configs_agree_under_delayed_widening() {
    const SRC: &str = r#"
        function main() {
            var i = 0;
            while (i < 6) { i = i + 1; }
            return i;
        }
    "#;
    let strategy = FixStrategy::delayed(8);
    let mut finals = Vec::new();
    for config in Config::ALL {
        let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
        let mut d = Driver::with_strategy(
            config,
            program,
            ContextPolicy::Insensitive,
            "main",
            IntervalDomain::top(),
            strategy,
        );
        let exit = d.analyzer().program().by_name("main").unwrap().exit();
        let _ = d.query("main", exit).unwrap();
        let edge = d
            .analyzer()
            .program()
            .by_name("main")
            .unwrap()
            .edges()
            .find(|e| e.stmt.to_string() == "i = 0")
            .unwrap()
            .id;
        d.apply_edit(&ProgramEdit::Insert {
            func: Symbol::new("main"),
            edge,
            block: parse_block("var extra = 1;").unwrap(),
        })
        .unwrap();
        finals.push(d.query("main", exit).unwrap());
    }
    for r in &finals[1..] {
        assert_eq!(*r, finals[0]);
    }
    // Exactness under delayed widening: the count-up loop exits at i = 6
    // precisely (the paper's strategy would report [6, +∞]).
    assert_eq!(finals[0].interval_of("i"), Interval::constant(6));
}

#[test]
fn edits_inside_loops_preserve_strategy_results() {
    let strategy = FixStrategy::delayed(12);
    let mut fa = analysis_with(COUNT_UP, strategy);
    assert_eq!(exit_interval(&mut fa, "i"), Interval::constant(10));
    // Edit the loop body: i now advances by 2, converging to i ∈ {0,2,…,10}
    // with exact bound [0,10] at the head under delayed widening.
    let head = fa.cfg().loop_heads()[0];
    let back = fa.cfg().back_edge(head).unwrap();
    fa.relabel(
        back,
        Stmt::Assign("i".into(), dai_lang::parse_expr("i + 2").unwrap()),
    )
    .unwrap();
    fa.daig().check_well_formed().unwrap();
    let after = exit_interval(&mut fa, "i");
    assert_eq!(
        after,
        Interval::of(10, 11),
        "exit guard i >= 10 over [0,11], got {after}"
    );
    // And the result matches a from-scratch analysis with the same strategy.
    let mut fresh = FuncAnalysis::with_strategy(fa.cfg().clone(), IntervalDomain::top(), strategy);
    assert_eq!(exit_interval(&mut fresh, "i"), after);
}

// ---------------------------------------------------------------------
// Footnote 4's "⊑ instead of =", demonstrated with a domain whose widen
// carries non-semantic bookkeeping: a tag that keeps changing for a few
// iterations after the *meaning* of the state has stabilized. `=`
// convergence must wait for the tag to saturate; `⊑` convergence (which
// ignores the tag) stops as soon as the meaning stabilizes.
// ---------------------------------------------------------------------

/// Semantic part: a saturating upper bound on every variable (a one-knob
/// caricature of an interval domain). `tag` is bookkeeping incremented by
/// every widen, saturating at [`TaggedBound::TAG_CAP`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TaggedBound {
    /// `None` = ⊥; `Some(b)` = "every variable ≤ b", saturating at
    /// [`TaggedBound::SAT`].
    bound: Option<i64>,
    tag: u32,
}

impl TaggedBound {
    const SAT: i64 = 1 << 20;
    const TAG_CAP: u32 = 3;
}

impl fmt::Display for TaggedBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bound {
            None => write!(f, "⊥"),
            Some(b) => write!(f, "≤{b}#{}", self.tag),
        }
    }
}

impl AbstractDomain for TaggedBound {
    fn bottom() -> Self {
        TaggedBound {
            bound: None,
            tag: 0,
        }
    }

    fn is_bottom(&self) -> bool {
        self.bound.is_none()
    }

    fn entry_default(_params: &[Symbol]) -> Self {
        TaggedBound {
            bound: Some(0),
            tag: 0,
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self.bound, other.bound) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => TaggedBound {
                bound: Some(a.max(b)),
                tag: self.tag.max(other.tag),
            },
        }
    }

    fn widen(&self, next: &Self) -> Self {
        // Semantically: saturate on any unstable bound. Bookkeeping: bump
        // the tag (capped), so consecutive widen outputs differ
        // syntactically for a few iterations even after `bound`
        // stabilizes.
        let bound = match (self.bound, next.bound) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) if b > a => Some(TaggedBound::SAT),
            (Some(a), Some(_)) => Some(a),
        };
        TaggedBound {
            bound,
            tag: (self.tag + 1).min(TaggedBound::TAG_CAP),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self.bound, other.bound) {
            (None, _) => true,
            (_, None) => false,
            // The tag is bookkeeping, invisible to the order.
            (Some(a), Some(b)) => a <= b,
        }
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        // Any assignment may increase a variable by 1 in this caricature;
        // guards and skips are identity.
        match stmt {
            Stmt::Assign(..) | Stmt::ArrayWrite(..) | Stmt::FieldWrite(..) | Stmt::Call { .. } => {
                match self.bound {
                    None => self.clone(),
                    Some(b) => TaggedBound {
                        bound: Some((b + 1).min(TaggedBound::SAT)),
                        tag: self.tag,
                    },
                }
            }
            Stmt::Skip | Stmt::Assume(_) | Stmt::Print(_) => self.clone(),
        }
    }

    fn call_entry(&self, _site: CallSite<'_>, _params: &[Symbol]) -> Self {
        self.clone()
    }

    fn call_return(&self, _site: CallSite<'_>, callee_exit: &Self) -> Self {
        self.join(callee_exit)
    }

    fn models(&self, _concrete: &ConcreteState) -> bool {
        true // coarse by construction; irrelevant to this test
    }
}

#[test]
fn leq_convergence_beats_equal_on_tagged_domain() {
    let src = "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }";
    let mut unrolls = Vec::new();
    for convergence in [Convergence::Equal, Convergence::Leq] {
        let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
        let strategy = FixStrategy::PAPER.with_convergence(convergence);
        let mut fa = FuncAnalysis::with_strategy(cfg, TaggedBound::entry_default(&[]), strategy);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let exit = fa
            .query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        assert_eq!(
            exit.bound,
            Some(TaggedBound::SAT),
            "meaning agrees either way"
        );
        fa.daig().check_well_formed().unwrap();
        check_ai_consistency(fa.daig()).unwrap();
        unrolls.push(stats.unrolls);
    }
    let (equal, leq) = (unrolls[0], unrolls[1]);
    assert!(
        leq < equal,
        "⊑-convergence must stop before the tag saturates: leq={leq} equal={equal}"
    );
}

#[test]
fn tagged_domain_batch_agrees_per_convergence_mode() {
    let src = "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }";
    for convergence in [Convergence::Equal, Convergence::Leq] {
        let strategy = FixStrategy::PAPER.with_convergence(convergence);
        let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
        let mut fa =
            FuncAnalysis::with_strategy(cfg.clone(), TaggedBound::entry_default(&[]), strategy);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let demanded = fa
            .query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        let batch = batch_analyze_with(
            &cfg,
            TaggedBound::entry_default(&[]),
            &mut IntraResolver,
            strategy,
        )
        .unwrap();
        assert_eq!(demanded, batch[&cfg.exit()], "convergence {convergence}");
    }
}

#[test]
fn functional_summaries_compose_with_strategies() {
    // Delayed widening inside a callee, demanded through the functional
    // interprocedural layer: the summary carries the exact loop bound.
    use dai_core::summaries::SummaryAnalyzer;
    const SRC: &str = r#"
        function count(n) {
            var i = 0;
            while (i < 10) { i = i + 1; }
            return i;
        }
        function main() { var a = count(0); return a; }
    "#;
    let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
    let exit = program.by_name("main").unwrap().exit();
    let mut precise = SummaryAnalyzer::<IntervalDomain>::with_strategy(
        program.clone(),
        "main",
        IntervalDomain::top(),
        FixStrategy::delayed(12),
    );
    let mut paper = SummaryAnalyzer::<IntervalDomain>::new(program, "main", IntervalDomain::top());
    let a_precise = precise.query_joined("main", exit).unwrap().interval_of("a");
    let a_paper = paper.query_joined("main", exit).unwrap().interval_of("a");
    assert_eq!(a_precise, Interval::constant(10));
    assert!(
        a_paper.contains(1_000_000),
        "paper strategy widens: {a_paper}"
    );
}
