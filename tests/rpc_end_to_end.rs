//! End-to-end contract of the `dai-rpc` wire API: a socket client must
//! be indistinguishable — answer for answer, DOT byte for DOT byte —
//! from the in-process engine, and no hostile bytes may take the server
//! (or even just the connection) down.
//!
//! * **equality** — on the Fig. 10 synthetic octagon workload (and a
//!   loopy single-function program), every `(function, location)` answer
//!   and the final session DOT obtained through a socket `Client`
//!   byte-match the in-process `Engine` path, under both
//!   `ResolverChoice::Intra` and `Interproc`, with two concurrent client
//!   connections;
//! * **ownership** — sessions die with their connection unless handed
//!   off explicitly;
//! * **hostility** — truncations, bit flips, bad checksums, wrong
//!   protocol versions, and oversized declared lengths each produce a
//!   structured `WireError` (or a clean connection close for
//!   unresyncable cuts), never a panic, and the server keeps serving —
//!   mirroring `persistence.rs`'s every-truncation-prefix sweep.

use dai_core::driver::ProgramEdit;
use dai_domains::{IntervalDomain, OctagonDomain};
use dai_engine::{
    Engine, EngineConfig, EngineError, ResolverChoice, Service, SessionId, SessionSnapshot,
};
use dai_lang::Loc;
use dai_persist::frame::{read_frame, write_frame, FrameHeader, FrameReadError};
use dai_persist::{PersistDomain, FRAME_HEADER_LEN};
use dai_rpc::{
    Addr, Client, Server, WireError, WireRequest, WireResponse, MAX_FRAME_LEN, PROTOCOL_VERSION,
    TAG_REQUEST,
};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use dai_bench::workload::Workload;
use proptest::prelude::*;

const LOOPY: &str = "function f(n) { var i = 0; var s = 0; \
                     while (i < 9) { s = s + i; i = i + 1; } \
                     return s; }";

/// A unique scratch path for sockets and snapshots.
fn scratch(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "dai-rpc-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
        .to_string_lossy()
        .into_owned()
}

/// Replays `grow` Workload edits through a scratch engine, returning the
/// deterministic (source, edit script, sorted sweep targets).
fn fig10_script(grow: usize, seed: u64) -> (String, Vec<ProgramEdit>, Vec<(String, Loc)>) {
    let source = Workload::initial_source();
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session_src("gen", &source).unwrap();
    let mut gen = Workload::new(seed);
    let mut edits = Vec::new();
    for _ in 0..grow {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        Service::<OctagonDomain>::edit(&engine, session, &edit).unwrap();
        edits.push(edit);
    }
    let program = engine.program_of(session).unwrap();
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    (source, edits, targets)
}

/// Opens a session named `name`, replays `edits`, sweeps `targets`, and
/// snapshots — the whole client lifecycle, over any service.
fn run_session<D: PersistDomain, S: Service<D>>(
    service: &S,
    name: &str,
    source: &str,
    edits: &[ProgramEdit],
    targets: &[(String, Loc)],
) -> (Vec<Result<D, String>>, SessionSnapshot) {
    let session = service.open(name, source).unwrap();
    for edit in edits {
        service.edit(session, edit).unwrap();
    }
    let answers = service
        .query_sweep(session, targets)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect();
    let snapshot = service.snapshot(session).unwrap();
    (answers, snapshot)
}

fn engine_with(resolver: ResolverChoice) -> Arc<Engine<OctagonDomain>> {
    Arc::new(Engine::with_config(EngineConfig {
        workers: 1,
        resolver,
        ..EngineConfig::default()
    }))
}

/// The acceptance gate: socket answers and DOT bytes == in-process, with
/// two concurrent connections, under the given resolver.
fn socket_matches_in_process(resolver: ResolverChoice, tag: &str) {
    socket_matches_in_process_with(resolver, tag, dai_rpc::ClientOptions::default());
}

/// [`socket_matches_in_process`] under explicit client options — the
/// compatibility tests pin `protocol: Some(3)` to drive a genuine v3
/// client through the whole lifecycle against the v4 server.
fn socket_matches_in_process_with(
    resolver: ResolverChoice,
    tag: &str,
    options: dai_rpc::ClientOptions,
) {
    let (source, edits, targets) = fig10_script(10, 379422);
    // In-process reference.
    let (reference, reference_snap) = run_session(
        engine_with(resolver).as_ref(),
        "e2e",
        &source,
        &edits,
        &targets,
    );
    assert!(
        reference.iter().all(|r| r.is_ok()),
        "reference sweep answers"
    );
    // One server, two concurrent client connections doing the identical
    // lifecycle against their own sessions.
    let server = Server::bind(&Addr::Unix(scratch(tag)), engine_with(resolver)).unwrap();
    let addr = server.addr().to_string();
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let source = source.clone();
            let edits = edits.clone();
            let targets = targets.clone();
            let options = options.clone();
            // Named so any trace records they produce resolve to a real
            // thread name, never the recorder's `thread-{id}` fallback.
            std::thread::Builder::new()
                .name(format!("e2e-client-{i}"))
                .spawn(move || {
                    let client: Client<OctagonDomain> =
                        Client::connect_with(&Addr::parse(&addr).unwrap(), options).unwrap();
                    run_session(&client, "e2e", &source, &edits, &targets)
                })
                .expect("spawn e2e client thread")
        })
        .collect();
    for worker in workers {
        let (answers, snap) = worker.join().unwrap();
        assert_eq!(answers, reference, "socket sweep answers differ");
        assert_eq!(
            snap, reference_snap,
            "socket session DOT is not byte-identical"
        );
    }
    server.shutdown();
}

#[test]
fn fig10_socket_equals_in_process_intra() {
    socket_matches_in_process(ResolverChoice::Intra, "intra");
}

#[test]
fn fig10_socket_equals_in_process_interproc() {
    socket_matches_in_process(
        ResolverChoice::Interproc {
            policy: dai_core::interproc::ContextPolicy::CallString(1),
        },
        "interproc",
    );
}

#[test]
fn fig10_v3_client_equals_in_process_against_v4_server() {
    // The compatibility acceptance gate: a client pinned to protocol 3
    // (id-less frames, serial in-order responses) completes the full
    // equality suite — opens, edits, sweeps, snapshots — against the
    // v4 multiplexing server, byte for byte.
    socket_matches_in_process_with(
        ResolverChoice::Intra,
        "v3compat",
        dai_rpc::ClientOptions {
            protocol: Some(3),
            ..Default::default()
        },
    );
}

#[test]
fn loopy_program_roundtrips_with_unrolling() {
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(2));
    let server = Server::bind(&Addr::Unix(scratch("loopy")), Arc::clone(&engine)).unwrap();
    let client: Client<IntervalDomain> = Client::connect(&server.addr().to_string()).unwrap();
    let session = client.open("loopy", LOOPY).unwrap();
    let program = engine.program_of(session).unwrap();
    let cfg = program.by_name("f").unwrap();
    let targets: Vec<(String, Loc)> = cfg.locs().iter().map(|&l| ("f".to_string(), l)).collect();
    let remote: Vec<IntervalDomain> = client
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    // In-process oracle on a fresh engine.
    let oracle_engine: Engine<IntervalDomain> = Engine::new(1);
    let oracle_session = oracle_engine.open_session_src("loopy", LOOPY).unwrap();
    for ((_, loc), got) in targets.iter().zip(&remote) {
        let want = oracle_engine.query(oracle_session, "f", *loc).unwrap();
        assert_eq!(*got, want, "socket answer differs at {loc}");
    }
    // The DOTs byte-match too (both sessions demanded the same cones).
    let remote_snap = client.snapshot(session).unwrap();
    let local_snap = Service::<IntervalDomain>::snapshot(&oracle_engine, oracle_session).unwrap();
    assert_eq!(remote_snap, local_snap);
    server.shutdown();
}

#[test]
fn sessions_die_with_their_connection_unless_handed_off() {
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
    let server = Server::bind(&Addr::Unix(scratch("ownership")), Arc::clone(&engine)).unwrap();
    let addr = server.addr().to_string();
    let exit_of = |session: SessionId| {
        engine
            .program_of(session)
            .unwrap()
            .by_name("f")
            .unwrap()
            .exit()
    };

    // Without handoff: the session is closed when its connection ends.
    let client: Client<IntervalDomain> = Client::connect(&addr).unwrap();
    let orphan = client.open("orphan", LOOPY).unwrap();
    assert!(client.query(orphan, "f", exit_of(orphan)).is_ok());
    drop(client);
    // The connection handler closes owned sessions as it unwinds; poll
    // until the close lands (the disconnect is asynchronous).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match engine.program_of(orphan) {
            Err(EngineError::NoSuchSession(_)) => break,
            Ok(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            other => panic!("orphaned session not closed: {other:?}"),
        }
    }

    // With handoff: the session survives and another connection uses it.
    let client: Client<IntervalDomain> = Client::connect(&addr).unwrap();
    let kept = client.open("kept", LOOPY).unwrap();
    let exit = exit_of(kept);
    let before = client.query(kept, "f", exit).unwrap();
    assert!(client.handoff(kept).unwrap(), "first handoff owns");
    assert!(!client.handoff(kept).unwrap(), "second handoff is a no-op");
    drop(client);
    let client2: Client<IntervalDomain> = Client::connect(&addr).unwrap();
    assert_eq!(client2.query(kept, "f", exit).unwrap(), before);
    // Closing an adopted session works from any connection.
    assert!(client2.close(kept).unwrap());
    server.shutdown();
}

#[test]
fn wire_stats_carry_batch_and_persist_counters() {
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
    let server = Server::bind(&Addr::Unix(scratch("stats")), engine).unwrap();
    let client: Client<IntervalDomain> = Client::connect(&server.addr().to_string()).unwrap();
    let session = client.open("stats", LOOPY).unwrap();
    let targets: Vec<(String, Loc)> = {
        let snap_engine = server.engine();
        let program = snap_engine.program_of(session).unwrap();
        let cfg = program.by_name("f").unwrap();
        cfg.locs().iter().map(|&l| ("f".to_string(), l)).collect()
    };
    let before = client.stats().unwrap();
    for r in client.query_sweep(session, &targets) {
        r.unwrap();
    }
    let after = client.stats().unwrap();
    // The remote client can assert coalescing happened: one batch, one
    // lock, one union-cone walk, every member coalesced.
    assert_eq!(after.session_locks - before.session_locks, 1);
    assert_eq!(after.batch.batches - before.batch.batches, 1);
    assert_eq!(
        after.batch.coalesced_queries - before.batch.coalesced_queries,
        targets.len() as u64
    );
    assert_eq!(
        after.batch.union_cone_walks - before.batch.union_cone_walks,
        1
    );
    // And that persistence happened: saves/loads travel in the stats.
    let snap_path = scratch("stats-snapshot.daip");
    let saved = client.save(session, &snap_path).unwrap();
    assert!(saved.bytes > 0 && saved.funcs == 1);
    let (restored, outcome) = client.load(&snap_path).unwrap();
    assert!(outcome.is_warm(), "{outcome:?}");
    assert_ne!(restored, session);
    let after_persist = client.stats().unwrap();
    assert_eq!(after_persist.saves - after.saves, 1);
    assert_eq!(after_persist.loads - after.loads, 1);
    // The restored session answers over the wire too.
    let (f, loc) = targets.last().unwrap().clone();
    assert_eq!(
        client.query(restored, &f, loc).unwrap(),
        client.query(session, &f, loc).unwrap()
    );
    let _ = std::fs::remove_file(&snap_path);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Hostile frames.
// ---------------------------------------------------------------------

/// The id-less legacy frame layout the raw sweeps are written in: a
/// `RawConn` is a genuine v3 peer, so these tests double as coverage of
/// the v4 server's v3 compatibility path (the v4-layout hostile frames
/// get their own sweep in `hostile_pipelining_*` below).
const RAW_VERSION: u16 = 3;

/// A raw (frame-level) connection that has already completed the hello
/// exchange, for crafting hostile bytes a typed `Client` cannot send.
struct RawConn {
    stream: UnixStream,
}

impl RawConn {
    fn connect(path: &str) -> RawConn {
        let mut conn = RawConn {
            stream: UnixStream::connect(path).expect("server socket accepts"),
        };
        let hello = dai_rpc::proto::encode_message(&WireRequest::Hello {
            domain: IntervalDomain::domain_tag(),
            auth: None,
        });
        conn.send_frame(TAG_REQUEST, RAW_VERSION, &hello);
        match conn.read_response() {
            Some(WireResponse::HelloOk { .. }) => conn,
            other => panic!("hello failed: {other:?}"),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send");
        self.stream.flush().expect("flush");
    }

    fn send_frame(&mut self, tag: [u8; 4], version: u16, payload: &[u8]) {
        let mut out = Vec::new();
        write_frame(&mut out, tag, version, payload);
        self.send_raw(&out);
    }

    /// Reads one response, or `None` when the server closed the
    /// connection instead.
    fn read_response(&mut self) -> Option<WireResponse> {
        match read_frame(&mut self.stream, MAX_FRAME_LEN) {
            Ok(frame) => {
                let payload = frame.payload.expect("server frames are well-formed");
                Some(dai_rpc::proto::decode_message::<WireResponse>(&payload).unwrap())
            }
            Err(FrameReadError::Eof) | Err(FrameReadError::Truncated) => None,
            Err(e) => panic!("client-side read failed oddly: {e}"),
        }
    }

    /// Sends a valid `Stats` request and asserts it is answered — the
    /// probe that the connection survived whatever came before.
    fn assert_alive(&mut self) {
        let payload = dai_rpc::proto::encode_message(&WireRequest::Stats);
        self.send_frame(TAG_REQUEST, RAW_VERSION, &payload);
        match self.read_response() {
            Some(WireResponse::Stats(_)) => {}
            other => panic!("connection did not survive: {other:?}"),
        }
    }
}

fn hostile_server() -> (Server<IntervalDomain>, String) {
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
    let server = Server::bind(&Addr::Unix(scratch("hostile")), engine).unwrap();
    let path = match server.addr() {
        Addr::Unix(p) => p.clone(),
        other => panic!("expected unix addr, got {other}"),
    };
    (server, path)
}

#[test]
fn bad_checksum_answers_wire_error_and_connection_survives() {
    let (server, path) = hostile_server();
    let mut conn = RawConn::connect(&path);
    let payload = dai_rpc::proto::encode_message(&WireRequest::Stats);
    let mut frame = Vec::new();
    write_frame(&mut frame, TAG_REQUEST, RAW_VERSION, &payload);
    // Flip one payload byte: the checksum must catch it.
    frame[FRAME_HEADER_LEN] ^= 0xFF;
    conn.send_raw(&frame);
    match conn.read_response() {
        Some(WireResponse::Error(e)) => assert_eq!(e.code(), "protocol", "{e}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    conn.assert_alive();
    server.shutdown();
}

#[test]
fn wrong_protocol_version_answers_structured_error_and_survives() {
    let (server, path) = hostile_server();
    let mut conn = RawConn::connect(&path);
    // Too old for the supported range: version 2 predates the id field,
    // so it travels (and is consumed) in the id-less layout.
    let payload = dai_rpc::proto::encode_message(&WireRequest::Stats);
    conn.send_frame(TAG_REQUEST, 2, &payload);
    match conn.read_response() {
        Some(WireResponse::Error(WireError::UnsupportedVersion { got, want })) => {
            assert_eq!(got, 2);
            assert_eq!(want, PROTOCOL_VERSION);
        }
        other => panic!("expected version error, got {other:?}"),
    }
    // Too new: a ≥ 4 version means the id frame layout, and the whole
    // frame (id included) must be consumed so the stream stays in sync.
    let mut frame = Vec::new();
    dai_persist::frame::write_frame_id(
        &mut frame,
        TAG_REQUEST,
        PROTOCOL_VERSION + 41,
        Some(7),
        &payload,
    );
    conn.send_raw(&frame);
    match conn.read_response() {
        Some(WireResponse::Error(WireError::UnsupportedVersion { got, want })) => {
            assert_eq!(got, PROTOCOL_VERSION + 41);
            assert_eq!(want, PROTOCOL_VERSION);
        }
        other => panic!("expected version error, got {other:?}"),
    }
    conn.assert_alive();
    server.shutdown();
}

#[test]
fn oversized_declared_length_rejected_before_allocation_and_survives() {
    let (server, path) = hostile_server();
    let mut conn = RawConn::connect(&path);
    // A header declaring a multi-terabyte payload, with nothing behind
    // it: the server must answer from the header alone (allocating
    // nothing) and stay in sync for the next real frame.
    let header = FrameHeader {
        tag: TAG_REQUEST,
        version: RAW_VERSION,
        len: 1 << 42,
    };
    conn.send_raw(&header.encode());
    match conn.read_response() {
        Some(WireResponse::Error(e)) => {
            assert_eq!(e.code(), "protocol");
            assert!(e.to_string().contains("exceeds"), "{e}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    conn.assert_alive();
    server.shutdown();
}

#[test]
fn undecodable_and_misdirected_payloads_answer_wire_errors() {
    let (server, path) = hostile_server();
    let mut conn = RawConn::connect(&path);
    // Garbage payload under a valid frame (checksum fine, bytes absurd).
    conn.send_frame(TAG_REQUEST, RAW_VERSION, &[0xFE, 0xDC, 0xBA]);
    match conn.read_response() {
        Some(WireResponse::Error(e)) => assert_eq!(e.code(), "protocol", "{e}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // Trailing bytes after a valid request are a violation, not padding.
    let mut padded = dai_rpc::proto::encode_message(&WireRequest::Stats);
    padded.extend_from_slice(b"padding");
    conn.send_frame(TAG_REQUEST, RAW_VERSION, &padded);
    match conn.read_response() {
        Some(WireResponse::Error(e)) => assert_eq!(e.code(), "protocol", "{e}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // A response-tagged frame sent at the server.
    let payload = dai_rpc::proto::encode_message(&WireRequest::Stats);
    conn.send_frame(*b"RPCS", RAW_VERSION, &payload);
    match conn.read_response() {
        Some(WireResponse::Error(e)) => assert_eq!(e.code(), "protocol", "{e}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    conn.assert_alive();
    server.shutdown();
}

#[test]
fn client_refuses_to_send_oversized_frames_and_stays_usable() {
    // A request whose encoding exceeds the frame bound must be rejected
    // client-side *before* hitting the wire — the server would answer
    // from the header alone and then misparse the payload bytes as
    // garbage frames, desynchronizing the connection.
    let (server, path) = hostile_server();
    let client: Client<IntervalDomain> = Client::connect(&format!("unix:{path}")).unwrap();
    let huge = "x".repeat(MAX_FRAME_LEN + 1);
    match client.open("huge", &huge) {
        Err(EngineError::Remote { code, message }) => {
            assert_eq!(code, "protocol");
            assert!(message.contains("exceeds"), "{message}");
        }
        other => panic!("expected a client-side bound rejection, got {other:?}"),
    }
    // Nothing was sent: the connection is still in sync.
    let session = client.open("after", LOOPY).unwrap();
    assert!(client.close(session).unwrap());
    server.shutdown();
}

#[test]
fn requests_before_hello_are_rejected_in_protocol() {
    let (server, path) = hostile_server();
    let mut stream = UnixStream::connect(&path).unwrap();
    let payload = dai_rpc::proto::encode_message(&WireRequest::Stats);
    let mut frame = Vec::new();
    // A v4 frame: carries a request id, which the rejection must echo.
    dai_persist::frame::write_frame_id(
        &mut frame,
        TAG_REQUEST,
        PROTOCOL_VERSION,
        Some(9),
        &payload,
    );
    stream.write_all(&frame).unwrap();
    let response =
        dai_persist::frame::read_frame_expecting(&mut stream, MAX_FRAME_LEN, |h| h.version >= 4)
            .unwrap();
    assert_eq!(response.id, Some(9), "rejection echoes the request id");
    let decoded =
        dai_rpc::proto::decode_message::<WireResponse>(&response.payload.unwrap()).unwrap();
    match decoded {
        WireResponse::Error(e) => {
            assert_eq!(e.code(), "protocol");
            assert!(e.to_string().contains("hello"), "{e}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn domain_mismatch_is_a_structured_error() {
    let (server, path) = hostile_server(); // serves IntervalDomain
    let err = match Client::<OctagonDomain>::connect(&format!("unix:{path}")) {
        Err(e) => e,
        Ok(_) => panic!("octagon client connected to an interval server"),
    };
    match err {
        EngineError::Remote { code, message } => {
            assert_eq!(code, "domain");
            assert!(
                message.contains("octagon") && message.contains("interval"),
                "{message}"
            );
        }
        other => panic!("expected domain mismatch, got {other}"),
    }
    // The rejection did not hurt the server: the right domain connects.
    let ok = Client::<IntervalDomain>::connect(&format!("unix:{path}"));
    assert!(ok.is_ok());
    server.shutdown();
}

#[test]
fn every_truncation_prefix_is_handled_cleanly() {
    // The socket mirror of persistence.rs's every-truncation-prefix
    // sweep: for each proper prefix of a valid request frame, a fresh
    // connection sends the prefix and hangs up; the server must neither
    // panic nor stop serving. (A cut frame has no resync point, so the
    // clean outcome for the cut connection is a close — the guarantee
    // under test is server survival plus clean teardown, exactly like a
    // truncated snapshot file degrading instead of crashing.)
    let (server, path) = hostile_server();
    let payload = dai_rpc::proto::encode_message(&WireRequest::Query {
        session: 1,
        func: "f".to_string(),
        loc: Loc(3),
    });
    let mut frame = Vec::new();
    write_frame(&mut frame, TAG_REQUEST, RAW_VERSION, &payload);
    for cut in 0..frame.len() {
        let mut conn = RawConn::connect(&path);
        conn.send_raw(&frame[..cut]);
        conn.stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        // Drain whatever the server does (a response would only arrive
        // for a prefix that happens to be a complete frame; EOF is the
        // expected outcome) until it closes our read side.
        while conn.read_response().is_some() {}
    }
    // After the whole sweep, the server still serves typed clients.
    let client: Client<IntervalDomain> = Client::connect(&format!("unix:{path}")).unwrap();
    let session = client.open("after-sweep", LOOPY).unwrap();
    let exit = server
        .engine()
        .program_of(session)
        .unwrap()
        .by_name("f")
        .unwrap()
        .exit();
    assert!(client.query(session, "f", exit).is_ok());
    server.shutdown();
}

/// The pure-decode half of the hostile sweep: whatever bytes arrive,
/// message decoding returns a structured error rather than panicking or
/// over-allocating. This is the layer the socket tests drive end to
/// end; fuzzing it directly covers orders of magnitude more inputs per
/// second than a connection per case would.
fn decode_never_panics(bytes: &[u8]) {
    let _ = dai_rpc::proto::decode_message::<WireRequest>(bytes);
    let _ = dai_rpc::proto::decode_message::<WireResponse>(bytes);
    let _ = dai_persist::split_frame(bytes);
    let _ = dai_persist::decode_trace_frame(bytes);
    let _ = read_frame(&mut &bytes[..], MAX_FRAME_LEN);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn fuzzed_frames_decode_to_errors_not_panics(seed in 0u64..1_000_000) {
        // Deterministic pseudo-random mutations of a real frame: flips,
        // truncations, and splices at seed-chosen positions, plus raw
        // seed-derived garbage.
        let payload = dai_rpc::proto::encode_message(&WireRequest::Sweep {
            session: seed,
            targets: vec![("main".to_string(), Loc(seed as u32 % 17))],
        });
        let mut frame = Vec::new();
        write_frame(&mut frame, TAG_REQUEST, PROTOCOL_VERSION, &payload);
        let a = (seed as usize) % frame.len();
        let b = (seed as usize / 7) % frame.len();
        decode_never_panics(&frame[..a]);
        let mut flipped = frame.clone();
        flipped[a] ^= (seed % 255) as u8 + 1;
        decode_never_panics(&flipped);
        let mut spliced = frame[..a].to_vec();
        spliced.extend_from_slice(&frame[b..]);
        decode_never_panics(&spliced);
        let garbage: Vec<u8> = (0..(seed % 64)).map(|i| (seed >> (i % 8)) as u8).collect();
        decode_never_panics(&garbage);
    }
}

// ---------------------------------------------------------------------
// Trace & metrics over the wire.
// ---------------------------------------------------------------------

/// A seed-derived trace dump: the generator shared by the roundtrip
/// proptests below. Index tables are kept consistent with the records
/// (the persist codec rejects out-of-range label/thread indices).
fn arbitrary_dump(seed: u64) -> dai_engine::TraceDump {
    let labels = vec![
        "engine.session_lock".to_string(),
        "engine.cone_walk".to_string(),
        "engine.cells".to_string(),
    ];
    let threads = vec!["dai-worker-0".to_string(), "dai-rpc-conn-3".to_string()];
    let records = (0..(seed % 9))
        .map(|i| {
            let start = seed.rotate_left(i as u32).wrapping_mul(i + 1);
            dai_trace::Record {
                label: (i % labels.len() as u64) as u32,
                thread: (i % threads.len() as u64) as u32,
                kind: if (seed >> i) & 1 == 0 {
                    dai_trace::RecordKind::Span
                } else {
                    dai_trace::RecordKind::Event
                },
                start_ns: start,
                end_ns: start.saturating_add(seed % 1_000),
                arg: seed ^ i,
            }
        })
        .collect();
    let dropped = seed % 5;
    dai_engine::TraceDump {
        records,
        labels,
        threads,
        dropped,
        dropped_by_thread: vec![dropped / 2, dropped - dropped / 2],
    }
}

#[test]
fn trace_and_metrics_roundtrip_over_socket() {
    let (server, path) = hostile_server();
    let client: Client<IntervalDomain> = Client::connect(&format!("unix:{path}")).unwrap();
    client.trace_enable().unwrap();
    let session = client.open("traced", LOOPY).unwrap();
    let exit = server
        .engine()
        .program_of(session)
        .unwrap()
        .by_name("f")
        .unwrap()
        .exit();
    client.query(session, "f", exit).unwrap();
    let dump = client.trace_dump().unwrap();
    client.trace_disable().unwrap();
    // Index tables stayed consistent across the wire.
    for r in &dump.records {
        assert!(
            (r.label as usize) < dump.labels.len(),
            "label index in range"
        );
        assert!(
            (r.thread as usize) < dump.threads.len(),
            "thread index in range"
        );
    }
    if dai_trace::TraceConfig::probes_compiled() {
        assert!(!dump.records.is_empty(), "a traced query left no records");
        assert!(
            dump.labels.iter().any(|l| l == "engine.session_lock"),
            "query path spans missing from {:?}",
            dump.labels
        );
    } else {
        assert!(dump.records.is_empty(), "no-probe build recorded spans");
    }
    // Metrics exposition carries the engine counters for the query above.
    let text = client.metrics().unwrap();
    assert!(text.contains("# TYPE dai_engine_queries gauge"), "{text}");
    assert!(
        text.contains("dai_engine_batch_serve_seconds_bucket"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn trace_and_metrics_requests_survive_truncations_and_flips() {
    // The hostile sweeps of the two new wire messages: every proper
    // prefix of a valid frame (fresh connection each, clean close), and
    // every payload byte flip (one connection, structured error each
    // time, connection survives to the next request).
    let (server, path) = hostile_server();
    let payloads = [
        dai_rpc::proto::encode_message(&WireRequest::Trace {
            op: dai_engine::TraceOp::Dump,
        }),
        dai_rpc::proto::encode_message(&WireRequest::Metrics),
    ];
    for payload in &payloads {
        let mut frame = Vec::new();
        write_frame(&mut frame, TAG_REQUEST, RAW_VERSION, payload);
        for cut in 0..frame.len() {
            let mut conn = RawConn::connect(&path);
            conn.send_raw(&frame[..cut]);
            conn.stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            while conn.read_response().is_some() {}
        }
        // Payload flips are checksum-caught, so one connection takes the
        // whole sweep: error, resync, next flip.
        let mut conn = RawConn::connect(&path);
        for i in FRAME_HEADER_LEN..frame.len() {
            let mut flipped = frame.clone();
            flipped[i] ^= 0xFF;
            conn.send_raw(&flipped);
            match conn.read_response() {
                Some(WireResponse::Error(e)) => assert_eq!(e.code(), "protocol", "{e}"),
                other => panic!("flip at {i}: expected protocol error, got {other:?}"),
            }
        }
        conn.assert_alive();
        // Header flips can desync; sweep them on fresh connections like
        // the general byte-flip test.
        for i in 0..FRAME_HEADER_LEN {
            let mut flipped = frame.clone();
            flipped[i] ^= 0xFF;
            let mut conn = RawConn::connect(&path);
            conn.send_raw(&flipped);
            conn.stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            while conn.read_response().is_some() {}
        }
    }
    // The server outlived both sweeps.
    let client: Client<IntervalDomain> = Client::connect(&format!("unix:{path}")).unwrap();
    assert!(client.metrics().is_ok());
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn trace_wire_messages_roundtrip(seed in 0u64..1_000_000) {
        let dump = arbitrary_dump(seed);
        // Wire response roundtrip.
        let encoded = dai_rpc::proto::encode_message(&WireResponse::Trace(dump.clone()));
        match dai_rpc::proto::decode_message::<WireResponse>(&encoded) {
            Ok(WireResponse::Trace(back)) => prop_assert_eq!(&back, &dump),
            other => panic!("bad decode: {other:?}"),
        }
        // Request roundtrips for all three ops and the metrics pair.
        use dai_engine::TraceOp;
        for op in [TraceOp::Enable, TraceOp::Disable, TraceOp::Dump] {
            let bytes = dai_rpc::proto::encode_message(&WireRequest::Trace { op });
            prop_assert!(matches!(
                dai_rpc::proto::decode_message::<WireRequest>(&bytes),
                Ok(WireRequest::Trace { op: got }) if got == op
            ));
        }
        let bytes = dai_rpc::proto::encode_message(&WireRequest::Metrics);
        prop_assert!(matches!(
            dai_rpc::proto::decode_message::<WireRequest>(&bytes),
            Ok(WireRequest::Metrics)
        ));
        let text = format!("# TYPE x counter\nx {seed}\n");
        let bytes = dai_rpc::proto::encode_message(&WireResponse::Metrics { text: text.clone() });
        match dai_rpc::proto::decode_message::<WireResponse>(&bytes) {
            Ok(WireResponse::Metrics { text: got }) => prop_assert_eq!(got, text),
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn trace_binary_frame_roundtrips_and_rejects_mutations(seed in 0u64..1_000_000) {
        let dump = arbitrary_dump(seed);
        let frame = dai_persist::encode_trace_frame(&dump);
        let back = dai_persist::decode_trace_frame(&frame)
            .unwrap_or_else(|e| panic!("own frame rejected: {e}"));
        prop_assert_eq!(&back, &dump);
        // Every proper prefix is a structured error, never a panic.
        for cut in 0..frame.len() {
            prop_assert!(dai_persist::decode_trace_frame(&frame[..cut]).is_err());
        }
        // Every single-byte flip is checksum- (or header-) caught.
        for i in 0..frame.len() {
            let mut flipped = frame.clone();
            flipped[i] ^= 0xFF;
            prop_assert!(dai_persist::decode_trace_frame(&flipped).is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Explain over the wire.
// ---------------------------------------------------------------------

#[test]
fn explain_over_socket_is_byte_identical_to_in_process() {
    let (server, path) = hostile_server();
    let client: Client<IntervalDomain> = Client::connect(&format!("unix:{path}")).unwrap();
    let session = client.open("explain", LOOPY).unwrap();
    let targets: Vec<(String, Loc)> = {
        let program = server.engine().program_of(session).unwrap();
        let cfg = program.by_name("f").unwrap();
        cfg.locs().iter().map(|&l| ("f".to_string(), l)).collect()
    };
    let remote = client.explain(session, &targets).unwrap();
    // The engine keeps the report it just served; the socket copy must
    // equal it — and re-encode to the identical EXPL frame bytes, the
    // same binary form `explain --json` artifacts use on disk.
    let local = server
        .engine()
        .last_explain()
        .expect("the engine kept the report it served");
    assert_eq!(remote, local);
    assert_eq!(
        dai_persist::encode_explain_frame(&remote),
        dai_persist::encode_explain_frame(&local),
        "socket-fetched report does not re-encode byte-identically"
    );
    // A real capture travelled: a cold loopy sweep computes cells, runs
    // a fix, and its accounting matches the engine's own counters.
    assert!(!remote.cells.is_empty(), "no cells attributed");
    assert!(!remote.fixes.is_empty(), "loopy sweep ran no fixpoint");
    assert!(remote.parallelism() >= 1.0);
    let stats = client.stats().unwrap();
    remote
        .check_accounting(&stats.query_stats)
        .expect("wire report disagrees with engine counters");
    server.shutdown();
}

#[test]
fn explain_on_an_interprocedural_server_is_a_structured_error() {
    let engine = engine_with(ResolverChoice::Interproc {
        policy: dai_core::interproc::ContextPolicy::CallString(1),
    });
    let server = Server::bind(&Addr::Unix(scratch("explain-inter")), engine).unwrap();
    let client: Client<OctagonDomain> = Client::connect(&server.addr().to_string()).unwrap();
    let session = client.open("explain-inter", LOOPY).unwrap();
    let program = server.engine().program_of(session).unwrap();
    let exit = program.by_name("f").unwrap().exit();
    let err = client
        .explain(session, &[("f".to_string(), exit)])
        .expect_err("explain must refuse the interprocedural backend");
    assert!(
        err.to_string().contains("intraprocedural"),
        "unexpected error: {err}"
    );
    // The refusal is in protocol: the connection still serves queries.
    assert!(client.query(session, "f", exit).is_ok());
    server.shutdown();
}

#[test]
fn explain_requests_survive_truncations_and_flips() {
    // The hostile sweep of the explain wire message, mirroring the
    // trace/metrics sweeps above: every proper prefix on a fresh
    // connection (clean close), every payload byte flip on one
    // connection (structured error each time, connection survives).
    let (server, path) = hostile_server();
    let payload = dai_rpc::proto::encode_message(&WireRequest::Explain {
        session: 1,
        targets: vec![("f".to_string(), Loc(2))],
    });
    let mut frame = Vec::new();
    write_frame(&mut frame, TAG_REQUEST, RAW_VERSION, &payload);
    for cut in 0..frame.len() {
        let mut conn = RawConn::connect(&path);
        conn.send_raw(&frame[..cut]);
        conn.stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        while conn.read_response().is_some() {}
    }
    let mut conn = RawConn::connect(&path);
    for i in FRAME_HEADER_LEN..frame.len() {
        let mut flipped = frame.clone();
        flipped[i] ^= 0xFF;
        conn.send_raw(&flipped);
        match conn.read_response() {
            Some(WireResponse::Error(e)) => assert_eq!(e.code(), "protocol", "{e}"),
            other => panic!("flip at {i}: expected protocol error, got {other:?}"),
        }
    }
    conn.assert_alive();
    // The server outlived the sweep and still explains.
    let client: Client<IntervalDomain> = Client::connect(&format!("unix:{path}")).unwrap();
    let session = client.open("after-hostile", LOOPY).unwrap();
    let exit = server
        .engine()
        .program_of(session)
        .unwrap()
        .by_name("f")
        .unwrap()
        .exit();
    assert!(client.explain(session, &[("f".to_string(), exit)]).is_ok());
    server.shutdown();
}

#[test]
fn every_single_byte_flip_is_handled_cleanly() {
    // Bit-flip sweep over a whole valid frame: each position is flipped
    // on its own fresh connection. Depending on the position the server
    // sees a bad tag, a bad version, a lying length, a checksum
    // mismatch, or an undecodable payload — every one must end in a
    // structured error or a clean close, and the server must survive
    // them all.
    let (server, path) = hostile_server();
    let payload = dai_rpc::proto::encode_message(&WireRequest::Stats);
    let mut frame = Vec::new();
    write_frame(&mut frame, TAG_REQUEST, RAW_VERSION, &payload);
    for i in 0..frame.len() {
        let mut flipped = frame.clone();
        flipped[i] ^= 0xFF;
        let mut conn = RawConn::connect(&path);
        conn.send_raw(&flipped);
        conn.stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        // Either a structured response (error, or Stats when the flip
        // landed somewhere harmless… it never is, but the contract is
        // "no panic, no hang") or a clean close.
        while conn.read_response().is_some() {}
    }
    let client: Client<IntervalDomain> = Client::connect(&format!("unix:{path}")).unwrap();
    assert!(Service::<IntervalDomain>::stats(&client).is_ok());
    server.shutdown();
}

// ---------------------------------------------------------------------
// Protocol 4: multiplexed pipelining, auth, shutdown churn.
// ---------------------------------------------------------------------

/// A raw v4 (id-framed) connection, for pipelining hostile bytes between
/// valid in-flight requests.
struct RawV4Conn {
    stream: UnixStream,
}

impl RawV4Conn {
    fn connect(path: &str) -> RawV4Conn {
        let mut conn = RawV4Conn {
            stream: UnixStream::connect(path).expect("server socket accepts"),
        };
        let hello = dai_rpc::proto::encode_message(&WireRequest::Hello {
            domain: IntervalDomain::domain_tag(),
            auth: None,
        });
        conn.send_request(1, &hello);
        match conn.read_response() {
            (Some(1), WireResponse::HelloOk { .. }) => conn,
            other => panic!("v4 hello failed: {other:?}"),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send");
        self.stream.flush().expect("flush");
    }

    fn send_request(&mut self, id: u64, payload: &[u8]) {
        let mut out = Vec::new();
        dai_persist::frame::write_frame_id(
            &mut out,
            TAG_REQUEST,
            PROTOCOL_VERSION,
            Some(id),
            payload,
        );
        self.send_raw(&out);
    }

    fn read_response(&mut self) -> (Option<u64>, WireResponse) {
        let frame =
            dai_persist::frame::read_frame_expecting(&mut self.stream, MAX_FRAME_LEN, |h| {
                h.version >= 4
            })
            .expect("server keeps the connection");
        let payload = frame.payload.expect("server frames are well-formed");
        (
            frame.id,
            dai_rpc::proto::decode_message::<WireResponse>(&payload).unwrap(),
        )
    }
}

#[test]
fn hostile_pipelining_keeps_stream_in_sync_and_answers_every_id() {
    // The v4 hostile sweep: valid pipelined queries with an
    // oversized-declared frame and a checksum-damaged frame spliced
    // between them, all written in ONE burst. The stream must stay at
    // frame boundaries, every id — hostile or not — must be answered,
    // and the connection must survive to serve the next request.
    let (server, path) = hostile_server();
    let mut conn = RawV4Conn::connect(&path);

    // A real session to query, set up over the same raw connection.
    let open = dai_rpc::proto::encode_message(&WireRequest::Open {
        name: "hp".to_string(),
        source: LOOPY.to_string(),
    });
    conn.send_request(2, &open);
    let session = match conn.read_response() {
        (Some(2), WireResponse::Opened { session }) => session,
        other => panic!("open failed: {other:?}"),
    };
    let locs: Vec<Loc> = {
        let program = server.engine().program_of(SessionId(session)).unwrap();
        program.by_name("f").unwrap().locs()
    };

    let query = |loc: Loc| {
        dai_rpc::proto::encode_message(&WireRequest::Query {
            session,
            func: "f".to_string(),
            loc,
        })
    };
    let mut burst = Vec::new();
    // id 10: valid query.
    dai_persist::frame::write_frame_id(
        &mut burst,
        TAG_REQUEST,
        PROTOCOL_VERSION,
        Some(10),
        &query(locs[0]),
    );
    // id 11: header declaring a multi-terabyte payload — the server must
    // reject from the header+id alone and resume at the next byte.
    let lying = FrameHeader {
        tag: TAG_REQUEST,
        version: PROTOCOL_VERSION,
        len: 1 << 42,
    };
    burst.extend_from_slice(&lying.encode());
    burst.extend_from_slice(&11u64.to_le_bytes());
    // id 12: valid query.
    dai_persist::frame::write_frame_id(
        &mut burst,
        TAG_REQUEST,
        PROTOCOL_VERSION,
        Some(12),
        &query(locs[1 % locs.len()]),
    );
    // id 13: checksum-damaged frame (payload byte flipped after framing).
    let damaged_from = burst.len();
    dai_persist::frame::write_frame_id(
        &mut burst,
        TAG_REQUEST,
        PROTOCOL_VERSION,
        Some(13),
        &query(locs[0]),
    );
    burst[damaged_from + FRAME_HEADER_LEN + 8] ^= 0xFF;
    // id 14: valid query.
    dai_persist::frame::write_frame_id(
        &mut burst,
        TAG_REQUEST,
        PROTOCOL_VERSION,
        Some(14),
        &query(locs[2 % locs.len()]),
    );
    conn.send_raw(&burst);

    // Five ids in flight; answers may arrive in any order.
    let mut answers = std::collections::HashMap::new();
    for _ in 0..5 {
        let (id, response) = conn.read_response();
        let id = id.expect("v4 responses carry ids");
        assert!(
            answers.insert(id, response).is_none(),
            "id {id} answered twice"
        );
    }
    for id in [10u64, 12, 14] {
        match answers.remove(&id) {
            Some(WireResponse::State(_)) => {}
            other => panic!("id {id}: expected a state, got {other:?}"),
        }
    }
    match answers.remove(&11) {
        Some(WireResponse::Error(e)) => {
            assert_eq!(e.code(), "protocol");
            assert!(e.to_string().contains("exceeds"), "{e}");
        }
        other => panic!("id 11: expected the oversize rejection, got {other:?}"),
    }
    match answers.remove(&13) {
        Some(WireResponse::Error(e)) => {
            assert_eq!(e.code(), "protocol");
            assert!(e.to_string().contains("checksum"), "{e}");
        }
        other => panic!("id 13: expected the checksum rejection, got {other:?}"),
    }
    assert!(answers.is_empty(), "unexpected extra answers: {answers:?}");

    // The connection survived the whole splice.
    let stats = dai_rpc::proto::encode_message(&WireRequest::Stats);
    conn.send_request(20, &stats);
    match conn.read_response() {
        (Some(20), WireResponse::Stats(_)) => {}
        other => panic!("connection did not survive: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn pipelined_per_query_frames_reproduce_the_coalesced_lock_profile() {
    // The tentpole's acceptance check: a client that pipelines plain
    // per-query frames over one socket gets the engine's coalesced
    // profile — session locks ≈ batches, not ≈ queries — because the
    // server's event loop batches adjacent same-function query frames
    // into one `submit_query_batch` call.
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
    let server = Server::bind(&Addr::Unix(scratch("pipeline")), Arc::clone(&engine)).unwrap();
    let client: Client<IntervalDomain> = Client::connect(&server.addr().to_string()).unwrap();
    assert_eq!(client.protocol(), PROTOCOL_VERSION);
    let session = client.open("pipeline", LOOPY).unwrap();
    let locs: Vec<Loc> = engine
        .program_of(session)
        .unwrap()
        .by_name("f")
        .unwrap()
        .locs();
    let before = client.stats().unwrap();
    let answers = client.pipeline_queries(session, "f", &locs);
    let after = client.stats().unwrap();

    // Every pipelined id answered, and correctly: the answers match the
    // serial oracle on a fresh engine.
    assert_eq!(answers.len(), locs.len());
    let oracle: Engine<IntervalDomain> = Engine::new(1);
    let oracle_session = oracle.open_session_src("oracle", LOOPY).unwrap();
    for (loc, got) in locs.iter().zip(&answers) {
        let want = oracle.query(oracle_session, "f", *loc).unwrap();
        assert_eq!(
            got.as_ref().unwrap(),
            &want,
            "pipelined answer differs at {loc}"
        );
    }

    // The lock profile is the batched one. The burst may land in more
    // than one read drain (the loop can wake mid-write), so don't pin
    // "exactly one batch" — the assertions that matter are one lock per
    // drain and drains ≪ queries.
    let locks = after.session_locks - before.session_locks;
    let batches = after.batch.batches - before.batch.batches;
    let coalesced = after.batch.coalesced_queries - before.batch.coalesced_queries;
    let singleton = after.batch.singleton_queries - before.batch.singleton_queries;
    assert_eq!(
        coalesced + singleton,
        locs.len() as u64,
        "every query served"
    );
    assert_eq!(locks, batches + singleton, "one session lock per drain");
    assert!(
        locks * 4 <= locs.len() as u64,
        "pipelined frames did not coalesce: {locks} session locks for {} queries",
        locs.len()
    );
    server.shutdown();
}

#[test]
fn auth_token_gates_the_hello_exchange() {
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
    let server = dai_rpc::Server::bind_with(
        &Addr::Unix(scratch("auth")),
        engine,
        dai_rpc::ServerConfig {
            auth_token: Some("s3cret".to_string()),
        },
    )
    .unwrap();
    let addr = Addr::parse(&server.addr().to_string()).unwrap();

    // Missing and wrong tokens: structured `unauthorized`, no session.
    for bad in [None, Some("wrong".to_string())] {
        let got = Client::<IntervalDomain>::connect_with(
            &addr,
            dai_rpc::ClientOptions {
                auth: bad,
                ..Default::default()
            },
        );
        match got {
            Err(EngineError::Remote { code, .. }) => assert_eq!(code, "unauthorized"),
            other => panic!("expected unauthorized, got {:?}", other.err()),
        }
    }

    // A v3 client cannot present a token at all; the downgraded error
    // still names the cause.
    let got = Client::<IntervalDomain>::connect_with(
        &addr,
        dai_rpc::ClientOptions {
            auth: None,
            protocol: Some(3),
        },
    );
    match got {
        Err(EngineError::Remote { code, message }) => {
            assert_eq!(code, "rejected");
            assert!(message.contains("unauthorized"), "{message}");
        }
        other => panic!("expected downgraded unauthorized, got {:?}", other.err()),
    }

    // The right token connects and serves.
    let client = Client::<IntervalDomain>::connect_with(
        &addr,
        dai_rpc::ClientOptions {
            auth: Some("s3cret".to_string()),
            ..Default::default()
        },
    )
    .unwrap();
    let session = client.open("authed", LOOPY).unwrap();
    assert!(client.close(session).unwrap());

    // A rejected hello leaves the connection usable for a retry — the
    // server answers in protocol rather than hanging up.
    server.shutdown();
}

#[test]
fn shutdown_survives_a_connection_churn_storm() {
    // Connections being opened, used, and dropped *while the server is
    // shutting down* must neither panic (the old per-connection handler
    // table had a join/remove race here) nor hang the shutdown.
    let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
    let server = Server::bind(&Addr::Unix(scratch("churn")), engine).unwrap();
    let addr = server.addr().to_string();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churners: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("churn-{i}"))
                .spawn(move || {
                    let mut connected = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // Failures are expected once shutdown begins; the
                        // invariant is no panic and no hang.
                        if let Ok(client) = Client::<IntervalDomain>::connect(&addr) {
                            connected += 1;
                            if connected.is_multiple_of(2) {
                                let _ = client.open("churn", LOOPY);
                            }
                        }
                    }
                    connected
                })
                .expect("spawn churner")
        })
        .collect();
    // Let the storm build, then shut down in the middle of it.
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total = 0;
    for churner in churners {
        total += churner.join().expect("churner must not panic");
    }
    assert!(total > 0, "the storm never connected at all");
}
