//! The cost-attribution acceptance gate: an explain capture must be
//! **accounting-honest** — every number in an [`ExplainReport`] must
//! agree with the engine's own counters and with the report's internal
//! structure — across the capture lifecycle:
//!
//! * a cold sweep attributes the whole union cone (accounting identity
//!   against the `QueryStats` delta, work = sum of the parts, span ≤
//!   work);
//! * a warm re-sweep attributes pure reuse (zero work, zero span);
//! * after an edit, the attribution splits: the edited function's cone
//!   recomputes, untouched functions stay reused, and the identity
//!   still holds;
//! * captures fold into `EngineStats::explain` and the metrics registry;
//! * an interprocedural engine refuses attribution with a structured
//!   error instead of a wrong report;
//! * a live report survives the binary `EXPL` frame byte-identically,
//!   and every truncation or byte flip of that frame is rejected.

use dai_core::driver::ProgramEdit;
use dai_core::explain::{CellOutcome, ExplainReport};
use dai_core::interproc::ContextPolicy;
use dai_core::query::QueryStats;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, EngineConfig, Request, ResolverChoice, SessionId};
use dai_lang::{Loc, Symbol};

/// Three functions — two with loops (so fix cells appear), one
/// straight-line — so a whole-program sweep mixes outcomes.
const PROGRAM: &str = "\
    function f(n) { var i = 0; var s = 0; \
        while (i < 9) { s = s + i; i = i + 1; } return s; } \
    function g(n) { var j = 0; var t = 1; \
        while (j < 4) { t = t + t; j = j + 1; } return t; } \
    function h(n) { var x = 2; var y = x + 3; return y; }";

fn sweep_targets(engine: &Engine<OctagonDomain>, session: SessionId) -> Vec<(String, Loc)> {
    let program = engine.program_of(session).unwrap();
    let mut targets: Vec<(String, Loc)> = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    targets
}

fn stats_delta(after: &QueryStats, before: &QueryStats) -> QueryStats {
    QueryStats {
        computed: after.computed - before.computed,
        memo_matched: after.memo_matched - before.memo_matched,
        reused: after.reused - before.reused,
        unrolls: after.unrolls - before.unrolls,
        fix_converged: after.fix_converged - before.fix_converged,
        cone_walks: after.cone_walks - before.cone_walks,
        cone_cells: after.cone_cells - before.cone_cells,
        transfers_compiled: after.transfers_compiled - before.transfers_compiled,
        transfers_interp: after.transfers_interp - before.transfers_interp,
    }
}

/// Captures one explain sweep and checks the accounting identity
/// against the engine's counter delta before handing the report back.
fn capture(
    engine: &Engine<OctagonDomain>,
    session: SessionId,
    targets: &[(String, Loc)],
) -> ExplainReport {
    let before = engine.stats().query_stats;
    let report = engine.explain_sweep(session, targets).unwrap();
    let delta = stats_delta(&engine.stats().query_stats, &before);
    report.check_accounting(&delta).unwrap();
    report
}

/// The report's internal structure: outcomes partition the cells, work
/// is exactly the sum of the attributed parts, the span is a path
/// through that work, and finish times are consistent with walls.
fn assert_internally_consistent(report: &ExplainReport) {
    let by_outcome = report.outcome_cells(CellOutcome::Computed)
        + report.outcome_cells(CellOutcome::MemoMatched)
        + report.outcome_cells(CellOutcome::Reused);
    assert_eq!(by_outcome, report.cells.len() as u64);
    let cell_work: u64 = report.cells.iter().map(|c| c.wall_ns).sum();
    assert_eq!(report.work_ns, cell_work + report.fix_ns());
    assert!(report.span_ns <= report.work_ns, "span exceeds work");
    assert!(report.parallelism() >= 1.0);
    for cell in &report.cells {
        assert!(
            cell.finish_ns >= cell.wall_ns,
            "finish before own wall for {:?}",
            cell.cell
        );
    }
}

#[test]
fn cold_sweep_attributes_the_whole_cone_exactly() {
    let engine: Engine<OctagonDomain> = Engine::new(2);
    let session = engine.open_session_src("cold", PROGRAM).unwrap();
    let targets = sweep_targets(&engine, session);

    let report = capture(&engine, session, &targets);
    assert_internally_consistent(&report);
    assert_eq!(report.domain, "octagon");
    assert_eq!(report.transfer, "compiled");
    assert!(
        report.outcome_cells(CellOutcome::Computed) > 0,
        "a cold sweep computes"
    );
    assert!(!report.fixes.is_empty(), "two loops must leave fix records");
    assert!(report.unrolls() > 0, "the loops unroll under octagon");
    assert!(report.converged_fixes() > 0, "the loops converge");

    // Hottest cells are the computed work, sorted hot-first.
    let hottest = report.hottest(5);
    assert!(!hottest.is_empty());
    for pair in hottest.windows(2) {
        assert!(pair[0].wall_ns >= pair[1].wall_ns);
    }
}

#[test]
fn warm_resweep_attributes_pure_reuse() {
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session_src("warm", PROGRAM).unwrap();
    let targets = sweep_targets(&engine, session);

    capture(&engine, session, &targets);
    let warm = capture(&engine, session, &targets);
    assert_internally_consistent(&warm);
    assert_eq!(
        warm.outcome_cells(CellOutcome::Computed),
        0,
        "a warm re-sweep recomputes nothing"
    );
    assert_eq!(
        warm.outcome_cells(CellOutcome::Reused),
        warm.cells.len() as u64,
        "every warm cell is a reuse"
    );
    assert!(warm.fixes.is_empty(), "no fix iterates on a warm sweep");
    assert_eq!(warm.work_ns, 0, "reuse is free by construction");
    assert_eq!(warm.span_ns, 0);
}

#[test]
fn edit_invalidation_splits_the_attribution() {
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session_src("edit", PROGRAM).unwrap();
    let targets = sweep_targets(&engine, session);
    capture(&engine, session, &targets);

    // Touch one statement of `f`; `g` and `h` keep their values.
    let program = engine.program_of(session).unwrap();
    let edge = program
        .by_name("f")
        .unwrap()
        .edges()
        .find(|e| e.stmt.to_string() == "s = (s + i)")
        .expect("edit target exists")
        .id;
    drop(program);
    engine
        .request(Request::Edit {
            session,
            edit: ProgramEdit::Relabel {
                func: Symbol::new("f"),
                edge,
                stmt: dai_lang::Stmt::Assign(
                    "s".into(),
                    dai_lang::parse_expr("s + i + 1").unwrap(),
                ),
            },
        })
        .unwrap();

    let report = capture(&engine, session, &targets);
    assert_internally_consistent(&report);
    assert!(
        report.outcome_cells(CellOutcome::Computed) > 0,
        "the edited cone recomputes"
    );
    assert!(
        report.outcome_cells(CellOutcome::Reused) > 0,
        "untouched functions stay reused"
    );
}

#[test]
fn captures_fold_into_engine_stats_and_metrics() {
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session_src("totals", PROGRAM).unwrap();
    let targets = sweep_targets(&engine, session);

    let first = capture(&engine, session, &targets);
    let second = capture(&engine, session, &targets);

    let stats = engine.stats();
    assert_eq!(stats.explain.reports, 2);
    assert_eq!(
        stats.explain.cells,
        (first.cells.len() + second.cells.len()) as u64
    );
    assert_eq!(
        stats.explain.fixes,
        (first.fixes.len() + second.fixes.len()) as u64
    );
    assert_eq!(stats.explain.work_ns, first.work_ns + second.work_ns);
    assert_eq!(stats.explain.domains, vec![("octagon".to_string(), 2)]);
    assert_eq!(
        engine.last_explain().as_ref(),
        Some(&second),
        "last_explain tracks the most recent capture"
    );

    stats.publish_metrics();
    let text = dai_trace::metrics().render_prometheus();
    assert!(
        text.contains("dai_explain_reports 2"),
        "missing gauge:\n{text}"
    );
    assert!(
        text.contains("dai_explain_eval_seconds_octagon"),
        "missing per-domain latency histogram:\n{text}"
    );
}

#[test]
fn interprocedural_engines_refuse_attribution() {
    let engine: Engine<OctagonDomain> = Engine::with_config(EngineConfig {
        workers: 1,
        resolver: ResolverChoice::Interproc {
            policy: ContextPolicy::CallString(1),
        },
        ..EngineConfig::default()
    });
    let session = engine.open_session_src("inter", PROGRAM).unwrap();
    let targets = sweep_targets(&engine, session);
    let err = engine.explain_sweep(session, &targets).unwrap_err();
    assert!(
        err.to_string().contains("intraprocedural"),
        "unexpected error: {err}"
    );
    // The refusal is structured: the session still answers queries.
    let program = engine.program_of(session).unwrap();
    let exit = program.by_name("h").unwrap().exit();
    engine.query(session, "h", exit).unwrap();
}

#[test]
fn live_report_survives_the_expl_frame_and_rejects_damage() {
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session_src("frame", PROGRAM).unwrap();
    let targets = sweep_targets(&engine, session);
    let report = capture(&engine, session, &targets);

    let frame = dai_persist::encode_explain_frame(&report);
    assert_eq!(
        dai_persist::decode_explain_frame(&frame).expect("live report decodes"),
        report
    );

    // Every truncation prefix is rejected, never misread.
    for len in 0..frame.len() {
        assert!(
            dai_persist::decode_explain_frame(&frame[..len]).is_err(),
            "truncation to {len} bytes decoded"
        );
    }
    // Every single-byte flip is rejected: the checksum covers the
    // payload, and the header fields are validated individually.
    for at in 0..frame.len() {
        let mut bad = frame.clone();
        bad[at] ^= 0xff;
        assert!(
            dai_persist::decode_explain_frame(&bad).is_err(),
            "byte flip at {at} decoded"
        );
    }
}
