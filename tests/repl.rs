//! End-to-end tests of the `dai-repl` binary: pipe command scripts through
//! stdin and check the printed analysis results, exercising the
//! query → edit → re-query loop the way an IDE integration would.

use std::io::Write;
use std::process::{Command, Stdio};

const PROGRAM: &str = r#"
function inc(x) { return x + 1; }
function main() {
    var a = 1;
    var b = inc(a);
    var i = 0;
    while (i < b) { i = i + 1; }
    return i;
}
"#;

/// Runs the REPL on `program` with `args`, feeding `script` to stdin;
/// returns (stdout, stderr).
fn run_repl(program: &str, args: &[&str], script: &str) -> (String, String) {
    let dir = std::env::temp_dir().join(format!(
        "dai-repl-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("program.js");
    std::fs::write(&path, program).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_dai_repl"))
        .args(args)
        .arg(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dai-repl");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("repl exits");
    assert!(out.status.success(), "repl failed: {out:?}");
    (
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

#[test]
fn loads_and_lists_functions() {
    let (stdout, stderr) = run_repl(PROGRAM, &[], "list\nquit\n");
    assert!(stdout.contains("loaded 2 function(s)"), "{stdout}");
    assert!(stdout.contains("main()"), "{stdout}");
    assert!(stdout.contains("loop heads"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn queries_report_interval_states() {
    let (stdout, _) = run_repl(PROGRAM, &[], "queryall main\nquit\n");
    // b = inc(1) = 2, and the loop exit refines i to [2, +inf].
    assert!(stdout.contains("b: [2, 2]"), "{stdout}");
    assert!(stdout.contains("i: [2, +inf]"), "{stdout}");
}

#[test]
fn edit_then_requery_reflects_change() {
    // Find the `a = 1` edge deterministically: it is e0 of main… rather
    // than hard-coding, relabel via the printed CFG. The CFG printer lists
    // edges as `eN: lA -[stmt]-> lB`; `a = 1` is main's first edge.
    let (cfg_out, _) = run_repl(PROGRAM, &[], "cfg main\nquit\n");
    let edge = cfg_out
        .lines()
        .find(|l| l.contains("a = 1"))
        .and_then(|l| l.split(':').next())
        .map(|s| s.trim().trim_start_matches("dai> ").to_string())
        .expect("a = 1 edge in CFG printout");
    let script = format!("relabel main {edge} a = 40\nqueryall main\nstats\nquit\n");
    let (stdout, stderr) = run_repl(PROGRAM, &[], &script);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    assert!(stdout.contains("ok"), "{stdout}");
    // a = 40 ⇒ b = 41 at the exit.
    assert!(stdout.contains("b: [41, 41]"), "{stdout}");
}

#[test]
fn splice_reports_new_structure() {
    let (cfg_out, _) = run_repl(PROGRAM, &[], "cfg main\nquit\n");
    let edge = cfg_out
        .lines()
        .find(|l| l.contains("a = 1"))
        .and_then(|l| l.split(':').next())
        .map(|s| s.trim().trim_start_matches("dai> ").to_string())
        .expect("a = 1 edge");
    let script = format!("splice main {edge} if (a > 0) {{ a = a + 1; }}\nquit\n");
    let (stdout, stderr) = run_repl(PROGRAM, &[], &script);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    assert!(stdout.contains("ok: +"), "{stdout}");
}

#[test]
fn octagon_domain_flag_works() {
    let (stdout, _) = run_repl(PROGRAM, &["--domain", "octagon"], "queryall main\nquit\n");
    // Octagons print relational constraints; at minimum the run succeeds
    // and reports non-⊥ states at the exit.
    assert!(stdout.contains("l1:"), "{stdout}");
    assert!(!stdout.contains("l1: ⊥"), "{stdout}");
}

#[test]
fn sign_domain_flag_works() {
    let (stdout, _) = run_repl(
        "function main() { var x = 5; var y = 0 - x; return y; }",
        &["--domain", "sign"],
        "queryall main\nquit\n",
    );
    assert!(stdout.contains("x: +"), "{stdout}");
    assert!(stdout.contains("y: −"), "{stdout}");
}

#[test]
fn dot_requires_a_demanded_unit_then_exports() {
    let (stdout, stderr) = run_repl(PROGRAM, &[], "dot main\nquit\n");
    // No query yet: helpful error on stderr.
    assert!(stderr.contains("query it first"), "{stdout} / {stderr}");
    let (stdout2, _) = run_repl(PROGRAM, &[], "queryall main\ndot main\nquit\n");
    assert!(stdout2.contains("digraph daig {"), "{stdout2}");
}

#[test]
fn unknown_commands_and_bad_args_are_reported() {
    let (_, stderr) = run_repl(
        PROGRAM,
        &[],
        "frobnicate\nquery main\nquery main zz9\nquit\n",
    );
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("usage: query"), "{stderr}");
    assert!(stderr.contains("bad location"), "{stderr}");
}

#[test]
fn stats_track_incremental_reuse() {
    let (cfg_out, _) = run_repl(PROGRAM, &[], "cfg main\nquit\n");
    let edge = cfg_out
        .lines()
        .find(|l| l.contains("a = 1"))
        .and_then(|l| l.split(':').next())
        .map(|s| s.trim().trim_start_matches("dai> ").to_string())
        .expect("a = 1 edge");
    let script =
        format!("queryall main\nstats\nrelabel main {edge} a = 2\nqueryall main\nstats\nquit\n");
    let (stdout, _) = run_repl(PROGRAM, &[], &script);
    // Two stats blocks; the second shows strictly more work done but also
    // memo hits (reuse across the edit).
    let hits: Vec<&str> = stdout.lines().filter(|l| l.starts_with("memo:")).collect();
    assert_eq!(hits.len(), 2, "{stdout}");
    assert!(hits[1].contains("hits"), "{stdout}");
}

#[test]
fn serve_routes_queries_through_the_engine() {
    for threads in ["1", "4"] {
        let (stdout, stderr) = run_repl(PROGRAM, &["--threads", threads], "serve\nquit\n");
        assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
        // Every location of both functions is answered...
        assert!(stdout.contains("main l1:"), "{stdout}");
        assert!(stdout.contains("inc l"), "{stdout}");
        // ...and the engine reports its configuration and work.
        assert!(
            stdout.contains(&format!("service: {threads} workers")),
            "{stdout}"
        );
        assert!(stdout.contains("memo"), "{stdout}");
    }
}

#[test]
fn serve_results_are_identical_across_thread_counts() {
    let serve_lines = |threads: &str| -> Vec<String> {
        let (stdout, _) = run_repl(PROGRAM, &["--threads", threads], "serve\nquit\n");
        stdout
            .lines()
            .filter(|l| l.contains("l") && l.contains(':') && !l.starts_with("service:"))
            .map(|l| l.trim_start_matches("dai> ").to_string())
            .filter(|l| l.starts_with("main ") || l.starts_with("inc "))
            .collect()
    };
    let one = serve_lines("1");
    assert!(!one.is_empty());
    for threads in ["2", "8"] {
        assert_eq!(serve_lines(threads), one, "threads = {threads}");
    }
}

#[test]
fn save_then_load_replays_the_edit_history() {
    let dir = std::env::temp_dir().join(format!("dai-repl-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("session.daip");
    let snap_str = snap.to_string_lossy().into_owned();
    // Find the `a = 1` edge, relabel it, save, load, and requery: the
    // loaded session must reflect the replayed edit.
    let (cfg_out, _) = run_repl(PROGRAM, &[], "cfg main\nquit\n");
    let edge = cfg_out
        .lines()
        .find(|l| l.contains("a = 1"))
        .and_then(|l| l.split(':').next())
        .map(|s| s.trim().trim_start_matches("dai> ").to_string())
        .expect("a = 1 edge");
    let script = format!(
        "relabel main {edge} a = 40\nsave {snap_str}\nload {snap_str}\nqueryall main\nquit\n"
    );
    let (stdout, stderr) = run_repl(PROGRAM, &[], &script);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    assert!(stdout.contains("saved "), "{stdout}");
    assert!(stdout.contains("1 edit(s) replayed"), "{stdout}");
    // a = 40 ⇒ b = 41 in the *restored* session.
    assert!(stdout.contains("b: [41, 41]"), "{stdout}");
}

#[test]
fn load_missing_or_garbage_file_reports_cleanly() {
    let dir = std::env::temp_dir().join(format!("dai-repl-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let garbage = dir.join("garbage.daip");
    std::fs::write(&garbage, b"this is not a snapshot").unwrap();
    let script = format!(
        "load {}\nload {}\nqueryall main\nquit\n",
        dir.join("missing.daip").to_string_lossy(),
        garbage.to_string_lossy()
    );
    let (stdout, stderr) = run_repl(PROGRAM, &[], &script);
    assert!(stderr.matches("load failed").count() == 2, "{stderr}");
    // The live session survives both failed loads.
    assert!(stdout.contains("b: [2, 2]"), "{stdout}");
}

#[test]
fn interproc_serve_matches_queryall() {
    // `serve --resolver interproc` must print the interprocedural values
    // (b = inc(1) = 2), not the intraprocedural havoc.
    let (stdout, stderr) = run_repl(PROGRAM, &["--resolver", "interproc"], "serve\nquit\n");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    assert!(stdout.contains("answers match queryall"), "{stdout}");
    let serve_states: Vec<String> = stdout
        .lines()
        .filter_map(|l| {
            l.trim_start_matches("dai> ")
                .strip_prefix("main ")
                .map(str::to_string)
        })
        .collect();
    assert!(!serve_states.is_empty(), "{stdout}");
    let (qa_out, _) = run_repl(PROGRAM, &[], "queryall main\nquit\n");
    for line in qa_out.lines().map(|l| l.trim_start_matches("dai> ")) {
        if let Some((loc, _)) = line.split_once(": ") {
            if loc.starts_with('l') {
                assert!(
                    serve_states.iter().any(|s| s == line),
                    "queryall line `{line}` missing from interproc serve:\n{stdout}"
                );
            }
        }
    }
}

#[test]
fn deadcode_reports_unreachable_branch() {
    let program = r#"
function main() {
    var x = 1;
    if (x > 0) { x = 2; } else { x = 3; }
    return x;
}
"#;
    let (stdout, _) = run_repl(program, &[], "deadcode main\nquit\n");
    // The else branch (x = 3) is infeasible under x = 1.
    assert!(stdout.contains("unreachable:"), "{stdout}");
    let (stdout2, _) = run_repl(
        "function main() { var x = 1; return x; }",
        &[],
        "deadcode main\nquit\n",
    );
    assert!(stdout2.contains("no unreachable locations"), "{stdout2}");
}

#[test]
fn listen_and_connect_answer_like_serve() {
    // One REPL process both listens (a dai-rpc server over a unix
    // socket) and connects to itself: the remote sweep must print the
    // same per-location answers as the in-process `serve`.
    let sock = std::env::temp_dir().join(format!(
        "dai-repl-listen-{}-{:?}.sock",
        std::process::id(),
        std::thread::current().id()
    ));
    let script = format!(
        "listen unix:{sock}\nconnect unix:{sock}\nserve\nquit\n",
        sock = sock.display()
    );
    let (stdout, stderr) = run_repl(PROGRAM, &[], &script);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    assert!(stdout.contains("listening on unix:"), "{stdout}");
    assert!(stdout.contains("connected to unix:"), "{stdout}");
    // Both sweeps print the same answer lines; the remote one appears
    // first (connect precedes serve in the script).
    let answers: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("main l") || l.starts_with("inc l"))
        .collect();
    assert!(!answers.is_empty(), "{stdout}");
    assert_eq!(answers.len() % 2, 0, "two sweeps: {stdout}");
    let (remote, local) = answers.split_at(answers.len() / 2);
    assert_eq!(remote, local, "socket sweep differs from serve: {stdout}");
    // Two service summaries: one from the remote engine, one in-process.
    assert_eq!(
        stdout.lines().filter(|l| l.starts_with("service:")).count(),
        2,
        "{stdout}"
    );
    let _ = std::fs::remove_file(&sock);
}

#[test]
fn connect_to_a_dead_address_fails_cleanly() {
    let (stdout, stderr) = run_repl(
        PROGRAM,
        &[],
        "connect unix:/nonexistent/dai-test.sock\nquit\n",
    );
    assert!(stderr.contains("connect failed"), "{stderr}");
    assert!(!stdout.contains("connected"), "{stdout}");
}

#[test]
fn stats_json_emits_the_locked_schema() {
    // Before any engine runs there is nothing to report — error, not {}.
    let (stdout, stderr) = run_repl(PROGRAM, &[], "stats --json\nquit\n");
    assert!(stderr.contains("no engine stats yet"), "{stderr}");
    assert!(!stdout.contains("{\"workers\""), "{stdout}");

    // After `serve` and an `explain` (whose engine stats replace the
    // serve's, carrying real attribution totals), one line of JSON with
    // the exact field order below. This is the machine-readable
    // contract: replacing every integer run with N must reproduce the
    // template verbatim, so adding, removing, renaming, or reordering a
    // field fails this test. The domain tag is alphabetic, so the
    // per-domain report count stays literal in the shape.
    let (stdout, stderr) = run_repl(
        PROGRAM,
        &["--threads", "2"],
        "serve\nexplain main\nstats --json\nquit\n",
    );
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    let json = stdout
        .lines()
        .map(|l| l.trim_start_matches("dai> "))
        .find(|l| l.starts_with("{\"workers\""))
        .unwrap_or_else(|| panic!("no stats --json line in {stdout}"));
    let shape: String = {
        let mut out = String::new();
        let mut in_digits = false;
        for c in json.chars() {
            if c.is_ascii_digit() {
                if !in_digits {
                    out.push('N');
                }
                in_digits = true;
            } else {
                in_digits = false;
                out.push(c);
            }
        }
        out
    };
    assert_eq!(
        shape,
        "{\"workers\":N,\"sessions\":N,\"queries\":N,\"edits\":N,\
         \"snapshots\":N,\"saves\":N,\"loads\":N,\"session_locks\":N,\
         \"batch\":{\"batches\":N,\"coalesced_queries\":N,\
         \"singleton_queries\":N,\"union_cone_cells\":N,\
         \"union_cone_walks\":N},\
         \"query_stats\":{\"computed\":N,\"memo_matched\":N,\
         \"reused\":N,\"unrolls\":N,\"fix_converged\":N,\
         \"cone_walks\":N,\"cone_cells\":N,\
         \"transfers_compiled\":N,\"transfers_interp\":N},\
         \"explain\":{\"reports\":N,\"cells\":N,\"fixes\":N,\
         \"work_ns\":N,\"span_ns\":N,\"computed_ns\":N,\
         \"memo_matched_ns\":N,\"fix_ns\":N,\
         \"domains\":{\"interval\":N}},\
         \"memo\":{\"hits\":N,\"misses\":N,\"insertions\":N,\
         \"evictions\":N},\
         \"replication\":{\"journal_attached\":false,\
         \"journal_last_seq\":N,\"journal_frames\":N,\
         \"applied_seq\":N,\"applied_frames\":N}}",
        "stats --json schema drifted: {json}"
    );
    // Sanity on the values themselves: 2 workers served a real sweep,
    // and the explain run left real attribution totals.
    assert!(json.contains("\"workers\":2"), "{json}");
    assert!(!json.contains("\"queries\":0,"), "{json}");
    assert!(json.contains("\"explain\":{\"reports\":1,"), "{json}");
    assert!(json.contains("\"domains\":{\"interval\":1}"), "{json}");
}

#[test]
fn explain_command_attributes_cost_and_reports_json() {
    let script = "explain main\nexplain --json\nexplain nosuch\nexplain main zz9\nquit\n";
    let (stdout, stderr) = run_repl(PROGRAM, &["--threads", "2"], script);
    assert!(stderr.contains("no function `nosuch`"), "{stderr}");
    assert!(stderr.contains("bad location"), "{stderr}");
    // The rendered block: header, work/span split, lock accounting,
    // hottest-cell table, and the fixpoint line (main has a loop).
    assert!(stdout.contains("explain: domain interval"), "{stdout}");
    assert!(stdout.contains("parallelism"), "{stdout}");
    assert!(stdout.contains("lock wait"), "{stdout}");
    assert!(stdout.contains("hottest cells:"), "{stdout}");
    assert!(stdout.contains("  fix "), "{stdout}");
    // `explain --json` emits one line of report JSON.
    let json = stdout
        .lines()
        .map(|l| l.trim_start_matches("dai> "))
        .find(|l| l.starts_with("{\"domain\""))
        .unwrap_or_else(|| panic!("no explain --json line in {stdout}"));
    assert!(json.contains("\"transfer\":"), "{json}");
    assert!(json.contains("\"parallelism\":"), "{json}");
    assert!(json.contains("\"hottest\":["), "{json}");
    assert!(json.ends_with("]}"), "{json}");
    // Attribution needs the instrumented intraprocedural scheduler; the
    // interprocedural resolver refuses in a structured way.
    let (_, stderr) = run_repl(
        PROGRAM,
        &["--resolver", "interproc"],
        "explain main\nquit\n",
    );
    assert!(stderr.contains("intraprocedural"), "{stderr}");
}

#[test]
fn trace_commands_dump_and_expose_metrics() {
    let dir = std::env::temp_dir().join(format!(
        "dai-repl-trace-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("trace.json");
    let bin_path = dir.join("trace.trc");
    let script = format!(
        "trace on\nserve\ntrace dump {}\ntrace on\nserve\ntrace dump {}\ntrace metrics\nquit\n",
        json_path.display(),
        bin_path.display()
    );
    let (stdout, stderr) = run_repl(PROGRAM, &["--threads", "2"], &script);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    assert!(stdout.contains("tracing enabled (local)"), "{stdout}");
    assert!(
        stdout.contains("chrome trace_event JSON"),
        "dump format line missing: {stdout}"
    );
    assert!(stdout.contains("binary trace frame"), "{stdout}");
    // The Chrome export re-parses, and the binary one decodes. Under the
    // probes-compiled default build both carry the serve's records.
    let json = std::fs::read_to_string(&json_path).unwrap();
    let summary = dai_trace::validate_chrome_trace(&json).expect("dumped chrome trace re-parses");
    let bin = std::fs::read(&bin_path).unwrap();
    let dump = dai_persist::decode_trace_frame(&bin).expect("dumped binary frame decodes");
    if dai_trace::TraceConfig::probes_compiled() {
        assert!(summary.total > 0, "empty chrome trace: {json}");
        assert!(!dump.records.is_empty(), "empty binary dump");
        assert!(
            dump.labels.iter().any(|l| l == "engine.session_lock"),
            "{:?}",
            dump.labels
        );
    }
    // `trace metrics` renders Prometheus text exposition on stdout.
    assert!(
        stdout.contains("# TYPE dai_engine_queries gauge"),
        "{stdout}"
    );
    assert!(
        stdout.contains("dai_engine_batch_serve_seconds_count"),
        "{stdout}"
    );
}

#[test]
fn remote_trace_commands_address_the_connected_server() {
    let sock = std::env::temp_dir().join(format!(
        "dai-repl-trace-remote-{}-{:?}.sock",
        std::process::id(),
        std::thread::current().id()
    ));
    let dir = std::env::temp_dir().join(format!(
        "dai-repl-trace-remote-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("remote.json");
    // `connect` retains the client, so every later trace command goes
    // over the wire (the REPL prints the `(remote)` side marker).
    let script = format!(
        "listen unix:{sock}\ntrace on\nconnect unix:{sock}\ntrace on\nserve\n\
         trace dump {dump}\ntrace metrics\ntrace off\nquit\n",
        sock = sock.display(),
        dump = dump_path.display()
    );
    let (stdout, stderr) = run_repl(PROGRAM, &[], &script);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    // Before connect: local; after: remote.
    assert!(stdout.contains("tracing enabled (local)"), "{stdout}");
    assert!(stdout.contains("tracing enabled (remote)"), "{stdout}");
    assert!(stdout.contains("tracing disabled (remote)"), "{stdout}");
    assert!(
        stdout.contains("# TYPE dai_engine_queries gauge"),
        "{stdout}"
    );
    let json = std::fs::read_to_string(&dump_path).unwrap();
    dai_trace::validate_chrome_trace(&json).expect("remote dump re-parses");
    let _ = std::fs::remove_file(&sock);
}

#[test]
fn shape_domain_flag_works() {
    let program = r#"
function main() {
    var p = null;
    var i = 0;
    while (i < 3) { var n = new Node(); n.next = p; p = n; i = i + 1; }
    return p;
}
"#;
    let (stdout, _) = run_repl(program, &["--domain", "shape"], "queryall main\nquit\n");
    // Shape states print separation-logic formulas.
    assert!(stdout.contains("l1:"), "{stdout}");
    assert!(!stdout.contains("l1: ⊥"), "{stdout}");
}
