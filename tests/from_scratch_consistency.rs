//! Theorem 6.1 (From-Scratch Consistency), as an executable property:
//! after an arbitrary interleaving of program edits and demand queries,
//! every query answer equals the result a *from-scratch batch* abstract
//! interpretation of the current program computes at that location.
//!
//! Two independent oracles are used:
//! * the Bourdoncle-style reference engine in `dai_core::batch`
//!   (a structurally different implementation of the same operator
//!   schedule), and
//! * a freshly constructed DAIG evaluated from scratch.

use dai_bench::workload::Workload;
use dai_core::analysis::FuncAnalysis;
use dai_core::batch::batch_analyze;
use dai_core::driver::{Config, Driver, ProgramEdit};
use dai_core::interproc::ContextPolicy;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain, ShapeDomain};
use dai_lang::cfg::{lower_program, Cfg};
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;

/// Grows a single-function analysis by random (call-free) splices,
/// interleaving queries, then checks every location against both oracles.
fn check_intraprocedural<D: AbstractDomain>(phi0: D, seed: u64, edits: usize) {
    let cfg = lower_program(&parse_program("function main() { var x0 = 0; return x0; }").unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    let mut gen = Workload::new(seed);
    let mut fa = FuncAnalysis::new(cfg, phi0.clone());
    let mut memo = MemoTable::new();
    for step in 0..edits {
        let edges: Vec<_> = fa.cfg().edges().map(|e| e.id).collect();
        let edge = edges[gen.pick_index(edges.len())];
        let block = gen.random_block_no_calls();
        fa.splice(edge, &block)
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
        // Interleave a query at a random location.
        let locs = fa.cfg().locs();
        let loc = locs[gen.pick_index(locs.len())];
        let mut stats = QueryStats::default();
        fa.query_loc(&mut memo, loc, &mut IntraResolver, &mut stats)
            .unwrap_or_else(|e| panic!("seed {seed} step {step} query: {e}"));
    }
    assert_all_locations_consistent(&mut fa, &mut memo, phi0, seed);
}

fn assert_all_locations_consistent<D: AbstractDomain>(
    fa: &mut FuncAnalysis<D>,
    memo: &mut MemoTable<dai_core::Value<D>>,
    phi0: D,
    seed: u64,
) {
    let cfg: Cfg = fa.cfg().clone();
    // Oracle 1: the independent batch engine.
    let batch = batch_analyze(&cfg, phi0.clone(), &mut IntraResolver).unwrap();
    // Oracle 2: a fresh DAIG evaluated from scratch with a fresh memo.
    let mut fresh = FuncAnalysis::new(cfg.clone(), phi0);
    let mut fresh_memo = MemoTable::new();
    for loc in cfg.locs() {
        let mut stats = QueryStats::default();
        let incremental = fa
            .query_loc(memo, loc, &mut IntraResolver, &mut stats)
            .unwrap_or_else(|e| panic!("seed {seed}: query {loc}: {e}"));
        let expected = &batch[&loc];
        assert_eq!(
            &incremental, expected,
            "seed {seed}: DAIG result at {loc} differs from batch oracle"
        );
        let from_scratch = fresh
            .query_loc(&mut fresh_memo, loc, &mut IntraResolver, &mut stats)
            .unwrap();
        assert_eq!(
            incremental, from_scratch,
            "seed {seed}: incremental result at {loc} differs from fresh DAIG"
        );
    }
}

#[test]
fn interval_from_scratch_consistency_over_random_edits() {
    for seed in 0..12 {
        check_intraprocedural(IntervalDomain::top(), 1000 + seed, 25);
    }
}

#[test]
fn octagon_from_scratch_consistency_over_random_edits() {
    for seed in 0..8 {
        check_intraprocedural(OctagonDomain::top(), 2000 + seed, 18);
    }
}

#[test]
fn shape_from_scratch_consistency_on_list_programs() {
    // The random generator does not produce list programs; check the list
    // suite explicitly, with edits.
    let program = lower_program(&parse_program(dai_bench::lists::LISTS_SRC).unwrap()).unwrap();
    for name in ["append", "foreach", "indexof", "tail"] {
        let cfg = program.by_name(name).unwrap().clone();
        let params: Vec<&str> = cfg.params().iter().map(|p| p.as_str()).collect();
        let phi0 = ShapeDomain::with_lists(&params);
        let mut fa = FuncAnalysis::new(cfg.clone(), phi0.clone());
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        // Query, edit (insert a skip-ish statement), re-query, compare.
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        let edge = cfg.edges().next().unwrap().id;
        fa.splice(edge, &dai_lang::parser::parse_block("print(0);").unwrap())
            .unwrap();
        assert_all_locations_consistent(&mut fa, &mut memo, phi0, 0xAAAA);
    }
}

#[test]
fn driver_configs_agree_on_workload_streams() {
    // All four configurations answer the same queries identically at every
    // step of an interprocedural workload (octagon, context-insensitive).
    for seed in [7u64, 21u64] {
        let mut drivers: Vec<Driver<OctagonDomain>> = Config::ALL
            .iter()
            .map(|&c| {
                Driver::new(
                    c,
                    Workload::initial_program(),
                    ContextPolicy::Insensitive,
                    "main",
                    OctagonDomain::top(),
                )
            })
            .collect();
        let mut gens: Vec<Workload> = (0..4).map(|_| Workload::new(seed)).collect();
        for step in 0..25 {
            let mut answers: Vec<Vec<OctagonDomain>> = Vec::new();
            for (driver, gen) in drivers.iter_mut().zip(&mut gens) {
                let edit: ProgramEdit = gen.next_edit(driver.analyzer().program());
                driver.apply_edit(&edit).unwrap();
                let queries = gen.next_queries(driver.analyzer().program(), 3);
                let mut results = Vec::new();
                for (f, loc) in queries {
                    results.push(driver.query(f.as_str(), loc).unwrap());
                }
                answers.push(results);
            }
            for other in &answers[1..] {
                assert_eq!(
                    *other, answers[0],
                    "seed {seed} step {step}: configurations disagree"
                );
            }
        }
    }
}
