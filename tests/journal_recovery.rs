//! Crash-injection sweep over the append-only journal (`dai-journal`):
//! however the journal file is damaged, `Engine::open_journal` must
//! recover — without panicking — to a state that IS some prefix of the
//! recorded history, and that state must answer exactly like the
//! sequential batch oracle (`dai_core::batch`, Theorem 6.1) on the
//! prefix's program. A torn tail costs recency, never soundness: every
//! journal prefix is a program state the engine actually passed
//! through.
//!
//! * **every-prefix truncation** — for each byte length `0..=len`, the
//!   file cut there recovers to the longest clean frame prefix and the
//!   recovered session's full sweep matches the batch oracle;
//! * **every-byte flip** — each single corrupted byte is caught by the
//!   frame checksums (or the frame headers), truncating from the
//!   damaged frame on, and the surviving prefix again matches the
//!   oracle;
//! * **compaction equivalence** — under proptest, a journal that was
//!   compacted mid-history (snapshot frames + edit tail) recovers to
//!   the same answers as the full uncompacted history.

use dai_bench::workload::Workload;
use dai_core::batch::batch_analyze;
use dai_core::driver::ProgramEdit;
use dai_core::query::IntraResolver;
use dai_domains::{AbstractDomain, IntervalDomain};
use dai_engine::{Engine, JournalConfig, Service, SessionId};
use dai_lang::Loc;
use proptest::prelude::*;
use std::collections::HashMap;

/// A unique scratch path for journal files.
fn scratch(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "dai-journal-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
        .to_string_lossy()
        .into_owned()
}

/// Records a history — one source-backed open plus `grow` Fig. 10
/// workload edits — into a fresh journal at `path`, returning the edit
/// script (the journal on disk is the artifact under test).
fn record_history(path: &str, grow: usize, seed: u64) -> Vec<ProgramEdit> {
    let _ = std::fs::remove_file(path);
    let engine: Engine<IntervalDomain> = Engine::new(1);
    engine
        .open_journal(path, JournalConfig::default())
        .expect("fresh journal opens");
    let session = engine
        .open_session_src("crash", &Workload::initial_source())
        .unwrap();
    let mut gen = Workload::new(seed);
    let mut edits = Vec::new();
    for _ in 0..grow {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        Service::<IntervalDomain>::edit(&engine, session, &edit).unwrap();
        edits.push(edit);
    }
    edits
}

/// Sorted sweep targets plus the batch-oracle answer at each.
type Oracle = (Vec<(String, Loc)>, Vec<IntervalDomain>);

/// The expected state after `k` replayed journal entries (entry 1 is
/// the open, entries 2..=k the first `k - 1` edits): the sorted sweep
/// targets of that prefix's program plus the batch-oracle answer at
/// each. `k == 0` means no session at all.
fn oracle_for(k: usize, edits: &[ProgramEdit]) -> Oracle {
    assert!(k >= 1, "oracle_for needs at least the open entry");
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let session = engine
        .open_session_src("oracle", &Workload::initial_source())
        .unwrap();
    for edit in &edits[..k - 1] {
        Service::<IntervalDomain>::edit(&engine, session, edit).unwrap();
    }
    let program = engine.program_of(session).unwrap();
    let mut targets = Vec::new();
    let mut answers = Vec::new();
    let mut per_cfg = Vec::new();
    for cfg in program.cfgs() {
        let oracle = batch_analyze(
            cfg,
            IntervalDomain::entry_default(cfg.params()),
            &mut IntraResolver,
        )
        .unwrap_or_else(|e| panic!("prefix {k}: batch oracle: {e}"));
        per_cfg.push((cfg.name().to_string(), cfg.locs(), oracle));
    }
    per_cfg.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, locs, oracle) in per_cfg {
        for loc in locs {
            targets.push((name.clone(), loc));
            answers.push(oracle[&loc].clone());
        }
    }
    (targets, answers)
}

/// Recovers a fresh engine from the journal bytes in `file`, asserts
/// the replayed prefix answers like its batch oracle, and returns how
/// many entries survived. `oracles` caches per-prefix references.
fn assert_recovered_matches_oracle(
    file: &str,
    edits: &[ProgramEdit],
    oracles: &mut HashMap<usize, Oracle>,
    label: &str,
) -> usize {
    let engine: Engine<IntervalDomain> = Engine::new(1);
    let recovery = engine
        .open_journal(file, JournalConfig::default())
        .unwrap_or_else(|e| panic!("{label}: recovery must not fail: {e}"));
    let k = recovery.entries_replayed;
    assert!(k <= 1 + edits.len(), "{label}: impossible prefix {k}");
    if k == 0 {
        // Nothing survived: the engine must be empty, not wrong.
        assert!(
            engine.program_of(SessionId(1)).is_err(),
            "{label}: zero entries replayed but a session exists"
        );
        return 0;
    }
    let (targets, expected) = oracles
        .entry(k)
        .or_insert_with(|| oracle_for(k, edits))
        .clone();
    // Journal replay installs the recovered session first: id 1.
    let got: Vec<IntervalDomain> = engine
        .query_sweep(SessionId(1), &targets)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{label}: sweep failed: {e}")))
        .collect();
    assert_eq!(
        got, expected,
        "{label}: recovered prefix of {k} entries disagrees with the batch oracle"
    );
    k
}

#[test]
fn every_truncation_prefix_recovers_to_an_oracle_consistent_state() {
    let journal = scratch("prefix");
    let edits = record_history(&journal, 5, 379422);
    let bytes = std::fs::read(&journal).unwrap();
    let total = 1 + edits.len();
    let mut oracles = HashMap::new();
    let cut_file = scratch("prefix-cut");
    let mut deepest = 0;
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_file, &bytes[..cut]).unwrap();
        let k = assert_recovered_matches_oracle(
            &cut_file,
            &edits,
            &mut oracles,
            &format!("cut at {cut}"),
        );
        deepest = deepest.max(k);
    }
    assert_eq!(deepest, total, "the uncut file must replay everything");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&cut_file);
}

#[test]
fn every_single_byte_flip_recovers_to_an_oracle_consistent_state() {
    let journal = scratch("flip");
    let edits = record_history(&journal, 4, 911);
    let bytes = std::fs::read(&journal).unwrap();
    let total = 1 + edits.len();
    let mut oracles = HashMap::new();
    let flip_file = scratch("flip-cut");
    let mut shallowest = usize::MAX;
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0xFF;
        let k = assert_recovered_matches_oracle(
            flip_file_write(&flip_file, &flipped),
            &edits,
            &mut oracles,
            &format!("flip at {i}"),
        );
        // A flip damages the frame it lands in, so the surviving prefix
        // is always strictly shorter than the whole history.
        assert!(
            k < total,
            "flip at {i}: a corrupted journal replayed all {total} entries"
        );
        shallowest = shallowest.min(k);
    }
    // Flips in the very first frame wipe the whole history.
    assert_eq!(shallowest, 0, "no flip ever landed in the first frame?");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&flip_file);
}

fn flip_file_write<'a>(path: &'a str, bytes: &[u8]) -> &'a str {
    std::fs::write(path, bytes).unwrap();
    path
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Compacting mid-history (snapshot frames replacing the prefix,
    /// later edits riding as the tail) changes the journal's bytes but
    /// not the state it recovers: snapshot + tail ≡ full history.
    #[test]
    fn compacted_journal_recovers_identically_to_full_history(seed in 0u64..100_000) {
        let grow = 3 + (seed as usize % 4);
        let compact_at = 1 + (seed as usize % grow.max(1));

        // Full history, no compaction: the reference journal.
        let full = scratch("proptest-full");
        let edits = record_history(&full, grow, seed);

        // Same history, force-compacted after `compact_at` edits.
        let compacted = scratch("proptest-compacted");
        let _ = std::fs::remove_file(&compacted);
        {
            let engine: Engine<IntervalDomain> = Engine::new(1);
            engine.open_journal(&compacted, JournalConfig::default()).unwrap();
            let session = engine
                .open_session_src("crash", &Workload::initial_source())
                .unwrap();
            for (i, edit) in edits.iter().enumerate() {
                Service::<IntervalDomain>::edit(&engine, session, edit).unwrap();
                if i + 1 == compact_at {
                    prop_assert!(engine.compact_journal(true).unwrap());
                }
            }
        }

        // Both recover; the compacted file holds strictly fewer frames
        // when any tail edits followed the compaction, yet both sweeps
        // agree with the full history's oracle.
        let mut oracles = HashMap::new();
        let k_full = assert_recovered_matches_oracle(&full, &edits, &mut oracles, "full");
        prop_assert_eq!(k_full, 1 + edits.len());

        let (targets, expected) = oracles[&k_full].clone();
        let engine: Engine<IntervalDomain> = Engine::new(1);
        let recovery = engine.open_journal(&compacted, JournalConfig::default()).unwrap();
        prop_assert_eq!(recovery.damaged_len, 0);
        prop_assert!(recovery.entries_replayed <= k_full);
        let got: Vec<IntervalDomain> = engine
            .query_sweep(SessionId(1), &targets)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(
            got, expected,
            "snapshot + tail recovered differently from the full history"
        );

        let _ = std::fs::remove_file(&full);
        let _ = std::fs::remove_file(&compacted);
    }
}
