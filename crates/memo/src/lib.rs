//! # dai-memo — the auxiliary memoization table `M`
//!
//! The DAIG operational semantics (paper Fig. 8) thread an auxiliary memo
//! table `M` mapping names of the form `f·(v₁⋯v_k)` — a function symbol
//! paired with the (hashes of the) argument values — to previously computed
//! results. `Q-Match` reuses an entry when the same function has already
//! been applied to the same inputs *anywhere* in the program, independent
//! of program location; `Q-Miss` computes and records a new entry.
//!
//! The paper's prototype obtains this table from `adapton.ocaml`; the
//! semantics only require a sound finite map, so this crate provides
//! exactly that:
//!
//! * [`MemoKey`] — a 128-bit content hash of `f·(v₁⋯v_k)`, built with
//!   [`KeyBuilder`]. The paper's names are "hashes, essentially" (§2.1);
//!   we make that literal.
//! * [`MemoTable`] — the map itself, with hit/miss/eviction statistics and
//!   an optional capacity bound. Dropping entries is always sound
//!   (paper §2.2: "it is sound to drop cached results from the DAIG and/or
//!   memo table"), so eviction uses a cheap two-generation scheme.
//! * [`MemoStore`] — the lookup/record interface DAIG evaluation is
//!   written against, so single-threaded tables and the concurrent one
//!   are interchangeable.
//! * [`SharedMemoTable`] — a sharded, thread-safe table (per-shard locks,
//!   global hit/miss/eviction counters) shared across analysis sessions
//!   by `dai-engine`'s worker pool. Sharing is sound for the same reason
//!   dropping is: entries are keyed by content hashes of their inputs, so
//!   any entry another session wrote is one this session could have
//!   computed itself.
//!
//! ## Throughput notes
//!
//! Key construction is on the analysis hot path — every `Q-Match` lookup
//! hashes the function's inputs — so the builder is engineered to do no
//! redundant work: [`KeyBuilder::finish`] consumes the builder and
//! finalizes its two hash streams in place (no hasher cloning), and
//! [`KeyBuilder::push_digest`] feeds a **pre-computed** [`content_digest`]
//! (16 bytes) instead of re-hashing a full value. `dai-core` caches a
//! digest per filled DAIG cell at write time, which turns the per-lookup
//! cost for large abstract states (octagon matrices, shape graphs) from
//! O(|state|) into O(1); on the Fig. 10 octagon workload this is a large
//! fraction of the end-to-end query cost (see `BENCH_daig.json`).
//!
//! ```
//! use dai_memo::{KeyBuilder, MemoTable};
//!
//! let mut m: MemoTable<i64> = MemoTable::new();
//! let key = KeyBuilder::new("transfer").push(&"x = x + 1").push(&41).finish();
//! assert!(m.get(key).is_none());
//! m.insert(key, 42);
//! assert_eq!(m.get(key), Some(&42));
//! assert_eq!(m.stats().hits, 1);
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fast, non-cryptographic hasher (the rustc-hash / FxHash algorithm)
/// for *map-internal* use, where a collision costs a probe rather than a
/// wrong answer. [`MemoKey`] identity and [`content_digest`]s stay on the
/// two-stream SipHash construction; this type exists so hot id- and
/// name-keyed tables (the DAIG interner, the memo shards) do not pay
/// SipHash per lookup.
#[derive(Debug, Default, Clone)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_ne_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuild = BuildHasherDefault<FxHasher64>;

/// Pass-through hasher for keys that are already uniform hashes
/// ([`MemoKey`]): uses the key's low 64 bits directly instead of
/// re-hashing 16 bytes through SipHash on every table operation.
#[derive(Debug, Default, Clone)]
pub struct PrehashedKeyHasher {
    hash: u64,
}

impl Hasher for PrehashedKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (not used by MemoKey's u128 hash, but kept total).
        for &b in bytes {
            self.hash = self.hash.rotate_left(8) ^ b as u64;
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // u128::hash writes the value as two u64s (or one u128 write
        // depending on platform); fold everything in.
        self.hash ^= n;
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.hash ^= (n >> 64) as u64 ^ n as u64;
    }
}

/// `BuildHasher` for [`PrehashedKeyHasher`].
pub type PrehashedBuild = BuildHasherDefault<PrehashedKeyHasher>;

/// A 128-bit content hash identifying a memoized application `f·(v₁⋯v_k)`.
///
/// Two independently seeded 64-bit SipHash streams are concatenated; keys
/// are equal only if both streams agree, making accidental collisions
/// vanishingly unlikely at analysis scales (billions of entries would be
/// needed for a 2⁻⁶⁴ birthday bound to matter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemoKey(pub u128);

impl fmt::Display for MemoKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A 128-bit-output hasher pairing one SipHash stream (collision
/// resistance) with one FxHash stream (independence), fed by a **single**
/// traversal of the value — `Hash::hash` walks the structure once, not
/// once per stream. A [`MemoKey`] collision requires both streams to
/// collide simultaneously, which for non-adversarial analysis values is
/// as unlikely as the previous dual-SipHash construction in practice,
/// at roughly half the hashing cost.
#[derive(Debug, Clone)]
struct TwinHasher {
    sip: DefaultHasher,
    fx: FxHasher64,
}

impl TwinHasher {
    fn seeded(seed: u64) -> TwinHasher {
        let mut t = TwinHasher {
            sip: DefaultHasher::new(),
            fx: FxHasher64::default(),
        };
        seed.hash(&mut t);
        t
    }

    fn finish128(&self) -> u128 {
        ((self.sip.finish() as u128) << 64) | self.fx.finish() as u128
    }
}

impl Hasher for TwinHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.sip.finish() ^ self.fx.finish()
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.sip.write(bytes);
        self.fx.write(bytes);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.sip.write_u8(n);
        self.fx.write_u8(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.sip.write_u32(n);
        self.fx.write_u32(n);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.sip.write_u64(n);
        self.fx.write_u64(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.sip.write_usize(n);
        self.fx.write_usize(n);
    }
}

/// Incrementally hashes a function symbol and its argument values into a
/// [`MemoKey`].
///
/// The builder is order-sensitive: `push(a).push(b)` and `push(b).push(a)`
/// produce different keys, as required for non-commutative functions like
/// widening.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    h: TwinHasher,
}

impl KeyBuilder {
    /// Starts a key for an application of the function named `func`.
    pub fn new(func: &str) -> KeyBuilder {
        let mut h = TwinHasher::seeded(0xD41A_1E57);
        func.hash(&mut h);
        KeyBuilder { h }
    }

    /// Feeds one argument value into the key.
    pub fn push<T: Hash + ?Sized>(mut self, value: &T) -> KeyBuilder {
        value.hash(&mut self.h);
        self
    }

    /// Feeds a pre-computed [`content_digest`] into the key — 16 bytes of
    /// hashing regardless of how large the digested value was.
    pub fn push_digest(mut self, digest: u128) -> KeyBuilder {
        digest.hash(&mut self.h);
        self
    }

    /// Finalizes the key, consuming the builder (the hashers are finished
    /// in place — no clones).
    pub fn finish(self) -> MemoKey {
        MemoKey(self.h.finish128())
    }
}

/// The 128-bit content hash of a single value, using the same
/// twin-stream construction as [`MemoKey`]s (differently seeded, so a
/// digest is never confused with a one-argument key).
///
/// Computed once per produced value (e.g. when a DAIG cell is written) and
/// thereafter fed to [`KeyBuilder::push_digest`], this amortizes the cost
/// of hashing large values across every memo lookup that reads them.
pub fn content_digest<T: Hash + ?Sized>(value: &T) -> u128 {
    let mut h = TwinHasher::seeded(0xD16E_57A7);
    value.hash(&mut h);
    h.finish128()
}

/// Hit/miss/eviction counters for a [`MemoTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that found an entry (`Q-Match`).
    pub hits: u64,
    /// Lookups that found nothing (`Q-Miss`).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries dropped by capacity rotation.
    pub evictions: u64,
}

impl MemoStats {
    /// `hits / (hits + misses)`, or 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The auxiliary memo table `M` of the DAIG semantics.
///
/// When constructed with a capacity bound, the table keeps at most roughly
/// `capacity` entries using two generations: lookups promote entries from
/// the old generation into the current one, and filling the current
/// generation retires the old one wholesale. Recently used entries
/// therefore survive; stale ones age out in O(1) amortized time.
#[derive(Debug, Clone)]
pub struct MemoTable<V> {
    current: HashMap<MemoKey, V, PrehashedBuild>,
    previous: HashMap<MemoKey, V, PrehashedBuild>,
    capacity: Option<usize>,
    stats: MemoStats,
}

impl<V> Default for MemoTable<V> {
    fn default() -> Self {
        MemoTable::new()
    }
}

impl<V> MemoTable<V> {
    /// Creates an unbounded table.
    pub fn new() -> MemoTable<V> {
        MemoTable {
            current: HashMap::default(),
            previous: HashMap::default(),
            capacity: None,
            stats: MemoStats::default(),
        }
    }

    /// Creates a table that keeps roughly `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity_limit(capacity: usize) -> MemoTable<V> {
        assert!(capacity > 0, "memo table capacity must be positive");
        MemoTable {
            capacity: Some(capacity),
            ..MemoTable::new()
        }
    }

    /// Looks up `key`, recording a hit or miss.
    pub fn get(&mut self, key: MemoKey) -> Option<&V> {
        // Promote from the previous generation on hit so hot entries
        // survive rotations.
        if !self.current.contains_key(&key) {
            if let Some(v) = self.previous.remove(&key) {
                self.current.insert(key, v);
            }
        }
        match self.current.get(&key) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks for `key` without touching statistics or generations.
    pub fn contains(&self, key: MemoKey) -> bool {
        self.current.contains_key(&key) || self.previous.contains_key(&key)
    }

    /// Inserts an entry, rotating generations if over capacity.
    pub fn insert(&mut self, key: MemoKey, value: V) {
        self.stats.insertions += 1;
        self.current.insert(key, value);
        if let Some(cap) = self.capacity {
            let half = cap.div_ceil(2);
            if self.current.len() >= half {
                self.stats.evictions += self.previous.len() as u64;
                self.previous = std::mem::take(&mut self.current);
            }
        }
    }

    /// Number of live entries (both generations).
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (sound: see crate docs), keeping statistics.
    pub fn clear(&mut self) {
        self.current.clear();
        self.previous.clear();
    }

    /// Iterates every live entry (both generations), in no particular
    /// order and without touching statistics or generations (persistence
    /// export). A key present in both generations (inserted again after
    /// aging into `previous`) is yielded once, with its current value —
    /// exporters must see each key exactly as a lookup would.
    pub fn entries(&self) -> impl Iterator<Item = (MemoKey, &V)> {
        self.current
            .iter()
            .chain(
                self.previous
                    .iter()
                    .filter(|(k, _)| !self.current.contains_key(k)),
            )
            .map(|(k, v)| (*k, v))
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Resets statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = MemoStats::default();
    }
}

/// The lookup/record interface the DAIG query semantics thread `M`
/// through. Writing evaluation against this trait (rather than
/// [`MemoTable`] concretely) lets a scheduler substitute the concurrent
/// [`SharedMemoTable`] without touching the semantics: both report
/// `Q-Match`-able entries and both accept `Q-Miss` recordings.
///
/// `fetch` returns an owned value because a shared table cannot hand out
/// references across its shard locks; evaluation cloned every memo hit
/// anyway (the value is written into a DAIG cell).
pub trait MemoStore<V: Clone> {
    /// Looks up `key`, recording a hit or miss in the statistics.
    fn fetch(&mut self, key: MemoKey) -> Option<V>;
    /// Records a computed entry for `key`.
    fn record(&mut self, key: MemoKey, value: V);
}

impl<V: Clone> MemoStore<V> for MemoTable<V> {
    fn fetch(&mut self, key: MemoKey) -> Option<V> {
        self.get(key).cloned()
    }

    fn record(&mut self, key: MemoKey, value: V) {
        self.insert(key, value);
    }
}

/// A sharded, thread-safe memo table: `Q-Match`/`Q-Miss` traffic from many
/// concurrent sessions lands on per-shard [`MemoTable`]s behind their own
/// locks, while hit/miss/insertion/eviction totals are kept in global
/// atomic counters so [`SharedMemoTable::stats`] never has to stop the
/// world.
///
/// Cloning is shallow (an [`Arc`] bump): clones share the same shards and
/// counters, which is how `dai-engine` hands one table to every worker and
/// session.
#[derive(Debug, Clone)]
pub struct SharedMemoTable<V> {
    inner: Arc<SharedInner<V>>,
}

#[derive(Debug)]
struct SharedInner<V> {
    /// Power-of-two shard array; a key's shard is chosen by its mixed
    /// high/low hash bits.
    shards: Vec<Mutex<MemoTable<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<V> SharedMemoTable<V> {
    /// Default shard count: enough to keep a handful of workers from
    /// contending, small enough that per-shard tables stay dense.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates an unbounded table with `shards` shards (rounded up to a
    /// power of two, minimum 1).
    pub fn new(shards: usize) -> SharedMemoTable<V> {
        Self::build(shards, None)
    }

    /// Creates a table keeping roughly `capacity` entries in total,
    /// spread over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity_limit(shards: usize, capacity: usize) -> SharedMemoTable<V> {
        assert!(capacity > 0, "memo table capacity must be positive");
        Self::build(shards, Some(capacity))
    }

    fn build(shards: usize, capacity: Option<usize>) -> SharedMemoTable<V> {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| {
                Mutex::new(match capacity {
                    Some(c) => MemoTable::with_capacity_limit(c.div_ceil(n).max(1)),
                    None => MemoTable::new(),
                })
            })
            .collect();
        SharedMemoTable {
            inner: Arc::new(SharedInner {
                shards,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                insertions: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard(&self, key: MemoKey) -> &Mutex<MemoTable<V>> {
        // Fold both 64-bit halves so either hash stream alone suffices to
        // spread keys.
        let h = (key.0 >> 64) as u64 ^ key.0 as u64;
        &self.inner.shards[(h as usize) & (self.inner.shards.len() - 1)]
    }

    /// Looks up `key`, recording a global hit or miss.
    pub fn get(&self, key: MemoKey) -> Option<V>
    where
        V: Clone,
    {
        let mut shard = self.shard(key).lock().expect("memo shard poisoned");
        let out = shard.get(key).cloned();
        match out {
            Some(_) => self.inner.hits.fetch_add(1, Ordering::Relaxed),
            None => self.inner.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Inserts an entry, attributing any capacity eviction to the global
    /// counter.
    pub fn insert(&self, key: MemoKey, value: V) {
        let mut shard = self.shard(key).lock().expect("memo shard poisoned");
        let evicted_before = shard.stats().evictions;
        shard.insert(key, value);
        let delta = shard.stats().evictions - evicted_before;
        drop(shard);
        self.inner.insertions.fetch_add(1, Ordering::Relaxed);
        if delta > 0 {
            self.inner.evictions.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Returns `true` if no shard holds entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (sound; see crate docs), keeping the global
    /// counters.
    pub fn clear(&self) {
        for s in &self.inner.shards {
            s.lock().expect("memo shard poisoned").clear();
        }
    }

    /// Clones out every live entry across all shards (persistence export).
    /// The order is shard-internal and unspecified; persistence sorts by
    /// key before serializing so snapshots are byte-deterministic.
    /// Dropping or re-importing any subset of the result is sound — memo
    /// entries are keyed by content hashes of their inputs, so a restored
    /// entry can only ever substitute a value the analysis would have
    /// computed itself.
    pub fn export_entries(&self) -> Vec<(MemoKey, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for s in &self.inner.shards {
            let shard = s.lock().expect("memo shard poisoned");
            out.extend(shard.entries().map(|(k, v)| (k, v.clone())));
        }
        out
    }

    /// Global statistics, read without touching the shard locks.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            insertions: self.inner.insertions.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
        }
    }
}

impl<V> Default for SharedMemoTable<V> {
    fn default() -> Self {
        SharedMemoTable::new(Self::DEFAULT_SHARDS)
    }
}

impl<V: Clone> MemoStore<V> for SharedMemoTable<V> {
    fn fetch(&mut self, key: MemoKey) -> Option<V> {
        self.get(key)
    }

    fn record(&mut self, key: MemoKey, value: V) {
        self.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: &str, args: &[i64]) -> MemoKey {
        let mut b = KeyBuilder::new(f);
        for a in args {
            b = b.push(a);
        }
        b.finish()
    }

    #[test]
    fn insert_then_get_hits() {
        let mut m = MemoTable::new();
        let k = key("join", &[1, 2]);
        m.insert(k, "v");
        assert_eq!(m.get(k), Some(&"v"));
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.stats().misses, 0);
    }

    #[test]
    fn miss_recorded() {
        let mut m: MemoTable<()> = MemoTable::new();
        assert!(m.get(key("f", &[0])).is_none());
        assert_eq!(m.stats().misses, 1);
    }

    #[test]
    fn keys_differ_by_function_symbol() {
        assert_ne!(key("join", &[1, 2]), key("widen", &[1, 2]));
    }

    #[test]
    fn keys_are_order_sensitive() {
        assert_ne!(key("widen", &[1, 2]), key("widen", &[2, 1]));
    }

    #[test]
    fn keys_are_deterministic() {
        assert_eq!(key("f", &[7, 8, 9]), key("f", &[7, 8, 9]));
    }

    #[test]
    fn digest_keys_match_for_equal_values() {
        let a = content_digest(&"state-a");
        let b = content_digest(&"state-b");
        assert_ne!(a, b);
        assert_eq!(a, content_digest(&"state-a"));
        let k1 = KeyBuilder::new("join")
            .push_digest(a)
            .push_digest(b)
            .finish();
        let k2 = KeyBuilder::new("join")
            .push_digest(a)
            .push_digest(b)
            .finish();
        let k3 = KeyBuilder::new("join")
            .push_digest(b)
            .push_digest(a)
            .finish();
        assert_eq!(k1, k2);
        assert_ne!(k1, k3, "digest keys stay order-sensitive");
    }

    #[test]
    fn keys_distinguish_argument_boundaries() {
        // push("ab"), push("c") vs push("a"), push("bc")
        let k1 = KeyBuilder::new("f").push("ab").push("c").finish();
        let k2 = KeyBuilder::new("f").push("a").push("bc").finish();
        assert_ne!(k1, k2);
    }

    #[test]
    fn capacity_rotation_evicts_cold_entries() {
        let mut m = MemoTable::with_capacity_limit(8);
        for i in 0..100 {
            m.insert(key("f", &[i]), i);
        }
        assert!(m.len() <= 8, "len = {}", m.len());
        assert!(m.stats().evictions > 0);
    }

    #[test]
    fn hot_entries_survive_rotation() {
        let mut m = MemoTable::with_capacity_limit(8);
        let hot = key("f", &[-1]);
        m.insert(hot, -1);
        for i in 0..3 {
            m.insert(key("f", &[i]), i);
            // Keep touching the hot key so it is promoted before each
            // rotation can retire it.
            assert_eq!(m.get(hot), Some(&-1), "hot entry lost at i={i}");
        }
    }

    #[test]
    fn clear_keeps_stats() {
        let mut m = MemoTable::new();
        m.insert(key("f", &[1]), 1);
        let _ = m.get(key("f", &[1]));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.stats().hits, 1);
        m.reset_stats();
        assert_eq!(m.stats(), &MemoStats::default());
    }

    #[test]
    fn memo_store_is_object_safe_and_interchangeable() {
        fn exercise(store: &mut dyn MemoStore<i64>) {
            let k = key("transfer", &[1, 2]);
            assert!(store.fetch(k).is_none());
            store.record(k, 7);
            assert_eq!(store.fetch(k), Some(7));
        }
        exercise(&mut MemoTable::new());
        exercise(&mut SharedMemoTable::new(4));
    }

    #[test]
    fn shared_table_counts_globally_across_clones() {
        let shared: SharedMemoTable<i64> = SharedMemoTable::new(8);
        let other = shared.clone();
        for i in 0..50 {
            shared.insert(key("f", &[i]), i);
        }
        for i in 0..50 {
            assert_eq!(other.get(key("f", &[i])), Some(i));
        }
        assert!(other.get(key("f", &[999])).is_none());
        let stats = shared.stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 50);
        assert_eq!(shared.len(), 50);
        shared.clear();
        assert!(other.is_empty());
        assert_eq!(other.stats().hits, 50, "clear keeps counters");
    }

    #[test]
    fn shared_table_rounds_shards_to_power_of_two() {
        let t: SharedMemoTable<()> = SharedMemoTable::new(5);
        assert_eq!(t.shard_count(), 8);
        let t1: SharedMemoTable<()> = SharedMemoTable::new(0);
        assert_eq!(t1.shard_count(), 1);
    }

    #[test]
    fn shared_table_capacity_evicts_and_counts() {
        let t: SharedMemoTable<i64> = SharedMemoTable::with_capacity_limit(2, 16);
        for i in 0..500 {
            t.insert(key("f", &[i]), i);
        }
        assert!(t.len() <= 32, "len = {}", t.len());
        assert!(t.stats().evictions > 0);
    }

    #[test]
    fn shared_table_is_send_sync_and_concurrent() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedMemoTable<i64>>();
        let t: SharedMemoTable<i64> = SharedMemoTable::new(8);
        std::thread::scope(|scope| {
            for w in 0..4i64 {
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = key("f", &[i % 50]);
                        if let Some(v) = t.get(k) {
                            assert_eq!(v, i % 50, "worker {w} read a clobbered value");
                        } else {
                            t.insert(k, i % 50);
                        }
                    }
                });
            }
        });
        assert!(t.len() <= 50);
    }

    #[test]
    fn hit_rate() {
        let mut m = MemoTable::new();
        assert_eq!(m.stats().hit_rate(), 0.0);
        let k = key("f", &[1]);
        m.insert(k, 1);
        let _ = m.get(k);
        let _ = m.get(key("f", &[2]));
        assert!((m.stats().hit_rate() - 0.5).abs() < 1e-9);
    }
}
