//! # dai-memo — the auxiliary memoization table `M`
//!
//! The DAIG operational semantics (paper Fig. 8) thread an auxiliary memo
//! table `M` mapping names of the form `f·(v₁⋯v_k)` — a function symbol
//! paired with the (hashes of the) argument values — to previously computed
//! results. `Q-Match` reuses an entry when the same function has already
//! been applied to the same inputs *anywhere* in the program, independent
//! of program location; `Q-Miss` computes and records a new entry.
//!
//! The paper's prototype obtains this table from `adapton.ocaml`; the
//! semantics only require a sound finite map, so this crate provides
//! exactly that:
//!
//! * [`MemoKey`] — a 128-bit content hash of `f·(v₁⋯v_k)`, built with
//!   [`KeyBuilder`]. The paper's names are "hashes, essentially" (§2.1);
//!   we make that literal.
//! * [`MemoTable`] — the map itself, with hit/miss/eviction statistics and
//!   an optional capacity bound. Dropping entries is always sound
//!   (paper §2.2: "it is sound to drop cached results from the DAIG and/or
//!   memo table"), so eviction uses a cheap two-generation scheme.
//!
//! ```
//! use dai_memo::{KeyBuilder, MemoTable};
//!
//! let mut m: MemoTable<i64> = MemoTable::new();
//! let key = KeyBuilder::new("transfer").push(&"x = x + 1").push(&41).finish();
//! assert!(m.get(key).is_none());
//! m.insert(key, 42);
//! assert_eq!(m.get(key), Some(&42));
//! assert_eq!(m.stats().hits, 1);
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A 128-bit content hash identifying a memoized application `f·(v₁⋯v_k)`.
///
/// Two independently seeded 64-bit SipHash streams are concatenated; keys
/// are equal only if both streams agree, making accidental collisions
/// vanishingly unlikely at analysis scales (billions of entries would be
/// needed for a 2⁻⁶⁴ birthday bound to matter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemoKey(pub u128);

impl fmt::Display for MemoKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incrementally hashes a function symbol and its argument values into a
/// [`MemoKey`].
///
/// The builder is order-sensitive: `push(a).push(b)` and `push(b).push(a)`
/// produce different keys, as required for non-commutative functions like
/// widening.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    h1: DefaultHasher,
    h2: DefaultHasher,
}

impl KeyBuilder {
    /// Starts a key for an application of the function named `func`.
    pub fn new(func: &str) -> KeyBuilder {
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        // Distinct stream seeds.
        0xD41Au16.hash(&mut h1);
        0x1E57u16.hash(&mut h2);
        func.hash(&mut h1);
        func.hash(&mut h2);
        KeyBuilder { h1, h2 }
    }

    /// Feeds one argument value into the key.
    pub fn push<T: Hash + ?Sized>(mut self, value: &T) -> KeyBuilder {
        value.hash(&mut self.h1);
        value.hash(&mut self.h2);
        self
    }

    /// Finalizes the key.
    pub fn finish(&self) -> MemoKey {
        MemoKey(((self.h1.clone().finish() as u128) << 64) | self.h2.clone().finish() as u128)
    }
}

/// Hit/miss/eviction counters for a [`MemoTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that found an entry (`Q-Match`).
    pub hits: u64,
    /// Lookups that found nothing (`Q-Miss`).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries dropped by capacity rotation.
    pub evictions: u64,
}

impl MemoStats {
    /// `hits / (hits + misses)`, or 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The auxiliary memo table `M` of the DAIG semantics.
///
/// When constructed with a capacity bound, the table keeps at most roughly
/// `capacity` entries using two generations: lookups promote entries from
/// the old generation into the current one, and filling the current
/// generation retires the old one wholesale. Recently used entries
/// therefore survive; stale ones age out in O(1) amortized time.
#[derive(Debug, Clone)]
pub struct MemoTable<V> {
    current: HashMap<MemoKey, V>,
    previous: HashMap<MemoKey, V>,
    capacity: Option<usize>,
    stats: MemoStats,
}

impl<V> Default for MemoTable<V> {
    fn default() -> Self {
        MemoTable::new()
    }
}

impl<V> MemoTable<V> {
    /// Creates an unbounded table.
    pub fn new() -> MemoTable<V> {
        MemoTable {
            current: HashMap::new(),
            previous: HashMap::new(),
            capacity: None,
            stats: MemoStats::default(),
        }
    }

    /// Creates a table that keeps roughly `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity_limit(capacity: usize) -> MemoTable<V> {
        assert!(capacity > 0, "memo table capacity must be positive");
        MemoTable {
            capacity: Some(capacity),
            ..MemoTable::new()
        }
    }

    /// Looks up `key`, recording a hit or miss.
    pub fn get(&mut self, key: MemoKey) -> Option<&V> {
        // Promote from the previous generation on hit so hot entries
        // survive rotations.
        if !self.current.contains_key(&key) {
            if let Some(v) = self.previous.remove(&key) {
                self.current.insert(key, v);
            }
        }
        match self.current.get(&key) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks for `key` without touching statistics or generations.
    pub fn contains(&self, key: MemoKey) -> bool {
        self.current.contains_key(&key) || self.previous.contains_key(&key)
    }

    /// Inserts an entry, rotating generations if over capacity.
    pub fn insert(&mut self, key: MemoKey, value: V) {
        self.stats.insertions += 1;
        self.current.insert(key, value);
        if let Some(cap) = self.capacity {
            let half = cap.div_ceil(2);
            if self.current.len() >= half {
                self.stats.evictions += self.previous.len() as u64;
                self.previous = std::mem::take(&mut self.current);
            }
        }
    }

    /// Number of live entries (both generations).
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (sound: see crate docs), keeping statistics.
    pub fn clear(&mut self) {
        self.current.clear();
        self.previous.clear();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Resets statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = MemoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: &str, args: &[i64]) -> MemoKey {
        let mut b = KeyBuilder::new(f);
        for a in args {
            b = b.push(a);
        }
        b.finish()
    }

    #[test]
    fn insert_then_get_hits() {
        let mut m = MemoTable::new();
        let k = key("join", &[1, 2]);
        m.insert(k, "v");
        assert_eq!(m.get(k), Some(&"v"));
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.stats().misses, 0);
    }

    #[test]
    fn miss_recorded() {
        let mut m: MemoTable<()> = MemoTable::new();
        assert!(m.get(key("f", &[0])).is_none());
        assert_eq!(m.stats().misses, 1);
    }

    #[test]
    fn keys_differ_by_function_symbol() {
        assert_ne!(key("join", &[1, 2]), key("widen", &[1, 2]));
    }

    #[test]
    fn keys_are_order_sensitive() {
        assert_ne!(key("widen", &[1, 2]), key("widen", &[2, 1]));
    }

    #[test]
    fn keys_are_deterministic() {
        assert_eq!(key("f", &[7, 8, 9]), key("f", &[7, 8, 9]));
    }

    #[test]
    fn keys_distinguish_argument_boundaries() {
        // push("ab"), push("c") vs push("a"), push("bc")
        let k1 = KeyBuilder::new("f").push("ab").push("c").finish();
        let k2 = KeyBuilder::new("f").push("a").push("bc").finish();
        assert_ne!(k1, k2);
    }

    #[test]
    fn capacity_rotation_evicts_cold_entries() {
        let mut m = MemoTable::with_capacity_limit(8);
        for i in 0..100 {
            m.insert(key("f", &[i]), i);
        }
        assert!(m.len() <= 8, "len = {}", m.len());
        assert!(m.stats().evictions > 0);
    }

    #[test]
    fn hot_entries_survive_rotation() {
        let mut m = MemoTable::with_capacity_limit(8);
        let hot = key("f", &[-1]);
        m.insert(hot, -1);
        for i in 0..3 {
            m.insert(key("f", &[i]), i);
            // Keep touching the hot key so it is promoted before each
            // rotation can retire it.
            assert_eq!(m.get(hot), Some(&-1), "hot entry lost at i={i}");
        }
    }

    #[test]
    fn clear_keeps_stats() {
        let mut m = MemoTable::new();
        m.insert(key("f", &[1]), 1);
        let _ = m.get(key("f", &[1]));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.stats().hits, 1);
        m.reset_stats();
        assert_eq!(m.stats(), &MemoStats::default());
    }

    #[test]
    fn hit_rate() {
        let mut m = MemoTable::new();
        assert_eq!(m.stats().hit_rate(), 0.0);
        let k = key("f", &[1]);
        m.insert(k, 1);
        let _ = m.get(k);
        let _ = m.get(key("f", &[2]));
        assert!((m.stats().hit_rate() - 0.5).abs() < 1e-9);
    }
}
