//! # dai-journal — append-only session journal + replication feed
//!
//! Replaces "rewrite the whole snapshot on every save" with an
//! append-only log of what actually happened: `open` (name + source),
//! `edit` (one [`dai_core::driver::ProgramEdit`]), `close`, lossy
//! `memo-delta` batches, and compaction-produced `snapshot` frames.
//! Every record is one [`dai_persist::frame`] frame — the exact layout
//! snapshot sections and `dai-rpc` messages already use — so the disk
//! format *is* the replication wire format: a leader ships journal
//! bytes to followers verbatim ([`Journal::frames_since`]).
//!
//! ## Why a torn tail is harmless
//!
//! Demanded abstract interpretation's soundness theorem (Stein et al.,
//! PLDI 2021, Theorems 6.1–6.3) says any consistent prior state answers
//! queries correctly — warmth, not truth, is what state carries. A
//! journal prefix *is* a consistent prior state: opens and edits up to
//! any frame boundary describe a program the engine can analyze from
//! scratch. So recovery ([`Journal::open`]) replays the longest clean
//! prefix and truncates the rest; memo deltas are additionally lossy
//! individually (undecodable ⇒ skipped). The same argument makes a
//! lagging replica sound: it serves answers for the program as of an
//! older sequence number — correct for that state, merely colder.
//!
//! ## Sequence numbers
//!
//! Each frame carries `(seq, session, session_seq)`: a global strictly
//! monotonic sequence, the leader's session id, and a per-session
//! counter. `seq` survives compaction — snapshot frames take fresh
//! numbers above all prior ones — so follower cursors (`after` in
//! [`Journal::frames_since`]) never go backwards or dangle.

pub mod journal;
pub mod record;

pub use journal::{FrameBatch, Journal, JournalConfig};
pub use record::{
    is_journal_tag, replay_bytes, JournalEntry, JournalRecord, Replay, JOURNAL_VERSION,
    TAG_JOURNAL_CLOSE, TAG_JOURNAL_EDIT, TAG_JOURNAL_MEMO, TAG_JOURNAL_OPEN, TAG_JOURNAL_SNAP,
};
