//! Journal records and their frame codec.
//!
//! Each record is one [`dai_persist::frame`] frame — the same
//! `tag + version + length + payload + FxHash64` layout the snapshot
//! container and the RPC socket use — so journal bytes read off disk can
//! be shipped to a follower verbatim. The payload opens with three
//! sequence numbers (global, session id, per-session) so ordering and
//! attribution survive with no out-of-band state.

use dai_core::driver::ProgramEdit;
use dai_persist::{split_frame, write_frame, Persist, PersistError, Reader, Writer};

/// Frame tag: a session came into existence (name + program source).
pub const TAG_JOURNAL_OPEN: [u8; 4] = *b"JOPN";
/// Frame tag: one [`ProgramEdit`] applied to a session.
pub const TAG_JOURNAL_EDIT: [u8; 4] = *b"JEDT";
/// Frame tag: a session was closed.
pub const TAG_JOURNAL_CLOSE: [u8; 4] = *b"JCLS";
/// Frame tag: an opaque, domain-encoded batch of memo entries (lossy —
/// a replayer that cannot decode it skips it and stays sound).
pub const TAG_JOURNAL_MEMO: [u8; 4] = *b"JMEM";
/// Frame tag: a full `DAIP` snapshot of a session, written by
/// compaction; replaces that session's earlier frames.
pub const TAG_JOURNAL_SNAP: [u8; 4] = *b"JSNP";

/// Payload version for every journal frame kind.
pub const JOURNAL_VERSION: u16 = 1;

/// What happened, without the sequencing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A session opened with this name and program source. Replaying it
    /// re-parses and re-lowers the source, which is deterministic.
    Open {
        /// Human-readable session name.
        name: String,
        /// Full program source text at open.
        source: String,
    },
    /// One structural edit applied to the session's program.
    Edit {
        /// The edit, encoded via its existing [`Persist`] impl.
        edit: ProgramEdit,
    },
    /// The session closed.
    Close,
    /// Domain-encoded memo entries (opaque here; lossy on replay).
    MemoDelta {
        /// `(key, value)` pairs in the engine's memo wire encoding.
        bytes: Vec<u8>,
    },
    /// A full `DAIP` snapshot container for the session (compaction).
    Snapshot {
        /// `SessionImage::to_bytes` output.
        bytes: Vec<u8>,
    },
}

impl JournalRecord {
    /// The frame tag this record serializes under.
    pub fn tag(&self) -> [u8; 4] {
        match self {
            JournalRecord::Open { .. } => TAG_JOURNAL_OPEN,
            JournalRecord::Edit { .. } => TAG_JOURNAL_EDIT,
            JournalRecord::Close => TAG_JOURNAL_CLOSE,
            JournalRecord::MemoDelta { .. } => TAG_JOURNAL_MEMO,
            JournalRecord::Snapshot { .. } => TAG_JOURNAL_SNAP,
        }
    }

    /// Short human name for logs and REPL output.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalRecord::Open { .. } => "open",
            JournalRecord::Edit { .. } => "edit",
            JournalRecord::Close => "close",
            JournalRecord::MemoDelta { .. } => "memo-delta",
            JournalRecord::Snapshot { .. } => "snapshot",
        }
    }
}

/// One fully-attributed journal entry: the record plus where it sits in
/// the global and per-session orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Global, strictly monotonic sequence number. Survives compaction:
    /// snapshot frames take *fresh* sequence numbers, so a follower's
    /// cursor stays valid across a leader compaction.
    pub seq: u64,
    /// Journal-side session id (the leader's `SessionId` value).
    pub session: u64,
    /// Per-session monotonic sequence number, starting at 1 at `Open`.
    pub session_seq: u64,
    /// The record itself.
    pub record: JournalRecord,
}

impl JournalEntry {
    /// Appends this entry to `out` as one checksummed frame.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::new();
        w.u64(self.seq);
        w.u64(self.session);
        w.u64(self.session_seq);
        match &self.record {
            JournalRecord::Open { name, source } => {
                w.str(name);
                w.str(source);
            }
            JournalRecord::Edit { edit } => edit.put(&mut w),
            JournalRecord::Close => {}
            JournalRecord::MemoDelta { bytes } | JournalRecord::Snapshot { bytes } => {
                w.u64(bytes.len() as u64);
                w.bytes(bytes);
            }
        }
        write_frame(out, self.record.tag(), JOURNAL_VERSION, &w.into_bytes());
    }

    /// The entry as a standalone frame (header + payload + checksum).
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one verified frame payload back into an entry.
    ///
    /// # Errors
    ///
    /// [`PersistError`] on an unknown tag, wrong version, or malformed
    /// payload.
    pub fn decode(
        tag: [u8; 4],
        version: u16,
        payload: &[u8],
    ) -> Result<JournalEntry, PersistError> {
        if version != JOURNAL_VERSION {
            return Err(PersistError::Corrupt(format!(
                "journal frame version {version} (expected {JOURNAL_VERSION})"
            )));
        }
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let session = r.u64()?;
        let session_seq = r.u64()?;
        let record = match tag {
            TAG_JOURNAL_OPEN => JournalRecord::Open {
                name: r.str()?,
                source: r.str()?,
            },
            TAG_JOURNAL_EDIT => JournalRecord::Edit {
                edit: ProgramEdit::get(&mut r)?,
            },
            TAG_JOURNAL_CLOSE => JournalRecord::Close,
            TAG_JOURNAL_MEMO => {
                let n = r.len_prefix()?;
                JournalRecord::MemoDelta {
                    bytes: r.take(n)?.to_vec(),
                }
            }
            TAG_JOURNAL_SNAP => {
                let n = r.len_prefix()?;
                JournalRecord::Snapshot {
                    bytes: r.take(n)?.to_vec(),
                }
            }
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown journal frame tag {other:?}"
                )))
            }
        };
        if !r.is_exhausted() {
            return Err(PersistError::Corrupt(format!(
                "journal {} frame has {} trailing bytes",
                record.kind(),
                r.remaining()
            )));
        }
        Ok(JournalEntry {
            seq,
            session,
            session_seq,
            record,
        })
    }
}

/// Whether `tag` names one of the journal frame kinds.
pub fn is_journal_tag(tag: [u8; 4]) -> bool {
    matches!(
        tag,
        TAG_JOURNAL_OPEN
            | TAG_JOURNAL_EDIT
            | TAG_JOURNAL_CLOSE
            | TAG_JOURNAL_MEMO
            | TAG_JOURNAL_SNAP
    )
}

/// The result of scanning a byte run for journal frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replay {
    /// Entries decoded from the longest clean prefix, in order.
    pub entries: Vec<JournalEntry>,
    /// Bytes of that clean prefix — recovery truncates the file here.
    pub good_len: usize,
    /// Bytes abandoned after the clean prefix (torn tail, bit rot, or
    /// foreign bytes). Zero for a clean journal.
    pub damaged_len: usize,
}

/// Scans `bytes` front to back, decoding frames until the first torn,
/// checksum-damaged, or undecodable frame, then stops — the PR 3 rule:
/// an unreadable suffix costs warmth, never soundness, because every
/// clean prefix of a journal is a consistent (older) state.
pub fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(split) = split_frame(&bytes[offset..]) else {
            break; // fewer bytes than a header: torn tail
        };
        let Some(payload) = split.payload else {
            break; // truncated or checksum-damaged frame
        };
        if !is_journal_tag(split.header.tag) {
            break; // foreign bytes: treat like damage, stop cleanly
        }
        match JournalEntry::decode(split.header.tag, split.header.version, payload) {
            Ok(entry) => entries.push(entry),
            Err(_) => break, // verified checksum but unreadable payload
        }
        offset += split.consumed;
    }
    Replay {
        good_len: offset,
        damaged_len: bytes.len() - offset,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_core::driver::ProgramEdit;
    use dai_lang::{EdgeId, Stmt, Symbol};

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry {
                seq: 1,
                session: 7,
                session_seq: 1,
                record: JournalRecord::Open {
                    name: "main-session".into(),
                    source: "fn main() { x = 1; }".into(),
                },
            },
            JournalEntry {
                seq: 2,
                session: 7,
                session_seq: 2,
                record: JournalRecord::Edit {
                    edit: ProgramEdit::Relabel {
                        func: Symbol::from("main"),
                        edge: EdgeId(0),
                        stmt: Stmt::Skip,
                    },
                },
            },
            JournalEntry {
                seq: 3,
                session: 7,
                session_seq: 3,
                record: JournalRecord::MemoDelta {
                    bytes: vec![1, 2, 3, 4],
                },
            },
            JournalEntry {
                seq: 4,
                session: 7,
                session_seq: 4,
                record: JournalRecord::Snapshot { bytes: vec![9; 64] },
            },
            JournalEntry {
                seq: 5,
                session: 7,
                session_seq: 5,
                record: JournalRecord::Close,
            },
        ]
    }

    #[test]
    fn entries_roundtrip_through_frames() {
        let entries = sample_entries();
        let mut bytes = Vec::new();
        for e in &entries {
            e.encode_into(&mut bytes);
        }
        let replay = replay_bytes(&bytes);
        assert_eq!(replay.entries, entries);
        assert_eq!(replay.good_len, bytes.len());
        assert_eq!(replay.damaged_len, 0);
    }

    #[test]
    fn every_prefix_truncation_stops_at_a_frame_boundary() {
        let entries = sample_entries();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            e.encode_into(&mut bytes);
            boundaries.push(bytes.len());
        }
        for cut in 0..bytes.len() {
            let replay = replay_bytes(&bytes[..cut]);
            // good_len is the largest boundary ≤ cut.
            let expect = *boundaries.iter().filter(|b| **b <= cut).max().unwrap();
            assert_eq!(replay.good_len, expect, "cut at {cut}");
            let n = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(replay.entries.len(), n, "cut at {cut}");
            assert_eq!(replay.entries[..], entries[..n], "cut at {cut}");
        }
    }

    #[test]
    fn every_byte_flip_keeps_a_clean_prefix() {
        let entries = sample_entries();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            e.encode_into(&mut bytes);
            boundaries.push(bytes.len());
        }
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x41;
            let replay = replay_bytes(&mutated);
            // Every decoded entry must be one of the originals, in
            // order from the front — a flip never fabricates state.
            assert!(replay.entries.len() <= entries.len(), "flip at {pos}");
            assert_eq!(
                replay.entries[..],
                entries[..replay.entries.len()],
                "flip at {pos}"
            );
            // The frame containing the flipped byte (or one before it)
            // must be rejected: the clean prefix ends at or before the
            // flipped frame's start boundary.
            let frame_start = *boundaries.iter().filter(|b| **b <= pos).max().unwrap();
            assert!(replay.good_len <= frame_start, "flip at {pos}");
        }
    }
}
