//! The on-disk append-only journal.
//!
//! One file, a run of checksummed frames ([`crate::record`]). Opening
//! replays the longest clean prefix and truncates anything after it —
//! recovery IS the ordinary open path, so every test of open is a test
//! of crash recovery. Appends go to the end under a lock; `Safe`
//! durability fsyncs the file after each append batch. Compaction
//! rewrites the file as one `JSNP` snapshot frame per live session
//! (with *fresh* sequence numbers, so follower cursors survive) via the
//! same tmp + rename + fsync dance snapshots use.

use crate::record::{replay_bytes, JournalEntry, JournalRecord, Replay};
use dai_persist::{sync_file, sync_parent_dir, Durability, PersistError};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Fsync policy for appends and compaction (see [`Durability`]).
    pub durability: Durability,
    /// Suggest compaction after this many appended frames since the
    /// last one (`0` disables the hint; callers poll
    /// [`Journal::wants_compaction`]).
    pub compact_every: u64,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            durability: Durability::Fast,
            compact_every: 1024,
        }
    }
}

/// A batch of raw frames pulled for replication.
#[derive(Debug, Clone, Default)]
pub struct FrameBatch {
    /// Concatenated frame bytes, exactly as on disk.
    pub bytes: Vec<u8>,
    /// Number of frames in `bytes`.
    pub count: u32,
    /// Sequence number of the last frame in the batch (or the cursor
    /// unchanged when `count == 0`).
    pub last_seq: u64,
}

#[derive(Debug)]
struct Inner {
    file: std::fs::File,
    /// Next global sequence number to assign.
    next_seq: u64,
    /// Per-session next `session_seq`.
    session_seqs: HashMap<u64, u64>,
    /// Good frames currently in the file.
    frames: u64,
    /// Appends since the last compaction (compaction-hint counter).
    appended_since_compact: u64,
}

/// An open journal file. Cheap to share behind an `Arc`; all file
/// access is serialized on an internal lock.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    config: JournalConfig,
    inner: Mutex<Inner>,
}

fn io_err(path: &Path, e: std::io::Error) -> PersistError {
    PersistError::Io(format!("{}: {e}", path.display()))
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replaying the longest
    /// clean prefix and truncating any torn/damaged tail in place.
    /// Returns the journal positioned for append plus the replay — the
    /// caller feeds `replay.entries` through its apply path to rebuild
    /// state.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure. Damage is NOT an
    /// error: it is truncated away and reported via
    /// [`Replay::damaged_len`].
    pub fn open(
        path: impl Into<PathBuf>,
        config: JournalConfig,
    ) -> Result<(Journal, Replay), PersistError> {
        let path = path.into();
        let err = |e| io_err(&path, e);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(err(e)),
        };
        let replay = replay_bytes(&bytes);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(err)?;
        if replay.damaged_len > 0 {
            file.set_len(replay.good_len as u64).map_err(err)?;
            if config.durability == Durability::Safe {
                sync_file(&file).map_err(err)?;
            }
        }
        let mut session_seqs = HashMap::new();
        let mut next_seq = 1;
        for e in &replay.entries {
            next_seq = e.seq + 1;
            session_seqs.insert(e.session, e.session_seq + 1);
        }
        let mut file_for_append = file;
        std::io::Seek::seek(
            &mut file_for_append,
            std::io::SeekFrom::Start(replay.good_len as u64),
        )
        .map_err(err)?;
        let journal = Journal {
            inner: Mutex::new(Inner {
                file: file_for_append,
                next_seq,
                session_seqs,
                frames: replay.entries.len() as u64,
                appended_since_compact: 0,
            }),
            path,
            config,
        };
        Ok((journal, replay))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured durability level.
    pub fn durability(&self) -> Durability {
        self.config.durability
    }

    /// Appends one record for `session`, assigning its sequence
    /// numbers. Returns the entry's global sequence number. Under
    /// [`Durability::Safe`] the file is fsync'd before returning.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on write failure.
    pub fn append(&self, session: u64, record: JournalRecord) -> Result<u64, PersistError> {
        self.append_all(session, std::iter::once(record))
    }

    /// Appends a batch of records for `session` with a single fsync at
    /// the end (the "after each journal append batch" rule). Returns
    /// the last assigned global sequence number.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on write failure.
    pub fn append_all(
        &self,
        session: u64,
        records: impl IntoIterator<Item = JournalRecord>,
    ) -> Result<u64, PersistError> {
        let err = |e| io_err(&self.path, e);
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        let mut buf = Vec::new();
        let mut appended = 0u64;
        for record in records {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let slot = inner.session_seqs.entry(session).or_insert(1);
            let session_seq = *slot;
            *slot += 1;
            appended += 1;
            JournalEntry {
                seq,
                session,
                session_seq,
                record,
            }
            .encode_into(&mut buf);
        }
        if appended == 0 {
            return Ok(inner.next_seq.saturating_sub(1));
        }
        inner.file.write_all(&buf).map_err(err)?;
        inner.file.flush().map_err(err)?;
        if self.config.durability == Durability::Safe {
            sync_file(&inner.file).map_err(err)?;
        }
        inner.frames += appended;
        inner.appended_since_compact += appended;
        dai_trace::metrics()
            .counter("dai_journal_appended_frames_total")
            .add(appended);
        Ok(inner.next_seq - 1)
    }

    /// The last assigned global sequence number (0 when empty).
    pub fn last_seq(&self) -> u64 {
        let inner = self.inner.lock().expect("journal lock poisoned");
        inner.next_seq - 1
    }

    /// Good frames currently in the file.
    pub fn frames(&self) -> u64 {
        let inner = self.inner.lock().expect("journal lock poisoned");
        inner.frames
    }

    /// `true` once the append count since the last compaction passes
    /// the configured threshold.
    pub fn wants_compaction(&self) -> bool {
        if self.config.compact_every == 0 {
            return false;
        }
        let inner = self.inner.lock().expect("journal lock poisoned");
        inner.appended_since_compact >= self.config.compact_every
    }

    /// Pulls the raw frame bytes of every entry with `seq > after`, in
    /// order — the replication feed. Frames ship exactly as stored
    /// (checksums and all), so a follower verifies them with the same
    /// [`replay_bytes`] the leader's own recovery uses.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the file cannot be re-read.
    pub fn frames_since(&self, after: u64, max: u32) -> Result<FrameBatch, PersistError> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        let bytes = std::fs::read(&self.path).map_err(|e| io_err(&self.path, e))?;
        drop(inner);
        let mut batch = FrameBatch {
            last_seq: after,
            ..FrameBatch::default()
        };
        let mut offset = 0usize;
        while offset < bytes.len() && batch.count < max {
            let Some(split) = dai_persist::split_frame(&bytes[offset..]) else {
                break;
            };
            let Some(payload) = split.payload else { break };
            let Ok(entry) = JournalEntry::decode(split.header.tag, split.header.version, payload)
            else {
                break;
            };
            let end = offset + split.consumed;
            if entry.seq > after {
                batch.bytes.extend_from_slice(&bytes[offset..end]);
                batch.count += 1;
                batch.last_seq = entry.seq;
            }
            offset = end;
        }
        Ok(batch)
    }

    /// Replaces the journal's contents with one snapshot frame per
    /// `(session, DAIP bytes)` pair, assigning fresh sequence numbers
    /// **above** every previously handed-out one. Written atomically
    /// (tmp + rename; fsync'd under [`Durability::Safe`]). Returns the
    /// new last sequence number.
    ///
    /// A follower whose cursor points into the truncated history simply
    /// receives the snapshot frames next pull — snapshot application is
    /// idempotent, so catching up over a compaction is seamless.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure.
    pub fn compact(&self, snapshots: &[(u64, Vec<u8>)]) -> Result<u64, PersistError> {
        let err = |e| io_err(&self.path, e);
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        let mut buf = Vec::new();
        let mut frames = 0u64;
        for (session, bytes) in snapshots {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let slot = inner.session_seqs.entry(*session).or_insert(1);
            let session_seq = *slot;
            *slot += 1;
            frames += 1;
            JournalEntry {
                seq,
                session: *session,
                session_seq,
                record: JournalRecord::Snapshot {
                    bytes: bytes.clone(),
                },
            }
            .encode_into(&mut buf);
        }
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(format!(".compact-{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp).map_err(err)?;
            file.write_all(&buf).map_err(err)?;
            if self.config.durability == Durability::Safe {
                sync_file(&file).map_err(err)?;
            }
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            err(e)
        })?;
        if self.config.durability == Durability::Safe {
            sync_parent_dir(&self.path).map_err(err)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(err)?;
        std::io::Seek::seek(&mut file, std::io::SeekFrom::End(0)).map_err(err)?;
        inner.file = file;
        inner.frames = frames;
        inner.appended_since_compact = 0;
        dai_trace::metrics()
            .counter("dai_journal_compactions_total")
            .inc();
        Ok(inner.next_seq - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dai-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn open_record(n: u32) -> JournalRecord {
        JournalRecord::Open {
            name: format!("s{n}"),
            source: format!("fn f{n}() {{ x = {n}; }}"),
        }
    }

    #[test]
    fn append_reopen_replays_everything() {
        let path = tmp_path("append-reopen.daij");
        let _ = std::fs::remove_file(&path);
        let (journal, replay) = Journal::open(&path, JournalConfig::default()).unwrap();
        assert!(replay.entries.is_empty());
        for i in 0..5 {
            journal.append(1, open_record(i)).unwrap();
        }
        assert_eq!(journal.last_seq(), 5);
        drop(journal);
        let (journal, replay) = Journal::open(&path, JournalConfig::default()).unwrap();
        assert_eq!(replay.entries.len(), 5);
        assert_eq!(replay.damaged_len, 0);
        assert_eq!(journal.last_seq(), 5);
        // Sequences continue where they left off.
        let seq = journal.append(1, JournalRecord::Close).unwrap();
        assert_eq!(seq, 6);
        let entry = &replay.entries[4];
        assert_eq!((entry.seq, entry.session, entry.session_seq), (5, 1, 5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp_path("torn-tail.daij");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path, JournalConfig::default()).unwrap();
        journal.append(1, open_record(0)).unwrap();
        journal.append(1, open_record(1)).unwrap();
        drop(journal);
        // Tear the last frame: chop 3 bytes off the file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (journal, replay) = Journal::open(&path, JournalConfig::default()).unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert!(replay.damaged_len > 0);
        // The file was truncated to the clean prefix and appends work.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len() as usize,
            replay.good_len
        );
        let seq = journal.append(1, open_record(2)).unwrap();
        assert_eq!(seq, 2, "seq restarts after the lost frame");
        drop(journal);
        let (_, replay) = Journal::open(&path, JournalConfig::default()).unwrap();
        assert_eq!(replay.entries.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn frames_since_pages_through_the_feed() {
        let path = tmp_path("frames-since.daij");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path, JournalConfig::default()).unwrap();
        for i in 0..6 {
            journal.append(u64::from(i % 2), open_record(i)).unwrap();
        }
        let batch = journal.frames_since(0, 4).unwrap();
        assert_eq!(batch.count, 4);
        assert_eq!(batch.last_seq, 4);
        let replayed = replay_bytes(&batch.bytes);
        assert_eq!(replayed.entries.len(), 4);
        assert_eq!(replayed.damaged_len, 0);
        let rest = journal.frames_since(batch.last_seq, 100).unwrap();
        assert_eq!(rest.count, 2);
        assert_eq!(rest.last_seq, 6);
        let empty = journal.frames_since(6, 100).unwrap();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.last_seq, 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_truncates_but_keeps_sequencing_monotonic() {
        let path = tmp_path("compact.daij");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path, JournalConfig::default()).unwrap();
        for i in 0..8 {
            journal.append(3, open_record(i)).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let last = journal.compact(&[(3, vec![0xAB; 10])]).unwrap();
        assert_eq!(last, 9, "snapshot frame takes the next fresh seq");
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        assert_eq!(journal.frames(), 1);
        // A follower parked at seq 5 pulls and gets the snapshot frame.
        let batch = journal.frames_since(5, 100).unwrap();
        assert_eq!(batch.count, 1);
        assert_eq!(batch.last_seq, 9);
        let replay = replay_bytes(&batch.bytes);
        assert!(matches!(
            replay.entries[0].record,
            JournalRecord::Snapshot { .. }
        ));
        // Appends continue past the compaction.
        assert_eq!(journal.append(3, JournalRecord::Close).unwrap(), 10);
        drop(journal);
        let (_, replay) = Journal::open(&path, JournalConfig::default()).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.entries[1].seq, 10);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn safe_durability_syncs_on_append() {
        let path = tmp_path("safe-append.daij");
        let _ = std::fs::remove_file(&path);
        let config = JournalConfig {
            durability: Durability::Safe,
            ..JournalConfig::default()
        };
        let (journal, _) = Journal::open(&path, config).unwrap();
        let (f0, _) = dai_persist::sync_counts();
        journal.append(1, open_record(0)).unwrap();
        let (f1, _) = dai_persist::sync_counts();
        assert!(f1 > f0, "Safe journal append must fsync the file");
        let _ = std::fs::remove_file(&path);
    }
}
