//! [`Persist`] codecs for the engine's public response payloads, so a
//! wire protocol (`dai-rpc`) can carry [`EngineStats`],
//! [`PersistOutcome`], [`EditOutcome`], and [`SessionSnapshot`] without
//! redefining them. Crucially, [`EngineStats`] travels *whole* —
//! [`BatchStats`], the saves/loads counters, `session_locks`, query and
//! memo work — so a remote client can assert that coalescing and
//! persistence actually happened on the server, with the same
//! accounting checks the in-process tests use.

use dai_persist::{Persist, PersistError, Reader, Writer};

use crate::engine::{
    BatchStats, EngineStats, ExplainStats, PersistOutcome, ReplicationStats, SessionId,
};
use crate::session::{EditOutcome, SessionSnapshot};

impl Persist for SessionId {
    fn put(&self, w: &mut Writer) {
        w.u64(self.0);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SessionId(r.u64()?))
    }
}

impl Persist for EditOutcome {
    fn put(&self, w: &mut Writer) {
        w.u64(self.new_locs as u64);
        w.u64(self.new_edges as u64);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(EditOutcome {
            new_locs: r.u64()? as usize,
            new_edges: r.u64()? as usize,
        })
    }
}

impl Persist for PersistOutcome {
    fn put(&self, w: &mut Writer) {
        w.u64(self.bytes as u64);
        w.u64(self.funcs as u64);
        w.u64(self.funcs_dropped as u64);
        w.u64(self.memo_entries as u64);
        w.u64(self.memo_sections_dropped as u64);
        self.truncated.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(PersistOutcome {
            bytes: r.u64()? as usize,
            funcs: r.u64()? as usize,
            funcs_dropped: r.u64()? as usize,
            memo_entries: r.u64()? as usize,
            memo_sections_dropped: r.u64()? as usize,
            truncated: bool::get(r)?,
        })
    }
}

impl Persist for BatchStats {
    fn put(&self, w: &mut Writer) {
        w.u64(self.batches);
        w.u64(self.coalesced_queries);
        w.u64(self.singleton_queries);
        w.u64(self.union_cone_cells);
        w.u64(self.union_cone_walks);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(BatchStats {
            batches: r.u64()?,
            coalesced_queries: r.u64()?,
            singleton_queries: r.u64()?,
            union_cone_cells: r.u64()?,
            union_cone_walks: r.u64()?,
        })
    }
}

impl Persist for ExplainStats {
    fn put(&self, w: &mut Writer) {
        w.u64(self.reports);
        w.u64(self.cells);
        w.u64(self.fixes);
        w.u64(self.work_ns);
        w.u64(self.span_ns);
        w.u64(self.computed_ns);
        w.u64(self.memo_matched_ns);
        w.u64(self.fix_ns);
        self.domains.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ExplainStats {
            reports: r.u64()?,
            cells: r.u64()?,
            fixes: r.u64()?,
            work_ns: r.u64()?,
            span_ns: r.u64()?,
            computed_ns: r.u64()?,
            memo_matched_ns: r.u64()?,
            fix_ns: r.u64()?,
            domains: Vec::<(String, u64)>::get(r)?,
        })
    }
}

impl Persist for ReplicationStats {
    fn put(&self, w: &mut Writer) {
        self.journal_attached.put(w);
        w.u64(self.journal_last_seq);
        w.u64(self.journal_frames);
        w.u64(self.applied_seq);
        w.u64(self.applied_frames);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ReplicationStats {
            journal_attached: bool::get(r)?,
            journal_last_seq: r.u64()?,
            journal_frames: r.u64()?,
            applied_seq: r.u64()?,
            applied_frames: r.u64()?,
        })
    }
}

impl Persist for EngineStats {
    fn put(&self, w: &mut Writer) {
        w.u64(self.workers as u64);
        w.u64(self.sessions as u64);
        w.u64(self.queries);
        w.u64(self.edits);
        w.u64(self.snapshots);
        w.u64(self.saves);
        w.u64(self.loads);
        w.u64(self.session_locks);
        self.batch.put(w);
        self.query_stats.put(w);
        self.explain.put(w);
        self.memo.put(w);
        self.replication.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(EngineStats {
            workers: r.u64()? as usize,
            sessions: r.u64()? as usize,
            queries: r.u64()?,
            edits: r.u64()?,
            snapshots: r.u64()?,
            saves: r.u64()?,
            loads: r.u64()?,
            session_locks: r.u64()?,
            batch: BatchStats::get(r)?,
            query_stats: dai_core::query::QueryStats::get(r)?,
            explain: ExplainStats::get(r)?,
            memo: dai_memo::MemoStats::get(r)?,
            replication: ReplicationStats::get(r)?,
        })
    }
}

impl Persist for SessionSnapshot {
    fn put(&self, w: &mut Writer) {
        self.session.put(w);
        self.functions.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SessionSnapshot {
            session: String::get(r)?,
            functions: Vec::<(String, String)>::get(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::get(&mut r).expect("decodes");
        assert!(r.is_exhausted(), "{} trailing bytes", r.remaining());
        assert_eq!(&back, v);
    }

    #[test]
    fn response_payloads_roundtrip() {
        roundtrip(&SessionId(42));
        roundtrip(&EditOutcome {
            new_locs: 3,
            new_edges: 5,
        });
        roundtrip(&PersistOutcome {
            bytes: 1024,
            funcs: 4,
            funcs_dropped: 1,
            memo_entries: 77,
            memo_sections_dropped: 0,
            truncated: true,
        });
        roundtrip(&BatchStats {
            batches: 5,
            coalesced_queries: 60,
            singleton_queries: 7,
            union_cone_cells: 1234,
            union_cone_walks: 5,
        });
        roundtrip(&SessionSnapshot {
            session: "s".to_string(),
            functions: vec![("main".to_string(), "digraph daig {}\n".to_string())],
        });
    }

    #[test]
    fn engine_stats_roundtrip_carries_batch_and_persist_counters() {
        let stats = EngineStats {
            workers: 2,
            sessions: 3,
            queries: 100,
            edits: 10,
            snapshots: 1,
            saves: 4,
            loads: 2,
            session_locks: 17,
            batch: BatchStats {
                batches: 5,
                coalesced_queries: 90,
                singleton_queries: 10,
                union_cone_cells: 400,
                union_cone_walks: 5,
            },
            query_stats: dai_core::query::QueryStats {
                computed: 50,
                memo_matched: 20,
                reused: 30,
                unrolls: 4,
                fix_converged: 6,
                cone_walks: 5,
                cone_cells: 400,
                transfers_compiled: 45,
                transfers_interp: 5,
            },
            explain: ExplainStats {
                reports: 2,
                cells: 90,
                fixes: 3,
                work_ns: 123_456,
                span_ns: 45_000,
                computed_ns: 100_000,
                memo_matched_ns: 20_000,
                fix_ns: 3_456,
                domains: vec![("interval".to_string(), 2)],
            },
            memo: dai_memo::MemoStats {
                hits: 20,
                misses: 50,
                insertions: 50,
                evictions: 0,
            },
            replication: ReplicationStats {
                journal_attached: true,
                journal_last_seq: 42,
                journal_frames: 17,
                applied_seq: 40,
                applied_frames: 15,
            },
        };
        roundtrip(&stats);
    }
}
