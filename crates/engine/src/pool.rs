//! A small fixed-size worker pool with a caller-participating parallel
//! map.
//!
//! The pool serves two tiers of work:
//!
//! * **request jobs** — whole engine requests (query/edit/snapshot),
//!   submitted with [`PoolHandle::spawn`] and drained FIFO by the worker
//!   threads; and
//! * **cell batches** — the per-frontier fan-out of the DAIG scheduler,
//!   run through [`PoolHandle::parallel_map`].
//!
//! `parallel_map` is deadlock-free by construction even when invoked *from
//! a worker thread that is itself processing a request*: the caller always
//! participates in executing its own batch, so the batch completes even if
//! every other worker is busy with requests. Idle workers pick up helper
//! jobs and join in; busy workers simply never get the chance, and the
//! helpers exit immediately once the batch index is exhausted.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// What a queued job is, which decides how workers may claim it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JobKind {
    /// A whole engine request; amenable to batch claiming under backlog.
    Request,
    /// A `parallel_map` helper: exactly one per worker is enqueued, so a
    /// worker must never claim more than one (batching them onto a single
    /// worker would collapse the fan-out the helpers exist to provide).
    Helper,
}

#[derive(Default)]
struct Injector {
    queue: Mutex<VecDeque<(JobKind, Job)>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A cloneable handle onto the pool's job queue. Jobs submitted through
/// any clone are drained by the same worker threads.
#[derive(Clone)]
pub struct PoolHandle {
    injector: Arc<Injector>,
    workers: usize,
}

impl PoolHandle {
    /// Number of worker threads behind this handle.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a job for the worker threads.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut q = self.injector.queue.lock().expect("pool queue poisoned");
            q.push_back((JobKind::Request, Box::new(job)));
        }
        self.injector.available.notify_one();
    }

    /// Enqueues a cell-batch helper *ahead* of queued request jobs.
    /// Helpers are sub-tasks of a request that is already running, so
    /// they must not wait behind the request backlog — a worker freed
    /// during a backlog should help finish in-flight batches (keeping
    /// the two-tier parallelism real) rather than start another request
    /// that will block on the same session locks.
    fn spawn_helper(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut q = self.injector.queue.lock().expect("pool queue poisoned");
            q.push_front((JobKind::Helper, Box::new(job)));
        }
        self.injector.available.notify_one();
    }

    /// Applies `f` to every item, using idle workers *and the calling
    /// thread*, and returns the results in item order.
    ///
    /// # Panics
    ///
    /// Panics if `f` panicked on any item (the panic is surfaced on the
    /// caller, not swallowed on a worker).
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers <= 1 {
            return items.iter().map(f).collect();
        }
        let shared = Arc::new(MapShared {
            items,
            f,
            next: AtomicUsize::new(0),
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        // Helpers for every worker that might be idle; surplus helpers
        // find the index exhausted and exit. The caller participates
        // below, so progress never depends on a helper running.
        for _ in 0..self.workers.min(n) {
            let shared = Arc::clone(&shared);
            self.spawn_helper(move || shared.drain());
        }
        shared.drain();
        let mut guard = shared.done_lock.lock().expect("map lock poisoned");
        while shared.remaining.load(Ordering::Acquire) > 0 {
            guard = shared.done.wait(guard).expect("map lock poisoned");
        }
        drop(guard);
        let mut slots = shared.results.lock().expect("map results poisoned");
        slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                slot.take()
                    .unwrap_or_else(|| panic!("parallel_map item {i} panicked on a worker"))
            })
            .collect()
    }
}

struct MapShared<T, R, F> {
    items: Vec<T>,
    f: F,
    next: AtomicUsize,
    results: Mutex<Vec<Option<R>>>,
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
}

impl<T, R, F: Fn(&T) -> R> MapShared<T, R, F> {
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::AcqRel);
            if i >= self.items.len() {
                return;
            }
            // Panics must still decrement `remaining`, or the caller waits
            // forever; the missing result slot reports the failure.
            let out = catch_unwind(AssertUnwindSafe(|| (self.f)(&self.items[i]))).ok();
            if let Some(r) = out {
                self.results.lock().expect("map results poisoned")[i] = Some(r);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = self.done_lock.lock().expect("map lock poisoned");
                self.done.notify_all();
            }
        }
    }
}

/// A fixed-size worker pool. Dropping it shuts the workers down after the
/// queue drains.
pub struct WorkerPool {
    handle: PoolHandle,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (minimum 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let injector = Arc::new(Injector::default());
        let handle = PoolHandle {
            injector: Arc::clone(&injector),
            workers,
        };
        let threads = (0..workers)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("dai-worker-{i}"))
                    .spawn(move || worker_loop(&injector))
                    .expect("spawn engine worker")
            })
            .collect();
        WorkerPool { handle, threads }
    }

    /// A cloneable handle for submitting work.
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handle.workers
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // The flag must be set while holding the queue mutex: a worker
        // that has checked `shutdown == false` but not yet entered
        // `Condvar::wait` still holds the lock, so storing under the lock
        // serializes with that window and the notification cannot be
        // lost (a missed notify would leave `join` below hanging).
        {
            let _guard = self
                .handle
                .injector
                .queue
                .lock()
                .expect("pool queue poisoned");
            self.handle.injector.shutdown.store(true, Ordering::Release);
        }
        self.handle.injector.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// How many queued jobs a worker claims per queue-lock acquisition when
/// the backlog is deep. Under a dense request stream (e.g. a benchmark
/// submitting its whole load up front) this turns per-job lock ping-pong
/// between submitter and worker into one lock round per batch. Shallow
/// queues are claimed one job at a time so a `parallel_map` helper
/// fan-out (at most one job per worker) spreads across workers instead
/// of being swallowed into a single worker's local batch.
const WORKER_BATCH: usize = 8;

/// A queue at or beyond this depth is a backlog worth batch-claiming;
/// below it, fairness (one job per worker) matters more than lock
/// amortization.
const DEEP_QUEUE: usize = 2 * WORKER_BATCH;

fn worker_loop(injector: &Injector) {
    let mut local: Vec<Job> = Vec::with_capacity(WORKER_BATCH);
    loop {
        {
            let mut q = injector.queue.lock().expect("pool queue poisoned");
            loop {
                // Helpers are always claimed singly (see [`JobKind`]);
                // requests are batch-claimed only under a deep backlog,
                // and a batch never reaches past a helper.
                let claim = if q.len() >= DEEP_QUEUE {
                    WORKER_BATCH
                } else {
                    1
                };
                while local.len() < claim {
                    match q.pop_front() {
                        Some((kind, job)) => {
                            local.push(job);
                            if kind == JobKind::Helper
                                || q.front().is_some_and(|(k, _)| *k == JobKind::Helper)
                            {
                                break;
                            }
                        }
                        None => break,
                    }
                }
                if !local.is_empty() {
                    break;
                }
                if injector.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = injector.available.wait(q).expect("pool queue poisoned");
            }
        }
        for job in local.drain(..) {
            // A panicking request must not take the worker down with it;
            // the requester observes the failure through its dropped reply
            // channel (or the missing parallel_map slot).
            let _ = catch_unwind(AssertUnwindSafe(job));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawned_jobs_all_run() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.handle().spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let pool = WorkerPool::new(4);
        let out = pool
            .handle()
            .parallel_map((0..1000i64).collect(), |x| x * 2);
        assert_eq!(out, (0..1000i64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_from_inside_a_request_job_cannot_deadlock() {
        // One worker: the request job occupies the only worker, so the
        // batch can only finish because the caller participates.
        let pool = WorkerPool::new(1);
        let handle = pool.handle();
        let (tx, rx) = std::sync::mpsc::channel();
        handle.clone().spawn(move || {
            let out = handle.parallel_map(vec![1, 2, 3], |x| x + 1);
            tx.send(out).unwrap();
        });
        let out = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn nested_parallel_maps_under_contention() {
        let pool = WorkerPool::new(2);
        let handle = pool.handle();
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..8 {
            let handle2 = handle.clone();
            let tx = tx.clone();
            handle.spawn(move || {
                let out = handle2.parallel_map((0..50i64).collect(), |x| x * x);
                let _ = tx.send(out.iter().sum::<i64>());
            });
        }
        for _ in 0..8 {
            let s = rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
            assert_eq!(s, (0..50i64).map(|x| x * x).sum::<i64>());
        }
    }

    #[test]
    #[should_panic(expected = "panicked on a worker")]
    fn map_panics_surface_on_the_caller() {
        let pool = WorkerPool::new(2);
        let _ = pool.handle().parallel_map(vec![0, 1, 2], |x| {
            assert!(*x != 1, "boom");
            *x
        });
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.handle().spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // must not hang
    }
}
