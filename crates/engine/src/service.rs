//! The transport-agnostic service surface of the analysis engine.
//!
//! [`Service`] is the one verb set every consumer of demanded analysis
//! programs against — open a session from source, demand states (singly,
//! as a per-function batch, or as a whole sweep), edit, snapshot, persist,
//! read statistics — with the raw [`crate::Request`]/[`crate::Response`]
//! stream hidden behind it. Two implementations exist:
//!
//! * [`Engine`] — in-process: methods route into the request stream and
//!   its coalescing queue exactly as before;
//! * `dai_rpc::Client` — remote: the same methods encode one wire frame
//!   per call (a sweep is **one** frame, landing in
//!   [`Engine::submit_query_sweep`] server-side so query coalescing and
//!   edit/load fencing survive the wire).
//!
//! Code written against `&impl Service<D>` — the REPL's sweep printer,
//! the benches, the equality tests — runs unchanged over either, which is
//! what makes "socket answers == in-process answers" a one-liner to
//! assert.

use dai_core::driver::ProgramEdit;
use dai_core::explain::ExplainReport;
use dai_lang::Loc;

use crate::engine::{
    Engine, EngineError, EngineStats, PersistOutcome, Request, Response, SessionId, Ticket,
};
use crate::session::{EditOutcome, SessionSnapshot};
use dai_persist::PersistDomain;

/// A demanded-analysis service: the engine's public verbs, independent of
/// whether they execute in-process or across a socket.
///
/// All methods take `&self`: implementations serialize internally (the
/// engine through its request stream, a remote client through its
/// connection lock), so one service handle can be shared across threads.
pub trait Service<D> {
    /// Opens a session by parsing `source`, returning its id. Sessions
    /// opened through a service are always source-backed (saveable).
    ///
    /// # Errors
    ///
    /// [`EngineError::Parse`] / [`EngineError::Cfg`] when the source does
    /// not compile; transport failures for remote implementations.
    fn open(&self, name: &str, source: &str) -> Result<SessionId, EngineError>;

    /// Closes a session, returning `false` if the id was unknown.
    ///
    /// # Errors
    ///
    /// Transport failures for remote implementations.
    fn close(&self, session: SessionId) -> Result<bool, EngineError>;

    /// Demands the abstract state at `loc` of `func`.
    ///
    /// # Errors
    ///
    /// Unknown targets, evaluation failures, or transport failures.
    fn query(&self, session: SessionId, func: &str, loc: Loc) -> Result<D, EngineError>;

    /// Demands a batch of locations against one function — served as a
    /// single coalesced batch (one session-lock acquisition, one
    /// union-cone evaluation). Members succeed or fail individually, in
    /// `locs` order.
    fn query_batch(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Result<D, EngineError>>;

    /// Demands a whole `(function, location)` sweep, coalescing each
    /// contiguous run of equal function names into one batch (sort
    /// `targets` for exactly one batch per function). Answers come back
    /// in `targets` order, each member succeeding or failing on its own.
    fn query_sweep(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Vec<Result<D, EngineError>>;

    /// Applies a program edit.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cfg`] for rejected edits (the session is unchanged).
    fn edit(&self, session: SessionId, edit: &ProgramEdit) -> Result<EditOutcome, EngineError>;

    /// Exports the session's deterministic DOT snapshot.
    ///
    /// # Errors
    ///
    /// Unknown session, or transport failures.
    fn snapshot(&self, session: SessionId) -> Result<SessionSnapshot, EngineError>;

    /// Persists the session to `path` (a path on the *serving* host for
    /// remote implementations).
    ///
    /// # Errors
    ///
    /// [`EngineError::NotReplayable`] / persistence failures.
    fn save(&self, session: SessionId, path: &str) -> Result<PersistOutcome, EngineError>;

    /// Restores a snapshot file into a fresh session.
    ///
    /// # Errors
    ///
    /// Persistence failures; the restored id is fresh on success.
    fn load(&self, path: &str) -> Result<(SessionId, PersistOutcome), EngineError>;

    /// Reads service-wide statistics (including [`crate::BatchStats`] and
    /// the saves/loads counters, so callers can assert coalescing and
    /// persistence happened — locally or across the wire).
    ///
    /// # Errors
    ///
    /// Transport failures for remote implementations.
    fn stats(&self) -> Result<EngineStats, EngineError>;

    /// Serves a `(function, location)` sweep with cost attribution and
    /// returns the capture: per-cell outcomes and wall times, the cone's
    /// work/span parallelism, lock wait vs. held time. The sweep is
    /// served synchronously under one session-lock acquisition; the
    /// answers themselves are discarded (use [`Service::query_sweep`] to
    /// keep them).
    ///
    /// # Errors
    ///
    /// Unknown session, an interprocedural-backend session (attribution
    /// requires the instrumented intraprocedural scheduler), or
    /// transport failures.
    fn explain(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Result<ExplainReport, EngineError>;
}

/// Maps a ticket's response to the queried state, sharing
/// [`Engine::query`]'s non-state guard.
fn state_of<D: dai_domains::AbstractDomain>(ticket: Ticket<D>) -> Result<D, EngineError> {
    ticket.wait().and_then(Response::state_or_invariant)
}

fn expect_response<D: dai_domains::AbstractDomain, T>(
    got: Result<Response<D>, EngineError>,
    what: &str,
    extract: impl FnOnce(Response<D>) -> Option<T>,
) -> Result<T, EngineError> {
    got.and_then(|r| {
        let desc = format!("{r:?}");
        extract(r).ok_or_else(|| {
            EngineError::Daig(dai_core::DaigError::Invariant(format!(
                "{what} answered with {desc}"
            )))
        })
    })
}

impl<D: PersistDomain> Service<D> for Engine<D> {
    fn open(&self, name: &str, source: &str) -> Result<SessionId, EngineError> {
        self.open_session_src(name, source)
    }

    fn close(&self, session: SessionId) -> Result<bool, EngineError> {
        Ok(self.close_session(session))
    }

    fn query(&self, session: SessionId, func: &str, loc: Loc) -> Result<D, EngineError> {
        Engine::query(self, session, func, loc)
    }

    fn query_batch(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Result<D, EngineError>> {
        Engine::query_batch(self, session, func, locs)
    }

    fn query_sweep(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Vec<Result<D, EngineError>> {
        self.submit_query_sweep(session, targets)
            .into_iter()
            .map(state_of)
            .collect()
    }

    fn edit(&self, session: SessionId, edit: &ProgramEdit) -> Result<EditOutcome, EngineError> {
        expect_response(
            self.request(Request::Edit {
                session,
                edit: edit.clone(),
            }),
            "edit",
            Response::into_edited,
        )
    }

    fn snapshot(&self, session: SessionId) -> Result<SessionSnapshot, EngineError> {
        expect_response(
            self.request(Request::Snapshot { session }),
            "snapshot",
            Response::into_snapshot,
        )
    }

    fn save(&self, session: SessionId, path: &str) -> Result<PersistOutcome, EngineError> {
        expect_response(
            self.request(Request::Save {
                session,
                path: path.to_string(),
            }),
            "save",
            Response::into_saved,
        )
    }

    fn load(&self, path: &str) -> Result<(SessionId, PersistOutcome), EngineError> {
        expect_response(
            self.request(Request::Load {
                path: path.to_string(),
            }),
            "load",
            Response::into_loaded,
        )
    }

    fn stats(&self) -> Result<EngineStats, EngineError> {
        Ok(Engine::stats(self))
    }

    fn explain(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Result<ExplainReport, EngineError> {
        self.explain_sweep(session, targets)
    }
}
