//! # dai-engine — a concurrent, multi-session demanded-analysis engine
//!
//! The paper's DAIGs are acyclic by construction (Definition 4.1), and its
//! §8 observes that this acyclicity is a *parallelism* license: cells on
//! the ready frontier never read each other, so independent branches of
//! the dependency hypergraph can be evaluated concurrently with no
//! soundness risk. This crate turns that observation into a long-lived
//! service:
//!
//! * [`pool`] — a fixed worker pool whose `parallel_map` lets the thread
//!   serving a request fan cell batches out to idle workers while always
//!   participating itself (deadlock-free under full load); workers claim
//!   queued jobs in small batches so a dense request stream does not
//!   ping-pong the queue lock;
//! * [`scheduler`] — topological parallel evaluation of the demanded cone
//!   over interned [`dai_core::CellId`]s: the cone is traversed **once**
//!   per evaluation into a dense missing-input-count table, writes
//!   decrement dependents through the graph's flat id adjacency, and a
//!   loop unroll patches just the spliced subgraph reported by
//!   `dai_core::FixOutcome` — per-query cost is O(cone + spliced), not
//!   O(cone × unrolls). Pure computations (`⟦·⟧♯`, `⊔`, `∇`) are applied
//!   in place on the scheduling thread (small batches / one worker) or
//!   cloned out to workers through the *same* `dai_core::apply_ready`
//!   code path the sequential evaluator uses, while `fix` edges (which
//!   mutate the graph by unrolling) stay on the scheduling thread;
//! * [`session`] — one loaded program analyzed under a configurable
//!   call-resolution backend ([`ResolverChoice`]): intraprocedural
//!   per-function `FuncAnalysis` units (parallel, the default) or an
//!   interprocedural `InterAnalyzer` matching the REPL's answers. Units
//!   are created on demand and edited incrementally; each caches its
//!   `(location → cell)` query resolutions per structural epoch, so a
//!   steady-state query is a hash lookup plus a value clone. Sessions
//!   opened from source record their edit history, which is what makes
//!   them persistable;
//! * [`engine`] — the request stream: `Query { func, loc }`,
//!   `Edit(ProgramEdit)`, `Snapshot`, `Save`/`Load` (snapshot/restore
//!   through `dai-persist` — sessions survive restarts, with lossy
//!   warm-start sections that degrade to cold on damage), and `Stats`
//!   against many sessions, served concurrently over a sharded
//!   [`dai_memo::SharedMemoTable`] that all sessions share. Responses
//!   travel through one-allocation reply slots; `Ticket::wait_all` drains
//!   a batch without a per-request sleep/wake cycle. Concurrently pending
//!   queries against the same `(session, function)` **coalesce**: a
//!   pending queue keyed by target collects them and one leader job
//!   answers the whole group from a single union-cone evaluation under a
//!   single session-lock acquisition ([`BatchStats`] counts the savings;
//!   `Engine::submit_query_batch` submits a sweep as one deliberate
//!   batch). Submit-time fences keep coalescing honest: a query enqueued
//!   after an `Edit` or `Load` was submitted is never answered from
//!   pre-mutation state — the batch splits at the fence instead.
//!
//! ## The consistency contract
//!
//! Every value the engine returns is **bit-identical** to what the
//! sequential evaluator — and therefore the from-scratch batch oracle
//! (`dai_core::batch`, Theorem 6.1) — produces for the same program and
//! location, at every worker count. The scheduler preserves this by
//! construction: a cell's value is computed by `apply_ready` from the
//! cell's own inputs, memo entries are keyed by content hashes of those
//! inputs (so cross-thread and cross-session reuse can only substitute
//! equal values), and graph mutation stays on one thread. The
//! `engine_consistency` integration suite enforces the contract against
//! randomized edit/query interleavings for 1..=8 workers.
//!
//! ## Quickstart
//!
//! ```
//! use dai_engine::{Engine, Request, Response};
//! use dai_domains::IntervalDomain;
//!
//! let program = dai_lang::cfg::lower_program(&dai_lang::parse_program(
//!     "function main() { var x = 1; while (x < 5) { x = x + 1; } return x; }",
//! )?)?;
//! let engine: Engine<IntervalDomain> = Engine::new(2);
//! let session = engine.open_session("demo", program);
//! let exit = engine.program_of(session)?.by_name("main").unwrap().exit();
//! let state = engine.query(session, "main", exit)?;
//! assert!(state.interval_of("x").contains(5));
//! assert_eq!(engine.stats().queries, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod engine;
pub mod pool;
pub mod scheduler;
pub mod service;
pub mod session;
pub mod wire;

pub use engine::{
    BatchStats, Engine, EngineConfig, EngineError, EngineStats, ExplainStats, JournalRecovery,
    PersistOutcome, QueryOptions, ReplicationStats, Request, Response, SessionId, SweepOutcome,
    Ticket,
};
// Re-exported so replication consumers (the RPC replica, the REPL's
// `journal` command) can configure and read journals without depending
// on `dai-journal` directly.
pub use dai_journal::{Journal, JournalConfig, JournalEntry, JournalRecord};
// Re-exported so explain consumers (the RPC layer, the REPL, benches)
// can name the report types without depending on `dai-core` directly.
pub use dai_core::explain::{CellCost, CellOutcome, ExplainReport, FixCost};
// Re-exported so engine users (the RPC server, the REPL) can name the
// trace types `Engine::set_tracing` / `Engine::drain_trace` work with
// without depending on `dai-trace` directly.
pub use dai_trace::{TraceDump, TraceOp};
pub use pool::{PoolHandle, WorkerPool};
pub use scheduler::evaluate_targets;
pub use service::Service;
pub use session::{EditOutcome, ResolverChoice, Session, SessionCounters, SessionSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use dai_core::driver::ProgramEdit;
    use dai_core::explain::CellOutcome;
    use dai_domains::interval::Interval;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::{parse_program, Symbol};

    const SRC: &str = "function main() { var a = 1; var b = a + 2; return b; }
                       function aux(p) { var q = p * 2; return q; }";

    fn program() -> dai_lang::cfg::LoweredProgram {
        lower_program(&parse_program(SRC).unwrap()).unwrap()
    }

    #[test]
    fn query_edit_requery_through_the_request_stream() {
        let engine: Engine<IntervalDomain> = Engine::new(2);
        let session = engine.open_session("t", program());
        let exit = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .exit();
        let before = engine.query(session, "main", exit).unwrap();
        assert_eq!(before.interval_of("b"), Interval::constant(3));
        // Edit a = 1 → a = 10 and re-query.
        let edge = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .edges()
            .find(|e| e.stmt.to_string() == "a = 1")
            .unwrap()
            .id;
        let response = engine
            .request(Request::Edit {
                session,
                edit: ProgramEdit::Relabel {
                    func: Symbol::new("main"),
                    edge,
                    stmt: dai_lang::Stmt::Assign("a".into(), dai_lang::parse_expr("10").unwrap()),
                },
            })
            .unwrap();
        assert!(matches!(response, Response::Edited(_)));
        let after = engine.query(session, "main", exit).unwrap();
        assert_eq!(after.interval_of("b"), Interval::constant(12));
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.edits, 1);
        assert_eq!(stats.sessions, 1);
    }

    #[test]
    fn sessions_are_independent_and_concurrent() {
        let engine: Engine<IntervalDomain> = Engine::new(4);
        let ids: Vec<SessionId> = (0..8)
            .map(|i| engine.open_session(format!("s{i}"), program()))
            .collect();
        let exit = engine
            .program_of(ids[0])
            .unwrap()
            .by_name("main")
            .unwrap()
            .exit();
        // Fire all queries asynchronously, then collect.
        let tickets: Vec<Ticket<IntervalDomain>> = ids
            .iter()
            .map(|&s| {
                engine.submit(Request::Query {
                    session: s,
                    func: "main".to_string(),
                    loc: exit,
                })
            })
            .collect();
        for t in tickets {
            let state = t.wait().unwrap().into_state().unwrap();
            assert_eq!(state.interval_of("b"), Interval::constant(3));
        }
        assert_eq!(engine.stats().queries, 8);
        // Memo sharing across sessions: 8 identical programs mean the
        // transfer/join entries recur, so hits must be strictly positive.
        assert!(engine.stats().memo.hits > 0, "{:?}", engine.stats().memo);
    }

    #[test]
    fn ticket_hooks_fire_once_and_try_take_never_blocks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let engine: Engine<IntervalDomain> = Engine::new(2);
        let session = engine.open_session("t", program());
        let exit = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .exit();
        let fired = Arc::new(AtomicUsize::new(0));
        let ticket = engine.submit(Request::Query {
            session,
            func: "main".to_string(),
            loc: exit,
        });
        let hook_fired = Arc::clone(&fired);
        ticket.on_ready(move || {
            hook_fired.fetch_add(1, Ordering::SeqCst);
        });
        // The hook is the poller's wakeup: once it fires, the response
        // is guaranteed to be takeable without blocking.
        while fired.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let response = ticket.try_take().expect("filled after hook fired");
        let state = response.unwrap().into_state().unwrap();
        assert_eq!(state.interval_of("b"), Interval::constant(3));
        // The slot is single-use and the hook fires exactly once.
        assert!(ticket.try_take().is_none());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Registering on an already-completed ticket fires immediately,
        // on the caller's thread.
        let done = engine.submit(Request::Stats);
        let _ = done.wait();
        let late = engine.submit(Request::Stats);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let immediate = Arc::new(AtomicUsize::new(0));
        let hook_now = Arc::clone(&immediate);
        late.on_ready(move || {
            hook_now.fetch_add(1, Ordering::SeqCst);
        });
        while immediate.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert!(late.try_take().is_some());
    }

    #[test]
    fn unknown_targets_error_cleanly() {
        let engine: Engine<IntervalDomain> = Engine::new(1);
        let session = engine.open_session("t", program());
        assert!(matches!(
            engine.query(SessionId(999), "main", dai_lang::Loc(0)),
            Err(EngineError::NoSuchSession(_))
        ));
        assert!(matches!(
            engine.query(session, "nope", dai_lang::Loc(0)),
            Err(EngineError::NoSuchFunction(_))
        ));
        assert!(matches!(
            engine.query(session, "main", dai_lang::Loc(424242)),
            Err(EngineError::Daig(dai_core::DaigError::NoSuchCell(_)))
        ));
        assert!(engine.close_session(session));
        assert!(!engine.close_session(session));
    }

    fn exit_of(engine: &Engine<IntervalDomain>, s: SessionId, f: &str) -> dai_lang::Loc {
        engine.program_of(s).unwrap().by_name(f).unwrap().exit()
    }

    #[test]
    fn rejected_edit_leaves_the_session_untouched() {
        let engine: Engine<IntervalDomain> = Engine::new(2);
        let session = engine.open_session("t", program());
        let exit = exit_of(&engine, session, "main");
        let before = engine.query(session, "main", exit).unwrap();
        let edge = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .edges()
            .find(|e| e.stmt.to_string() == "a = 1")
            .unwrap()
            .id;
        // A self-recursive call violates the call-graph invariant; the
        // edit must be rejected during staging, not half-applied.
        let err = engine
            .request(Request::Edit {
                session,
                edit: ProgramEdit::Relabel {
                    func: Symbol::new("main"),
                    edge,
                    stmt: dai_lang::Stmt::Call {
                        lhs: Some("a".into()),
                        callee: Symbol::new("main"),
                        args: vec![],
                    },
                },
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::Cfg(_)), "{err}");
        // Program text is unchanged and further requests still work.
        let still_there = engine
            .program_of(session)
            .unwrap()
            .by_name("main")
            .unwrap()
            .edges()
            .any(|e| e.stmt.to_string() == "a = 1");
        assert!(still_there, "rejected edit mutated the program");
        assert_eq!(engine.query(session, "main", exit).unwrap(), before);
        // A valid edit afterwards still applies (the session is not
        // poisoned).
        let ok = engine.request(Request::Edit {
            session,
            edit: ProgramEdit::Relabel {
                func: Symbol::new("main"),
                edge,
                stmt: dai_lang::Stmt::Assign("a".into(), dai_lang::parse_expr("7").unwrap()),
            },
        });
        assert!(ok.is_ok());
        let after = engine.query(session, "main", exit).unwrap();
        assert_eq!(after.interval_of("b"), Interval::constant(9));
        assert_eq!(engine.stats().edits, 1, "failed edits are not counted");
    }

    #[test]
    fn snapshots_are_deterministic_across_identical_sessions() {
        let engine: Engine<IntervalDomain> = Engine::new(2);
        let a = engine.open_session("snap", program());
        let b = engine.open_session("snap", program());
        for &s in &[a, b] {
            let _ = engine
                .query(s, "main", exit_of(&engine, s, "main"))
                .unwrap();
            let _ = engine.query(s, "aux", exit_of(&engine, s, "aux")).unwrap();
        }
        let snap_a = match engine.request(Request::Snapshot { session: a }).unwrap() {
            Response::Snapshot(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        let snap_b = match engine.request(Request::Snapshot { session: b }).unwrap() {
            Response::Snapshot(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            snap_a, snap_b,
            "structurally identical sessions must snapshot identically"
        );
        assert_eq!(snap_a.functions.len(), 2);
        assert!(snap_a.functions[0].1.starts_with("digraph daig {"));
    }

    const LOOP_SRC: &str = "function main() { var x = 0; while (x < 12) { x = x + 1; } return x; }
         function aux(p) { var q = p + 3; return q; }";

    fn loop_program() -> dai_lang::cfg::LoweredProgram {
        lower_program(&parse_program(LOOP_SRC).unwrap()).unwrap()
    }

    fn all_targets(engine: &Engine<IntervalDomain>, s: SessionId) -> Vec<(String, dai_lang::Loc)> {
        let program = engine.program_of(s).unwrap();
        let mut targets = Vec::new();
        for cfg in program.cfgs() {
            for loc in cfg.locs() {
                targets.push((cfg.name().to_string(), loc));
            }
        }
        targets.sort();
        targets
    }

    #[test]
    fn explain_capture_matches_query_stats_exactly() {
        let engine: Engine<IntervalDomain> = Engine::new(2);
        let session = engine.open_session("t", loop_program());
        let targets = all_targets(&engine, session);
        let before = engine.stats();
        let (results, report) = engine
            .query_sweep_with(session, &targets, QueryOptions { explain: true })
            .unwrap();
        let report = report.expect("explain was requested");
        assert_eq!(results.len(), targets.len());
        for r in &results {
            assert!(r.is_ok(), "{r:?}");
        }
        // The accounting identity: every cell record corresponds to
        // exactly one QueryStats bump of this sweep, in both directions.
        let after = engine.stats();
        let delta = after.query_stats.delta(&before.query_stats);
        report.check_accounting(&delta).unwrap();
        // A cold loop program has real work, a real critical path, and a
        // converged fix; span can never exceed work.
        assert!(report.outcome_cells(CellOutcome::Computed) > 0);
        assert!(report.converged_fixes() > 0, "{report:?}");
        assert!(report.work_ns >= report.span_ns);
        assert!(report.parallelism() >= 1.0);
        // Explain traffic keeps the engine's counter identity intact and
        // feeds the running totals.
        assert_eq!(
            after.batch.coalesced_queries + after.batch.singleton_queries,
            after.queries
        );
        assert_eq!(after.explain.reports, before.explain.reports + 1);
        assert_eq!(after.explain.cells, report.cells.len() as u64);
        assert_eq!(after.explain.domains, vec![("interval".to_string(), 1)]);
        assert_eq!(engine.last_explain().as_ref(), Some(&report));

        // A warm repeat answers everything from cached resolutions; the
        // identity must hold for the all-reused capture too.
        let before = engine.stats().query_stats;
        let warm = engine.explain_sweep(session, &targets).unwrap();
        let delta = engine.stats().query_stats.delta(&before);
        warm.check_accounting(&delta).unwrap();
        assert_eq!(
            warm.outcome_cells(CellOutcome::Reused),
            warm.cells.len() as u64,
            "{warm:?}"
        );
    }

    #[test]
    fn explain_requires_the_intraprocedural_backend() {
        let engine: Engine<IntervalDomain> = Engine::with_config(engine::EngineConfig {
            resolver: ResolverChoice::Interproc {
                policy: dai_core::ContextPolicy::CallString(1),
            },
            ..engine::EngineConfig::default()
        });
        let session = engine.open_session("t", loop_program());
        let exit = exit_of(&engine, session, "main");
        let err = engine
            .explain_sweep(session, &[("main".to_string(), exit)])
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::Daig(dai_core::DaigError::Invariant(m))
                if m.contains("intraprocedural")),
            "{err}"
        );
        // The plain sweep path still answers afterwards.
        let (results, report) = engine
            .query_sweep_with(
                session,
                &[("main".to_string(), exit)],
                QueryOptions::default(),
            )
            .unwrap();
        assert!(report.is_none());
        assert!(results[0].is_ok());
    }

    #[test]
    fn stats_request_reports_through_the_stream() {
        let engine: Engine<IntervalDomain> = Engine::new(3);
        let _ = engine.open_session("t", program());
        match engine.request(Request::Stats).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.workers, 3);
                assert_eq!(s.sessions, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
