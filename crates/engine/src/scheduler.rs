//! Topological, parallel evaluation of demanded DAIG cells.
//!
//! The paper's Definition 4.1 makes DAIGs acyclic, and §8 observes the
//! consequence this module exploits: cells on the ready frontier never
//! read each other, so they can be evaluated **concurrently** with results
//! identical to any sequential order. The scheduler alternates two moves
//! until the demanded targets are filled:
//!
//! 1. **fan-out** — clone every ready pure computation
//!    ([`dai_core::collect_ready`]) in the demanded cone and apply them on
//!    the worker pool ([`dai_core::apply_ready`] — the *same* function the
//!    sequential `query` loop uses, which is what makes concurrent results
//!    bit-identical), then write the values back;
//! 2. **fix resolution** — when no pure computation is ready, step one
//!    `fix` edge ([`dai_core::fix_step`]): either its fixed point is
//!    written or the loop unrolls and the new iterate's cone joins the
//!    demand.
//!
//! Graph mutation (write-back, unrolling) happens only on the scheduling
//! thread; workers see cloned inputs and the sharded memo table. Memo
//! races are benign: entries are keyed by content hashes of their inputs,
//! so whichever worker wins the race records the same value any loser
//! would have.

use dai_core::analysis::FuncAnalysis;
use dai_core::graph::{DaigError, Func, Value};
use dai_core::name::Name;
use dai_core::query::{apply_ready, collect_ready, fix_step, IntraResolver, QueryStats, ReadyComp};
use dai_domains::AbstractDomain;
use dai_memo::SharedMemoTable;
use std::collections::{HashMap, HashSet};

use crate::pool::PoolHandle;

/// Guard against non-converging widenings, mirroring the sequential
/// evaluator's bound.
const MAX_UNROLLS: u64 = 1_000_000;

/// Smallest frontier worth fanning out to the pool; below this the
/// cross-thread hand-off costs more than the computations.
const MIN_PARALLEL_BATCH: usize = 4;

/// Evaluates `targets` (and their transitive demands) in `fa`, fanning
/// ready computations out over `pool` and threading the shared memo table
/// through every application.
///
/// On success every target cell holds a value — the same value the
/// sequential [`dai_core::query`] evaluator produces, regardless of worker
/// count or interleaving.
///
/// # Errors
///
/// * [`DaigError::NoSuchCell`] if a target is not in the DAIG's namespace;
/// * [`DaigError::Invariant`] on internal inconsistency or divergence.
pub fn evaluate_targets<D: AbstractDomain>(
    fa: &mut FuncAnalysis<D>,
    targets: &[Name],
    memo: &SharedMemoTable<Value<D>>,
    pool: &PoolHandle,
    stats: &mut QueryStats,
) -> Result<(), DaigError> {
    for t in targets {
        if !fa.daig().contains(t) {
            return Err(DaigError::NoSuchCell(t.to_string()));
        }
        if fa.daig().value(t).is_some() {
            stats.reused += 1;
        }
    }
    let mut unroll_guard: u64 = 0;
    // Epochs: within one epoch the graph's structure is fixed, so the
    // demanded cone is traversed ONCE and then maintained incrementally —
    // each cell carries its count of distinct unfilled inputs, write-backs
    // decrement their dependents, and cells reaching zero join the ready
    // queue. Only a loop unroll (which rewrites part of the graph) ends
    // the epoch and forces a re-traversal; converging fixed points do not.
    'epoch: loop {
        // Traverse the demanded cone: unfilled cells backward-reachable
        // from the unfilled targets, each with its missing-input count.
        let daig = fa.daig();
        let mut missing: HashMap<Name, usize> = HashMap::new();
        let mut stack: Vec<Name> = targets
            .iter()
            .filter(|t| daig.value(t).is_none())
            .cloned()
            .collect();
        if stack.is_empty() {
            return Ok(());
        }
        while let Some(n) = stack.pop() {
            if missing.contains_key(&n) {
                continue;
            }
            let comp = daig.comp(&n).ok_or_else(|| {
                DaigError::Invariant(format!("empty cell {n} has no computation"))
            })?;
            let mut distinct_unfilled: HashSet<&Name> = HashSet::new();
            for s in &comp.srcs {
                if !daig.contains(s) {
                    return Err(DaigError::Invariant(format!(
                        "computation for {n} reads missing cell {s}"
                    )));
                }
                if daig.value(s).is_none() && distinct_unfilled.insert(s) {
                    stack.push(s.clone());
                }
            }
            missing.insert(n, distinct_unfilled.len());
        }
        let mut ready: Vec<Name> = missing
            .iter()
            .filter(|(_, count)| **count == 0)
            .map(|(n, _)| n.clone())
            .collect();

        // Drain the cone. Writing a cell decrements its cone-dependents'
        // counts; a cell's count reaches zero exactly once, so every cell
        // enters `ready` at most once per epoch.
        loop {
            let mut pure: Vec<Name> = Vec::new();
            let mut fixes: Vec<Name> = Vec::new();
            for n in ready.drain(..) {
                match fa.daig().comp(&n).map(|c| c.func) {
                    Some(Func::Fix) => fixes.push(n),
                    Some(_) => pure.push(n),
                    None => {
                        return Err(DaigError::Invariant(format!(
                            "ready cell {n} lost its computation"
                        )));
                    }
                }
            }
            if !pure.is_empty() {
                // Sorting makes the batch composition (and with it the
                // worker-visible order) deterministic; cell *values* do
                // not depend on it, but reproducible schedules make
                // debugging and statistics saner.
                pure.sort();
                let batch: Vec<ReadyComp<D>> = pure
                    .iter()
                    .map(|n| collect_ready(fa.daig(), n))
                    .collect::<Result<_, _>>()?;
                if batch.len() < MIN_PARALLEL_BATCH || pool.workers() <= 1 {
                    for rc in &batch {
                        let mut memo = memo.clone();
                        let v = apply_ready(rc, &mut memo, &mut IntraResolver, stats)?;
                        fa.daig_mut().write(&rc.dest, v);
                        settle_write(fa, &rc.dest, &mut missing, &mut ready);
                    }
                } else {
                    let shared = memo.clone();
                    let results = pool.parallel_map(batch, move |rc| {
                        let mut local = QueryStats::default();
                        let mut memo = shared.clone();
                        let value = apply_ready(rc, &mut memo, &mut IntraResolver, &mut local);
                        (rc.dest.clone(), value, local)
                    });
                    for (dest, value, local) in results {
                        stats.absorb(local);
                        fa.daig_mut().write(&dest, value?);
                        settle_write(fa, &dest, &mut missing, &mut ready);
                    }
                }
                // Fix cells seen this round stay ready for the next one.
                ready.extend(fixes);
                continue;
            }
            if let Some(n) = fixes.pop() {
                // Resolve one fix edge at a time: convergence is an
                // ordinary write (the epoch continues); an unroll rewrites
                // graph structure and ends the epoch.
                ready.extend(fixes);
                let cfg = fa.cfg().clone();
                if fix_step(fa.daig_mut(), &cfg, &n, stats)? {
                    settle_write(fa, &n, &mut missing, &mut ready);
                    continue;
                }
                unroll_guard += 1;
                if unroll_guard > MAX_UNROLLS {
                    return Err(DaigError::Invariant(format!(
                        "loop at {n} exceeded {MAX_UNROLLS} unrollings: \
                         widening does not converge"
                    )));
                }
                continue 'epoch;
            }
            // Nothing ready at all: done if the targets are filled;
            // otherwise the cone is wedged, which acyclicity rules out.
            if targets.iter().all(|t| fa.daig().value(t).is_some()) {
                return Ok(());
            }
            return Err(DaigError::Invariant(
                "scheduler stalled: no ready computation in the demanded cone \
                 (dependency cycle?)"
                    .to_string(),
            ));
        }
    }
}

/// After `dest` was written: drop it from the pending-count map and
/// decrement each cone-dependent's missing-input count, promoting cells
/// that reach zero onto the ready queue.
fn settle_write<D: AbstractDomain>(
    fa: &FuncAnalysis<D>,
    dest: &Name,
    missing: &mut HashMap<Name, usize>,
    ready: &mut Vec<Name>,
) {
    missing.remove(dest);
    for dep in fa.daig().dependents(dest) {
        if let Some(count) = missing.get_mut(dep) {
            if *count > 0 {
                *count -= 1;
                if *count == 0 {
                    ready.push(dep.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use dai_core::query::query;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;
    use dai_memo::MemoTable;

    type D = IntervalDomain;

    const SRC: &str = "function f(n) { var i = 0; var s = 0; \
                       while (i < 9) { var j = 0; while (j < 4) { s = s + j; j = j + 1; } i = i + 1; } \
                       return s; }";

    fn fresh() -> FuncAnalysis<D> {
        let cfg = lower_program(&parse_program(SRC).unwrap()).unwrap().cfgs()[0].clone();
        FuncAnalysis::new(cfg, IntervalDomain::top())
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let mut par = fresh();
            let memo = SharedMemoTable::new(8);
            let mut stats = QueryStats::default();
            let exit = par.cfg().exit();
            let target = Name::State {
                loc: exit,
                ctx: dai_core::name::IterCtx::root(),
            };
            evaluate_targets(
                &mut par,
                std::slice::from_ref(&target),
                &memo,
                &pool.handle(),
                &mut stats,
            )
            .unwrap();

            let mut seq = fresh();
            let mut seq_memo = MemoTable::new();
            let mut seq_stats = QueryStats::default();
            let seq_cfg = seq.cfg().clone();
            let expected = query(
                seq.daig_mut(),
                &seq_cfg,
                &mut seq_memo,
                &target,
                &mut IntraResolver,
                &mut seq_stats,
            )
            .unwrap();
            assert_eq!(
                par.daig().value(&target),
                Some(&expected),
                "workers = {workers}"
            );
            par.daig().check_well_formed().unwrap();
        }
    }

    #[test]
    fn unknown_target_is_reported() {
        let pool = WorkerPool::new(2);
        let mut fa = fresh();
        let memo = SharedMemoTable::new(2);
        let mut stats = QueryStats::default();
        let bogus = Name::State {
            loc: dai_lang::Loc(4242),
            ctx: dai_core::name::IterCtx::root(),
        };
        let err =
            evaluate_targets(&mut fa, &[bogus], &memo, &pool.handle(), &mut stats).unwrap_err();
        assert!(matches!(err, DaigError::NoSuchCell(_)));
    }

    #[test]
    fn already_filled_targets_count_as_reuse() {
        let pool = WorkerPool::new(2);
        let mut fa = fresh();
        let memo = SharedMemoTable::new(2);
        let mut stats = QueryStats::default();
        let entry = Name::State {
            loc: fa.cfg().entry(),
            ctx: dai_core::name::IterCtx::root(),
        };
        evaluate_targets(
            &mut fa,
            std::slice::from_ref(&entry),
            &memo,
            &pool.handle(),
            &mut stats,
        )
        .unwrap();
        let computed_before = stats.computed;
        evaluate_targets(&mut fa, &[entry], &memo, &pool.handle(), &mut stats).unwrap();
        assert_eq!(stats.computed, computed_before, "no recomputation");
        assert!(stats.reused >= 1);
    }
}
