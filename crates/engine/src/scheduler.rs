//! Topological, parallel evaluation of demanded DAIG cells.
//!
//! The paper's Definition 4.1 makes DAIGs acyclic, and §8 observes the
//! consequence this module exploits: cells on the ready frontier never
//! read each other, so they can be evaluated **concurrently** with results
//! identical to any sequential order. The scheduler alternates two moves
//! until the demanded targets are filled:
//!
//! 1. **fan-out** — apply every ready pure computation in the demanded
//!    cone: in place ([`dai_core::query::apply_ready_at`], borrowing
//!    inputs straight from the graph) when the batch is small or the pool
//!    has one worker, or cloned out ([`dai_core::collect_ready`]) and
//!    applied on the worker pool otherwise. Both paths run the *same*
//!    `Q-Match`/`Q-Miss` code the sequential `query` loop uses, which is
//!    what makes concurrent results bit-identical;
//! 2. **fix resolution** — when no pure computation is ready, step one
//!    `fix` edge ([`dai_core::fix_step`]): either its fixed point is
//!    written or the loop unrolls and the new iterate's subgraph joins the
//!    demand.
//!
//! # Incremental cone maintenance
//!
//! The demanded cone — unfilled cells backward-reachable from the targets
//! — is traversed **once** per evaluation ([`QueryStats::cone_walks`]
//! counts these), loading a dense [`CellId`]-indexed table of
//! missing-input counts. From then on the counts are maintained
//! incrementally: every write decrements its cone-dependents, cells
//! reaching zero join the ready queue, and when a loop *unrolls* the
//! spliced subgraph reported by [`dai_core::query::FixOutcome::Unrolled`]
//! is patched into the table — the new iterate's cells are counted and
//! the re-pointed fix cell's count is refreshed. Per-query cost is thus
//! O(cone + spliced) rather than O(cone × unrolls); convergence of a
//! fixed point was already an ordinary write.
//!
//! Graph mutation (write-back, unrolling) happens only on the scheduling
//! thread; workers see cloned inputs and the sharded memo table. Memo
//! races are benign: entries are keyed by content hashes of their inputs,
//! so whichever worker wins the race records the same value any loser
//! would have.

use dai_core::analysis::FuncAnalysis;
use dai_core::compile::TransferTable;
use dai_core::explain::ExplainSink;
use dai_core::graph::{Daig, DaigError, Func, Value};
use dai_core::intern::CellId;
use dai_core::name::Name;
use dai_core::query::{
    apply_ready_at_with, apply_ready_with, collect_ready_id, fix_step_id, CallResolver, FixOutcome,
    QueryStats, ReadyComp,
};
use dai_domains::AbstractDomain;
use dai_lang::cfg::Cfg;
use dai_memo::SharedMemoTable;

use crate::pool::PoolHandle;

/// Guard against non-converging widenings, mirroring the sequential
/// evaluator's bound.
const MAX_UNROLLS: u64 = 1_000_000;

/// Smallest frontier worth fanning out to the pool; below this the
/// cross-thread hand-off costs more than the computations.
const MIN_PARALLEL_BATCH: usize = 4;

/// Sentinel for cells outside the demanded cone.
const NOT_IN_CONE: u32 = u32::MAX;

/// Dense per-[`CellId`] missing-input counts for the demanded cone.
///
/// Loaded by one traversal, then patched: writes decrement, unroll splices
/// insert. Ids are stable across unrolls (the arena only grows), so the
/// table survives structural change — it just grows with the arena.
struct Cone {
    counts: Vec<u32>,
}

impl Cone {
    fn new(arena_len: usize) -> Cone {
        Cone {
            counts: vec![NOT_IN_CONE; arena_len],
        }
    }

    /// Tracks arena growth (new ids spliced in by unrolls).
    fn grow(&mut self, arena_len: usize) {
        if arena_len > self.counts.len() {
            self.counts.resize(arena_len, NOT_IN_CONE);
        }
    }

    #[inline]
    fn contains(&self, id: CellId) -> bool {
        self.counts.get(id.idx()).copied().unwrap_or(NOT_IN_CONE) != NOT_IN_CONE
    }

    #[inline]
    fn set(&mut self, id: CellId, count: u32) {
        self.counts[id.idx()] = count;
    }

    #[inline]
    fn remove(&mut self, id: CellId) {
        if let Some(c) = self.counts.get_mut(id.idx()) {
            *c = NOT_IN_CONE;
        }
    }

    /// Decrements `id`'s count if it is in the cone with a positive count;
    /// returns `true` when the count reaches zero (the cell became ready).
    #[inline]
    fn decrement(&mut self, id: CellId) -> bool {
        match self.counts.get_mut(id.idx()) {
            Some(c) if *c != NOT_IN_CONE && *c > 0 => {
                *c -= 1;
                *c == 0
            }
            _ => false,
        }
    }
}

/// Computes the number of *distinct* unfilled sources of `id` (dead
/// sources are reported as an invariant error), optionally pushing each
/// first-seen unfilled source onto `stack`.
fn missing_inputs<D: AbstractDomain>(
    daig: &Daig<D>,
    id: CellId,
    mut stack: Option<&mut Vec<CellId>>,
) -> Result<u32, DaigError> {
    let comp = daig.comp_slot(id).ok_or_else(|| {
        DaigError::Invariant(format!(
            "empty cell {} has no computation",
            daig.name_of(id)
        ))
    })?;
    let mut count: u32 = 0;
    for (i, &s) in comp.srcs.iter().enumerate() {
        if !daig.contains_id(s) {
            return Err(DaigError::Invariant(format!(
                "computation for {} reads missing cell {}",
                daig.name_of(id),
                daig.name_of(s)
            )));
        }
        if daig.value_id(s).is_some() || comp.srcs[..i].contains(&s) {
            continue;
        }
        count += 1;
        if let Some(stack) = stack.as_deref_mut() {
            stack.push(s);
        }
    }
    Ok(count)
}

/// Evaluates `targets` (and their transitive demands) in `fa`, fanning
/// ready computations out over `pool` and threading the shared memo table
/// through every application.
///
/// Call statements are resolved through `resolver`, cloned once per
/// worker-side application — a resolver used here must be cheap to clone
/// and correct when clones run concurrently. `dai_core::IntraResolver`
/// (the session default) trivially qualifies; a shared-summary-table
/// resolver in the style of `dai_core::summaries` (lookups against an
/// `Arc`-shared map of entry-state-keyed callee summaries) is the
/// intended future instantiation. Fully demand-driven interprocedural
/// resolution can NOT plug in here — demanding a callee's DAIG needs
/// cross-unit mutable access no worker clone can have — which is why
/// `dai_engine::session::ResolverChoice::Interproc` routes around the
/// parallel scheduler instead.
///
/// On success every target cell holds a value — the same value the
/// sequential [`dai_core::query`] evaluator produces, regardless of worker
/// count or interleaving.
///
/// # Errors
///
/// * [`DaigError::NoSuchCell`] if a target is not in the DAIG's namespace;
/// * [`DaigError::Invariant`] on internal inconsistency or divergence.
pub fn evaluate_targets<D, R>(
    fa: &mut FuncAnalysis<D>,
    targets: &[Name],
    memo: &SharedMemoTable<Value<D>>,
    resolver: &R,
    pool: &PoolHandle,
    stats: &mut QueryStats,
) -> Result<(), DaigError>
where
    D: AbstractDomain,
    R: CallResolver<D> + Clone + Send + Sync + 'static,
{
    evaluate_targets_explain(fa, targets, memo, resolver, pool, stats, None)
}

/// [`evaluate_targets`] with opt-in cost attribution: when `sink` is
/// supplied, every demanded cell's outcome, wall time, and critical-path
/// finish time is recorded into it (see [`dai_core::explain`]). The sink
/// mirrors the [`QueryStats`] movements one-for-one — each record here
/// corresponds to exactly one counter bump — which is what makes explain
/// reports accounting-exact. With `sink = None` this *is* the plain
/// evaluation path: no timestamps are taken.
pub fn evaluate_targets_explain<D, R>(
    fa: &mut FuncAnalysis<D>,
    targets: &[Name],
    memo: &SharedMemoTable<Value<D>>,
    resolver: &R,
    pool: &PoolHandle,
    stats: &mut QueryStats,
    mut sink: Option<&mut ExplainSink>,
) -> Result<(), DaigError>
where
    D: AbstractDomain,
    R: CallResolver<D> + Clone + Send + Sync + 'static,
{
    // Split borrow: the CFG is read-only for the whole evaluation, so fix
    // resolution never clones it, and the staged transfer table rides
    // along for compiled evaluation.
    let (cfg, daig, transfers) = fa.sched_parts_mut();
    let mut pending: Vec<CellId> = Vec::new();
    for t in targets {
        match daig.id_of(t) {
            None => return Err(DaigError::NoSuchCell(t.to_string())),
            Some(id) => {
                if daig.value_id(id).is_some() {
                    stats.reused += 1;
                    if let Some(s) = sink.as_deref_mut() {
                        s.record_reused(daig.name_of(id).to_string());
                    }
                } else {
                    pending.push(id);
                }
            }
        }
    }
    if pending.is_empty() {
        return Ok(());
    }
    evaluate_pending(
        daig, cfg, &pending, memo, resolver, pool, stats, transfers, sink,
    )
}

/// The drain loop over resolved, unfilled target ids.
#[allow(clippy::too_many_arguments)]
fn evaluate_pending<D, R>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    pending: &[CellId],
    memo: &SharedMemoTable<Value<D>>,
    resolver: &R,
    pool: &PoolHandle,
    stats: &mut QueryStats,
    transfers: Option<&TransferTable<D>>,
    mut sink: Option<&mut ExplainSink>,
) -> Result<(), DaigError>
where
    D: AbstractDomain,
    R: CallResolver<D> + Clone + Send + Sync + 'static,
{
    // The one full traversal: load the demanded cone — unfilled cells
    // backward-reachable from the unfilled targets — with each cell's
    // count of distinct unfilled inputs.
    stats.cone_walks += 1;
    let mut cone = Cone::new(daig.arena_len());
    let mut ready: Vec<CellId> = Vec::new();
    let mut stack: Vec<CellId> = pending.to_vec();
    while let Some(n) = stack.pop() {
        if cone.contains(n) {
            continue;
        }
        let count = missing_inputs(daig, n, Some(&mut stack))?;
        cone.set(n, count);
        stats.cone_cells += 1;
        if count == 0 {
            ready.push(n);
        }
    }

    // Drain the cone. Writing a cell decrements its cone-dependents'
    // counts; cells reaching zero join the ready queue. Loop unrolls patch
    // the spliced subgraph in; they do not end the traversal's validity.
    let mut unroll_guard: u64 = 0;
    let mut pure: Vec<CellId> = Vec::new();
    let mut fixes: Vec<CellId> = Vec::new();
    loop {
        for n in ready.drain(..) {
            match daig.comp_func(n) {
                Some(Func::Fix) => fixes.push(n),
                Some(_) => pure.push(n),
                None => {
                    return Err(DaigError::Invariant(format!(
                        "ready cell {} lost its computation",
                        daig.name_of(n)
                    )));
                }
            }
        }
        if !pure.is_empty() {
            // Sorting makes the batch composition (and with it the
            // worker-visible order) deterministic; cell *values* do not
            // depend on it, but reproducible schedules make debugging and
            // statistics saner.
            pure.sort_unstable();
            if pure.len() < MIN_PARALLEL_BATCH || pool.workers() <= 1 {
                // In-place fast path: inputs are borrowed from the graph,
                // not cloned.
                let _cells_span = dai_trace::span!("engine.cells", pure.len());
                let mut memo = memo.clone();
                let mut res = resolver.clone();
                for &id in &pure {
                    if let Some(s) = sink.as_deref_mut() {
                        let before = *stats;
                        let t0 = std::time::Instant::now();
                        let v =
                            apply_ready_at_with(daig, id, &mut memo, &mut res, stats, transfers)?;
                        let wall_ns = t0.elapsed().as_nanos() as u64;
                        s.record_applied(daig, id, &stats.delta(&before), wall_ns);
                        daig.write_id(id, v);
                    } else {
                        let v =
                            apply_ready_at_with(daig, id, &mut memo, &mut res, stats, transfers)?;
                        daig.write_id(id, v);
                    }
                    settle_write(daig, id, &mut cone, &mut ready);
                }
            } else {
                let batch: Vec<ReadyComp<D>> = pure
                    .iter()
                    .map(|&id| collect_ready_id(daig, id))
                    .collect::<Result<_, _>>()?;
                let shared = memo.clone();
                let res0 = resolver.clone();
                // Cheap fan-out: the table is an `Arc` snapshot, so each
                // worker closure shares one staged-closure store.
                let table = transfers.cloned();
                // Per-cell timestamps are taken only when a sink is
                // attached, so the plain path stays timestamp-free.
                let timed = sink.is_some();
                let results = pool.parallel_map(batch, move |rc| {
                    // One span per cell, recorded on the worker thread that
                    // evaluated it — this is what attributes flame-trace
                    // time to `dai-worker-{i}` threads.
                    let _cell_span = dai_trace::span!("engine.cells", 1);
                    let mut local = QueryStats::default();
                    let mut memo = shared.clone();
                    let mut res = res0.clone();
                    let t0 = timed.then(std::time::Instant::now);
                    let value =
                        apply_ready_with(rc, &mut memo, &mut res, &mut local, table.as_ref());
                    let wall_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    (rc.dest_id, value, local, wall_ns)
                });
                for (dest, value, local, wall_ns) in results {
                    stats.absorb(local);
                    daig.write_id(dest, value?);
                    if let Some(s) = sink.as_deref_mut() {
                        s.record_applied(daig, dest, &local, wall_ns);
                    }
                    settle_write(daig, dest, &mut cone, &mut ready);
                }
            }
            pure.clear();
            // Fix cells seen this round stay ready for the next one.
            ready.append(&mut fixes);
            continue;
        }
        if let Some(n) = fixes.pop() {
            // Resolve one fix edge at a time: convergence is an ordinary
            // write; an unroll splices a fresh iterate subgraph whose
            // counts are patched into the cone.
            ready.append(&mut fixes);
            let t0 = sink.is_some().then(std::time::Instant::now);
            let outcome = fix_step_id(daig, cfg, n, stats)?;
            if let (Some(s), Some(t0)) = (sink.as_deref_mut(), t0) {
                s.record_fix_step(daig, n, t0.elapsed().as_nanos() as u64, outcome.converged());
            }
            match outcome {
                FixOutcome::Converged => {
                    settle_write(daig, n, &mut cone, &mut ready);
                }
                FixOutcome::Unrolled { spliced } => {
                    unroll_guard += 1;
                    if unroll_guard > MAX_UNROLLS {
                        return Err(DaigError::Invariant(format!(
                            "loop at {} exceeded {MAX_UNROLLS} unrollings: \
                             widening does not converge",
                            daig.name_of(n)
                        )));
                    }
                    // Patch the spliced subgraph: every structurally
                    // changed, still-unfilled cell (re-pointed fix cell
                    // included) gets a fresh missing-input count. All of
                    // it is demanded — the new iterate feeds the fix cell
                    // that demanded the unroll — and its inputs are either
                    // filled (statement cells, the previous iterate) or
                    // themselves spliced, so no wider re-traversal is
                    // needed.
                    cone.grow(daig.arena_len());
                    for &id in &spliced {
                        if !daig.contains_id(id) || daig.value_id(id).is_some() {
                            continue;
                        }
                        let count = missing_inputs(daig, id, None)?;
                        if !cone.contains(id) {
                            stats.cone_cells += 1;
                        }
                        cone.set(id, count);
                        if count == 0 {
                            ready.push(id);
                        }
                    }
                }
            }
            continue;
        }
        // Nothing ready at all: done if the targets are filled; otherwise
        // the cone is wedged, which acyclicity rules out.
        if pending.iter().all(|&t| daig.value_id(t).is_some()) {
            return Ok(());
        }
        return Err(DaigError::Invariant(
            "scheduler stalled: no ready computation in the demanded cone \
             (dependency cycle?)"
                .to_string(),
        ));
    }
}

/// After `dest` was written: drop it from the cone and decrement each
/// cone-dependent's missing-input count, promoting cells that reach zero
/// onto the ready queue.
fn settle_write<D: AbstractDomain>(
    daig: &Daig<D>,
    dest: CellId,
    cone: &mut Cone,
    ready: &mut Vec<CellId>,
) {
    cone.remove(dest);
    for &dep in daig.dependents_ids(dest) {
        if cone.decrement(dep) {
            ready.push(dep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use dai_core::query::{query, IntraResolver};
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;
    use dai_memo::MemoTable;

    type D = IntervalDomain;

    const SRC: &str = "function f(n) { var i = 0; var s = 0; \
                       while (i < 9) { var j = 0; while (j < 4) { s = s + j; j = j + 1; } i = i + 1; } \
                       return s; }";

    fn fresh() -> FuncAnalysis<D> {
        let cfg = lower_program(&parse_program(SRC).unwrap()).unwrap().cfgs()[0].clone();
        FuncAnalysis::new(cfg, IntervalDomain::top())
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let mut par = fresh();
            let memo = SharedMemoTable::new(8);
            let mut stats = QueryStats::default();
            let exit = par.cfg().exit();
            let target = Name::State {
                loc: exit,
                ctx: dai_core::name::IterCtx::root(),
            };
            evaluate_targets(
                &mut par,
                std::slice::from_ref(&target),
                &memo,
                &IntraResolver,
                &pool.handle(),
                &mut stats,
            )
            .unwrap();

            let mut seq = fresh();
            let mut seq_memo = MemoTable::new();
            let mut seq_stats = QueryStats::default();
            let seq_cfg = seq.cfg().clone();
            let expected = query(
                seq.daig_mut(),
                &seq_cfg,
                &mut seq_memo,
                &target,
                &mut IntraResolver,
                &mut seq_stats,
            )
            .unwrap();
            assert_eq!(
                par.daig().value(&target),
                Some(&expected),
                "workers = {workers}"
            );
            par.daig().check_well_formed().unwrap();
        }
    }

    #[test]
    fn unknown_target_is_reported() {
        let pool = WorkerPool::new(2);
        let mut fa = fresh();
        let memo = SharedMemoTable::new(2);
        let mut stats = QueryStats::default();
        let bogus = Name::State {
            loc: dai_lang::Loc(4242),
            ctx: dai_core::name::IterCtx::root(),
        };
        let err = evaluate_targets(
            &mut fa,
            &[bogus],
            &memo,
            &IntraResolver,
            &pool.handle(),
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, DaigError::NoSuchCell(_)));
    }

    #[test]
    fn already_filled_targets_count_as_reuse() {
        let pool = WorkerPool::new(2);
        let mut fa = fresh();
        let memo = SharedMemoTable::new(2);
        let mut stats = QueryStats::default();
        let entry = Name::State {
            loc: fa.cfg().entry(),
            ctx: dai_core::name::IterCtx::root(),
        };
        evaluate_targets(
            &mut fa,
            std::slice::from_ref(&entry),
            &memo,
            &IntraResolver,
            &pool.handle(),
            &mut stats,
        )
        .unwrap();
        let computed_before = stats.computed;
        evaluate_targets(
            &mut fa,
            &[entry],
            &memo,
            &IntraResolver,
            &pool.handle(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.computed, computed_before, "no recomputation");
        assert!(stats.reused >= 1);
    }

    #[test]
    fn demanded_cone_is_traversed_once_despite_unrolls() {
        // The nested-loop workload needs several unrollings to converge;
        // incremental cone maintenance must keep the traversal count at
        // one — the whole point of patching spliced subgraphs instead of
        // ending the epoch.
        let pool = WorkerPool::new(1);
        let mut fa = fresh();
        let memo = SharedMemoTable::new(2);
        let mut stats = QueryStats::default();
        let exit = Name::State {
            loc: fa.cfg().exit(),
            ctx: dai_core::name::IterCtx::root(),
        };
        evaluate_targets(
            &mut fa,
            std::slice::from_ref(&exit),
            &memo,
            &IntraResolver,
            &pool.handle(),
            &mut stats,
        )
        .unwrap();
        assert!(
            stats.unrolls >= 2,
            "workload must unroll several times (got {})",
            stats.unrolls
        );
        assert_eq!(
            stats.cone_walks, 1,
            "one traversal regardless of {} unrolls",
            stats.unrolls
        );
        // A repeated evaluation reuses the filled target without walking
        // anything.
        evaluate_targets(
            &mut fa,
            &[exit],
            &memo,
            &IntraResolver,
            &pool.handle(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.cone_walks, 1, "filled targets walk nothing");
        fa.daig().check_well_formed().unwrap();
    }
}
