//! The long-lived analysis engine: sessions, a request stream, and the
//! worker pool that serves both requests and intra-query cell batches.
//!
//! Concurrency structure:
//!
//! * the **session map** is behind an `RwLock`; opening/closing sessions
//!   takes the write lock, serving requests only reads it;
//! * each **session** is behind its own `Mutex`, so requests against the
//!   same program serialize (edits and queries interleave safely) while
//!   different sessions run in parallel across workers;
//! * the **memo table** is the sharded [`SharedMemoTable`], shared by all
//!   sessions and workers — cross-session reuse is sound because entries
//!   are keyed by content hashes of the computation's inputs;
//! * **requests** are submitted with [`Engine::submit`] (returning a
//!   [`Ticket`]) or synchronously with [`Engine::request`]; workers pull
//!   them FIFO and run them to completion, fanning per-frontier cell
//!   batches back onto the pool (see [`crate::scheduler`]);
//! * **queries coalesce**: concurrently pending `Request::Query`s against
//!   the same `(session, function)` are collected in a pending queue and
//!   answered by one *leader* job, which drains them under a **single**
//!   session-lock acquisition and evaluates one **union** demanded cone
//!   for the whole batch ([`crate::session::Session::query_locs`]).
//!   [`Engine::submit_query_batch`] submits a sweep as one deliberate
//!   batch; [`BatchStats`] counts what coalescing saved.
//!
//! ## Edit fencing
//!
//! Coalescing must not reorder a query past a mutation that was submitted
//! before it: a query enqueued *after* an `Edit` (or a `Load`) was
//! submitted must never be answered from pre-edit state. Every `Edit`
//! bumps its session's fence (and every `Load` the engine-global fence)
//! at **submit** time; queries are stamped with the fence values they
//! were enqueued under, and a draining leader only takes members whose
//! stamps are covered by the fences already **applied**. Later-stamped
//! members stay pending — the batch *splits* at the fence — and the
//! fencing request re-kicks them once it completes (success or failure;
//! a failed edit still advances the fence, which is sound because it
//! changed nothing).

use dai_core::compile::TransferMode;
use dai_core::driver::ProgramEdit;
use dai_core::explain::{CellOutcome, ExplainReport, ExplainSink};
use dai_core::graph::{DaigError, Value};
use dai_core::query::QueryStats;
use dai_core::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_journal::{Journal, JournalConfig, JournalEntry, JournalRecord};
use dai_lang::cfg::{lower_program, LoweredProgram};
use dai_lang::{CfgError, Loc};
use dai_memo::{MemoKey, MemoStats, SharedMemoTable};
use dai_persist::{
    read_snapshot_file, write_snapshot_file_durable, Durability, Persist, PersistDomain,
    PersistError, Reader, SessionImage, Writer,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use crate::pool::{PoolHandle, WorkerPool};
use crate::session::{EditOutcome, ResolverChoice, Session, SessionCounters, SessionSnapshot};

/// Identifies a session within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Shards of the shared memo table.
    pub memo_shards: usize,
    /// Optional total memo capacity (entries) across shards.
    pub memo_capacity: Option<usize>,
    /// Loop-head iteration strategy applied to every session.
    pub strategy: FixStrategy,
    /// Call-resolution backend applied to every session (see
    /// [`ResolverChoice`]).
    pub resolver: ResolverChoice,
    /// Transfer-evaluation mode applied to every session: staged
    /// per-edge closures (the default) or the AST interpreter (see
    /// [`dai_core::compile`]). Both are bit-identical on every value.
    pub transfer: TransferMode,
    /// Fsync policy for snapshot saves (and, unless overridden in the
    /// [`JournalConfig`] handed to [`Engine::open_journal`], journal
    /// appends). `Fast` keeps the historical tmp+rename-only behavior.
    pub durability: Durability,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 1,
            memo_shards: SharedMemoTable::<()>::DEFAULT_SHARDS,
            memo_capacity: None,
            strategy: FixStrategy::PAPER,
            resolver: ResolverChoice::Intra,
            transfer: TransferMode::Compiled,
            durability: Durability::Fast,
        }
    }
}

/// One request in the engine's stream.
#[derive(Debug, Clone)]
pub enum Request {
    /// Demand the abstract state at `loc` of `func`.
    Query {
        /// Target session.
        session: SessionId,
        /// Function name.
        func: String,
        /// Program location.
        loc: Loc,
    },
    /// Apply a program edit.
    Edit {
        /// Target session.
        session: SessionId,
        /// The edit.
        edit: ProgramEdit,
    },
    /// Export a deterministic DOT snapshot of the session's DAIGs.
    Snapshot {
        /// Target session.
        session: SessionId,
    },
    /// Persist a session (source + edit history + demanded DAIGs, plus
    /// the shared memo table) to a snapshot file. Serialized behind the
    /// session's lock like `Edit`, so the saved image is a consistent
    /// point in the request stream.
    Save {
        /// Target session (must have been opened from source —
        /// [`crate::Engine::open_session_src`]).
        session: SessionId,
        /// Destination file path.
        path: String,
    },
    /// Restore a snapshot file into a **new** session (the saved session
    /// name is kept; the id is fresh). Damaged or version-skewed DAIG /
    /// memo sections degrade to a cold start; see `dai-persist`.
    Load {
        /// Source file path.
        path: String,
    },
    /// Read engine-wide statistics.
    Stats,
}

/// What a save or load moved, and what a lossy restore dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistOutcome {
    /// Snapshot file size in bytes.
    pub bytes: usize,
    /// Function DAIGs written (save) or installed warm (load).
    pub funcs: usize,
    /// Function DAIGs dropped on load (damaged section, failed
    /// validation, or an interprocedural session that takes no warm
    /// units) — each one cold-starts, which is sound.
    pub funcs_dropped: usize,
    /// Memo entries written (save) or imported (load).
    pub memo_entries: usize,
    /// Memo sections dropped on load.
    pub memo_sections_dropped: usize,
    /// The file ended mid-section (load only).
    pub truncated: bool,
}

impl PersistOutcome {
    /// `true` when a load brought back any warm state.
    pub fn is_warm(&self) -> bool {
        self.funcs > 0 || self.memo_entries > 0
    }
}

/// A successful response.
#[derive(Clone)]
pub enum Response<D> {
    /// The queried abstract state.
    State(D),
    /// Structural outcome of an edit.
    Edited(EditOutcome),
    /// The session snapshot.
    Snapshot(SessionSnapshot),
    /// The session was persisted.
    Saved(PersistOutcome),
    /// A snapshot file was restored into a fresh session.
    Loaded {
        /// The restored session's id.
        session: SessionId,
        /// What was restored and what was dropped.
        outcome: PersistOutcome,
    },
    /// Engine statistics (boxed — the stats dwarf every other variant).
    Stats(Box<EngineStats>),
}

impl<D> Response<D> {
    /// The state, if this response carries one.
    pub fn into_state(self) -> Option<D> {
        match self {
            Response::State(d) => Some(d),
            _ => None,
        }
    }

    /// The edit outcome, if this response carries one.
    pub fn into_edited(self) -> Option<EditOutcome> {
        match self {
            Response::Edited(o) => Some(o),
            _ => None,
        }
    }

    /// The session snapshot, if this response carries one.
    pub fn into_snapshot(self) -> Option<SessionSnapshot> {
        match self {
            Response::Snapshot(s) => Some(s),
            _ => None,
        }
    }

    /// The save outcome, if this response carries one.
    pub fn into_saved(self) -> Option<PersistOutcome> {
        match self {
            Response::Saved(o) => Some(o),
            _ => None,
        }
    }

    /// The restored session id and outcome, if this response carries one.
    pub fn into_loaded(self) -> Option<(SessionId, PersistOutcome)> {
        match self {
            Response::Loaded { session, outcome } => Some((session, outcome)),
            _ => None,
        }
    }

    /// The engine statistics, if this response carries them.
    pub fn into_stats(self) -> Option<EngineStats> {
        match self {
            Response::Stats(s) => Some(*s),
            _ => None,
        }
    }
}

impl<D: AbstractDomain> Response<D> {
    /// The queried state, or the invariant error every query path
    /// reports when a query is somehow answered with a different
    /// response kind.
    ///
    /// # Errors
    ///
    /// [`EngineError::Daig`] with [`DaigError::Invariant`] for non-state
    /// responses.
    pub fn state_or_invariant(self) -> Result<D, EngineError> {
        match self {
            Response::State(d) => Ok(d),
            other => Err(EngineError::Daig(DaigError::Invariant(format!(
                "query answered with a non-state response {other:?}",
            )))),
        }
    }
}

/// Failures surfaced to requesters.
#[derive(Debug)]
pub enum EngineError {
    /// Unknown session id.
    NoSuchSession(SessionId),
    /// Unknown function within a session.
    NoSuchFunction(String),
    /// A DAIG-level failure.
    Daig(DaigError),
    /// A CFG-level edit failure.
    Cfg(CfgError),
    /// A snapshot codec or I/O failure.
    Persist(PersistError),
    /// A restored source failed to parse (the snapshot header lied).
    Parse(String),
    /// The session cannot be saved: it was opened without source text, so
    /// there is no replayable description to persist.
    NotReplayable(String),
    /// The session is a read-only replica: its state is replayed from a
    /// leader's journal, and accepting a local edit would fork it from
    /// the leader. Edit on the leader instead; the change replicates.
    ReadOnly(SessionId),
    /// The responder was dropped (worker panicked or engine shut down).
    Disconnected,
    /// A failure reported by a remote service (`dai-rpc` clients map
    /// wire errors that have no local counterpart into this variant).
    /// `code` is the wire protocol's stable error code.
    Remote {
        /// The stable error code (see `dai-rpc`'s `WireError::code`).
        code: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchSession(id) => write!(f, "no such session {id}"),
            EngineError::NoSuchFunction(name) => write!(f, "no such function `{name}`"),
            EngineError::Daig(e) => write!(f, "{e}"),
            EngineError::Cfg(e) => write!(f, "{e}"),
            EngineError::Persist(e) => write!(f, "{e}"),
            EngineError::Parse(m) => write!(f, "snapshot source does not parse: {m}"),
            EngineError::NotReplayable(name) => write!(
                f,
                "session `{name}` was opened without source text and cannot be saved \
                 (open it with open_session_src)"
            ),
            EngineError::ReadOnly(id) => write!(
                f,
                "session {id} is a read-only replica (edits must go to the leader)"
            ),
            EngineError::Disconnected => write!(f, "engine request dropped (worker failure)"),
            EngineError::Remote { code, message } => {
                write!(f, "remote service [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DaigError> for EngineError {
    fn from(e: DaigError) -> EngineError {
        EngineError::Daig(e)
    }
}

impl From<CfgError> for EngineError {
    fn from(e: CfgError) -> EngineError {
        EngineError::Cfg(e)
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> EngineError {
        EngineError::Persist(e)
    }
}

/// A single-use reply slot: one allocation per request instead of an
/// mpsc channel, with `Condvar` wakeup for the waiter and an optional
/// completion hook for pollers that must not block (the RPC event loop).
struct Oneshot<D> {
    slot: Mutex<Option<Result<Response<D>, EngineError>>>,
    ready: Condvar,
    /// Fired (at most once) when the slot is filled. Stored and taken
    /// under `slot`'s lock, so registration can never race a concurrent
    /// fill into a lost wakeup.
    hook: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl<D> Oneshot<D> {
    /// Fills the slot and delivers both wakeup paths: the blocking
    /// waiter's condvar and the registered completion hook, if any. The
    /// hook runs *after* the slot lock is released, on the producing
    /// thread, with the value already visible to [`Ticket::try_take`].
    fn fill(&self, value: Result<Response<D>, EngineError>) {
        let hook = {
            let mut slot = self.slot.lock().expect("ticket slot poisoned");
            *slot = Some(value);
            self.hook.lock().expect("ticket hook poisoned").take()
        };
        self.ready.notify_one();
        if let Some(hook) = hook {
            hook();
        }
    }
}

/// The producing side of a [`Ticket`]'s reply slot. Dropping it without
/// replying (worker panic) delivers [`EngineError::Disconnected`], so a
/// waiter can never hang.
struct Responder<D> {
    cell: Arc<Oneshot<D>>,
    sent: bool,
}

impl<D> Responder<D> {
    fn send(mut self, value: Result<Response<D>, EngineError>) {
        self.sent = true;
        self.cell.fill(value);
    }
}

impl<D> Drop for Responder<D> {
    fn drop(&mut self) {
        if !self.sent {
            self.cell.fill(Err(EngineError::Disconnected));
        }
    }
}

/// A pending response; [`Ticket::wait`] blocks until the worker finishes.
pub struct Ticket<D> {
    cell: Arc<Oneshot<D>>,
}

impl<D> Ticket<D> {
    /// Blocks for the response.
    ///
    /// # Errors
    ///
    /// The request's own failure, or [`EngineError::Disconnected`] if the
    /// worker died.
    pub fn wait(self) -> Result<Response<D>, EngineError> {
        let mut guard = self.cell.slot.lock().expect("ticket slot poisoned");
        loop {
            if let Some(v) = guard.take() {
                return v;
            }
            guard = self.cell.ready.wait(guard).expect("ticket slot poisoned");
        }
    }

    /// Takes the response if the worker has already delivered it,
    /// without blocking. Returns `None` while the request is still in
    /// flight (or if the response was already taken). A poller that saw
    /// [`Ticket::on_ready`] fire is guaranteed `Some` on its first call.
    pub fn try_take(&self) -> Option<Result<Response<D>, EngineError>> {
        self.cell.slot.lock().expect("ticket slot poisoned").take()
    }

    /// Registers a completion hook, fired exactly once when the response
    /// is delivered (immediately, on the caller's thread, if it already
    /// was). The hook runs on whichever thread fills the reply slot —
    /// keep it tiny and non-blocking (push a token, wake an event loop);
    /// heavy work belongs on the loop that polls [`Ticket::try_take`].
    /// Registering a second hook replaces an unfired first.
    pub fn on_ready(&self, hook: impl FnOnce() + Send + 'static) {
        {
            let slot = self.cell.slot.lock().expect("ticket slot poisoned");
            if slot.is_none() {
                *self.cell.hook.lock().expect("ticket hook poisoned") = Some(Box::new(hook));
                return;
            }
        }
        hook();
    }

    /// Waits for a whole batch, returning responses in submission order.
    ///
    /// Internally the batch is drained in *reverse* submission order:
    /// workers serve the queue roughly FIFO, so the last ticket completes
    /// around the time the whole batch does, and by the time it resolves
    /// the earlier tickets are already filled and return without
    /// blocking. Waiting in submission order instead would put the caller
    /// to sleep once per ticket — on a single-CPU host that is two
    /// context switches per request, which dominates a dense request
    /// stream.
    ///
    /// # Errors
    ///
    /// The first failing response (by submission order), as
    /// [`Ticket::wait`].
    pub fn wait_all(tickets: Vec<Ticket<D>>) -> Result<Vec<Response<D>>, EngineError> {
        let mut out: Vec<Option<Result<Response<D>, EngineError>>> =
            tickets.iter().map(|_| None).collect();
        for (i, t) in tickets.into_iter().enumerate().rev() {
            out[i] = Some(t.wait());
        }
        out.into_iter()
            .map(|r| r.expect("every ticket waited"))
            .collect()
    }
}

/// Per-call query options (see [`Engine::query_sweep_with`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Capture an [`ExplainReport`] for the sweep: the whole sweep is
    /// served synchronously under one session-lock acquisition with cost
    /// attribution riding the evaluation. Off by default — the regular
    /// coalescing path takes no timestamps at all.
    pub explain: bool,
}

/// Per-member sweep answers paired with the optional explain capture
/// (`None` unless [`QueryOptions::explain`] was set).
pub type SweepOutcome<D> = (Vec<Result<D, EngineError>>, Option<ExplainReport>);

/// Aggregate cost-attribution counters across every explain capture the
/// engine has served (each capture also yields its own
/// [`ExplainReport`]; these are the running totals `stats` exposes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplainStats {
    /// Explain captures served.
    pub reports: u64,
    /// Cell records attributed across all captures.
    pub cells: u64,
    /// Fix-cell records attributed across all captures.
    pub fixes: u64,
    /// Total attributed work, ns.
    pub work_ns: u64,
    /// Summed critical-path spans, ns.
    pub span_ns: u64,
    /// Work attributed to `Q-Miss` (computed) cells, ns.
    pub computed_ns: u64,
    /// Work attributed to `Q-Match` (memo) cells, ns.
    pub memo_matched_ns: u64,
    /// Work attributed to fix resolution, ns.
    pub fix_ns: u64,
    /// Captures per domain tag, sorted by tag. An engine is
    /// single-domain, so this normally holds one entry — the `Vec`
    /// keeps the stats domain-erased for the wire.
    pub domains: Vec<(String, u64)>,
}

impl ExplainStats {
    /// Folds one finished capture into the totals.
    pub fn absorb_report(&mut self, report: &ExplainReport) {
        self.reports += 1;
        self.cells += report.cells.len() as u64;
        self.fixes += report.fixes.len() as u64;
        self.work_ns += report.work_ns;
        self.span_ns += report.span_ns;
        self.computed_ns += report.outcome_ns(CellOutcome::Computed);
        self.memo_matched_ns += report.outcome_ns(CellOutcome::MemoMatched);
        self.fix_ns += report.fix_ns();
        match self
            .domains
            .binary_search_by(|(d, _)| d.as_str().cmp(report.domain.as_str()))
        {
            Ok(i) => self.domains[i].1 += 1,
            Err(i) => self.domains.insert(i, (report.domain.clone(), 1)),
        }
    }
}

/// Journal/replication counters: what the engine has durably logged
/// (leader side) and what it has applied from someone else's journal
/// (follower side). Either half may be all zeros — a plain engine has
/// no journal and never applies; a follower has the second half only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Whether a journal is attached ([`Engine::open_journal`]).
    pub journal_attached: bool,
    /// Highest sequence number the journal has handed out.
    pub journal_last_seq: u64,
    /// Good frames currently in the journal file.
    pub journal_frames: u64,
    /// Highest journal sequence number applied via
    /// [`Engine::apply_journal_entry`] (recovery replay + replication).
    pub applied_seq: u64,
    /// Entries applied via [`Engine::apply_journal_entry`].
    pub applied_frames: u64,
}

/// Engine-wide counters plus the shared memo statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Worker threads serving the engine.
    pub workers: usize,
    /// Open sessions.
    pub sessions: usize,
    /// Queries served — every member that received an answer, including
    /// per-member failures (an unknown location still got its error).
    pub queries: u64,
    /// Edits applied.
    pub edits: u64,
    /// Snapshots exported.
    pub snapshots: u64,
    /// Sessions saved to disk.
    pub saves: u64,
    /// Sessions restored from disk.
    pub loads: u64,
    /// Session-lock acquisitions taken to serve requests. A coalesced
    /// query batch takes exactly one; N sequential queries take N.
    pub session_locks: u64,
    /// Cross-request query-coalescing counters.
    pub batch: BatchStats,
    /// Aggregated evaluation work (computed/memo-matched/reused cells,
    /// unrollings, fixed points) across all requests.
    pub query_stats: QueryStats,
    /// Running totals across explain captures.
    pub explain: ExplainStats,
    /// Shared memo table counters.
    pub memo: MemoStats,
    /// Journal and replication counters.
    pub replication: ReplicationStats,
}

impl EngineStats {
    /// Publishes every counter into the process metrics registry as
    /// `dai_*` gauges. Gauges, not counters: a stats snapshot is a
    /// last-value-wins observation, and re-publishing must not double.
    pub fn publish_metrics(&self) {
        let m = dai_trace::metrics();
        m.gauge("dai_engine_workers").set(self.workers as u64);
        m.gauge("dai_engine_sessions").set(self.sessions as u64);
        m.gauge("dai_engine_queries").set(self.queries);
        m.gauge("dai_engine_edits").set(self.edits);
        m.gauge("dai_engine_snapshots").set(self.snapshots);
        m.gauge("dai_engine_saves").set(self.saves);
        m.gauge("dai_engine_loads").set(self.loads);
        m.gauge("dai_engine_session_locks").set(self.session_locks);
        m.gauge("dai_engine_batches").set(self.batch.batches);
        m.gauge("dai_engine_coalesced_queries")
            .set(self.batch.coalesced_queries);
        m.gauge("dai_engine_singleton_queries")
            .set(self.batch.singleton_queries);
        m.gauge("dai_engine_union_cone_cells")
            .set(self.batch.union_cone_cells);
        m.gauge("dai_engine_union_cone_walks")
            .set(self.batch.union_cone_walks);
        m.gauge("dai_query_cells_computed")
            .set(self.query_stats.computed);
        m.gauge("dai_query_cells_memo_matched")
            .set(self.query_stats.memo_matched);
        m.gauge("dai_query_cells_reused")
            .set(self.query_stats.reused);
        m.gauge("dai_query_unrolls").set(self.query_stats.unrolls);
        m.gauge("dai_query_fix_converged")
            .set(self.query_stats.fix_converged);
        m.gauge("dai_query_cone_walks")
            .set(self.query_stats.cone_walks);
        m.gauge("dai_query_cone_cells")
            .set(self.query_stats.cone_cells);
        m.gauge("dai_transfer_compiled_total")
            .set(self.query_stats.transfers_compiled);
        m.gauge("dai_transfer_interp_fallback_total")
            .set(self.query_stats.transfers_interp);
        m.gauge("dai_explain_reports").set(self.explain.reports);
        m.gauge("dai_explain_cells").set(self.explain.cells);
        m.gauge("dai_explain_fixes").set(self.explain.fixes);
        m.gauge("dai_explain_work_ns").set(self.explain.work_ns);
        m.gauge("dai_explain_span_ns").set(self.explain.span_ns);
        m.gauge("dai_memo_hits").set(self.memo.hits);
        m.gauge("dai_memo_misses").set(self.memo.misses);
        m.gauge("dai_memo_insertions").set(self.memo.insertions);
        m.gauge("dai_memo_evictions").set(self.memo.evictions);
        m.gauge("dai_journal_attached")
            .set(u64::from(self.replication.journal_attached));
        m.gauge("dai_journal_last_seq")
            .set(self.replication.journal_last_seq);
        m.gauge("dai_journal_frames")
            .set(self.replication.journal_frames);
        m.gauge("dai_replica_applied_seq")
            .set(self.replication.applied_seq);
        m.gauge("dai_replica_applied_frames")
            .set(self.replication.applied_frames);
    }

    /// The stats as one line of JSON, mirroring the struct's nesting.
    /// This is the `stats --json` schema; a REPL test locks it.
    pub fn to_json(&self) -> String {
        let mut domains = String::new();
        for (i, (tag, n)) in self.explain.domains.iter().enumerate() {
            if i > 0 {
                domains.push(',');
            }
            use std::fmt::Write as _;
            let _ = write!(domains, "\"{tag}\":{n}");
        }
        format!(
            "{{\"workers\":{},\"sessions\":{},\"queries\":{},\"edits\":{},\
             \"snapshots\":{},\"saves\":{},\"loads\":{},\"session_locks\":{},\
             \"batch\":{{\"batches\":{},\"coalesced_queries\":{},\
             \"singleton_queries\":{},\"union_cone_cells\":{},\
             \"union_cone_walks\":{}}},\
             \"query_stats\":{{\"computed\":{},\"memo_matched\":{},\
             \"reused\":{},\"unrolls\":{},\"fix_converged\":{},\
             \"cone_walks\":{},\"cone_cells\":{},\
             \"transfers_compiled\":{},\"transfers_interp\":{}}},\
             \"explain\":{{\"reports\":{},\"cells\":{},\"fixes\":{},\
             \"work_ns\":{},\"span_ns\":{},\"computed_ns\":{},\
             \"memo_matched_ns\":{},\"fix_ns\":{},\"domains\":{{{}}}}},\
             \"memo\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\
             \"evictions\":{}}},\
             \"replication\":{{\"journal_attached\":{},\
             \"journal_last_seq\":{},\"journal_frames\":{},\
             \"applied_seq\":{},\"applied_frames\":{}}}}}",
            self.workers,
            self.sessions,
            self.queries,
            self.edits,
            self.snapshots,
            self.saves,
            self.loads,
            self.session_locks,
            self.batch.batches,
            self.batch.coalesced_queries,
            self.batch.singleton_queries,
            self.batch.union_cone_cells,
            self.batch.union_cone_walks,
            self.query_stats.computed,
            self.query_stats.memo_matched,
            self.query_stats.reused,
            self.query_stats.unrolls,
            self.query_stats.fix_converged,
            self.query_stats.cone_walks,
            self.query_stats.cone_cells,
            self.query_stats.transfers_compiled,
            self.query_stats.transfers_interp,
            self.explain.reports,
            self.explain.cells,
            self.explain.fixes,
            self.explain.work_ns,
            self.explain.span_ns,
            self.explain.computed_ns,
            self.explain.memo_matched_ns,
            self.explain.fix_ns,
            domains,
            self.memo.hits,
            self.memo.misses,
            self.memo.insertions,
            self.memo.evictions,
            self.replication.journal_attached,
            self.replication.journal_last_seq,
            self.replication.journal_frames,
            self.replication.applied_seq,
            self.replication.applied_frames,
        )
    }
}

/// What query coalescing did: every served query is either a member of a
/// coalesced batch or a singleton, so
/// `coalesced_queries + singleton_queries` equals the total number of
/// queries the engine answered (successes and per-member failures alike).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Coalesced batches served: drains that answered **two or more**
    /// queries under one session-lock acquisition.
    pub batches: u64,
    /// Queries answered as members of coalesced batches.
    pub coalesced_queries: u64,
    /// Queries that were alone in their drain (no coalescing happened).
    pub singleton_queries: u64,
    /// Cells loaded into union demanded-cone tables by coalesced batch
    /// evaluations (`QueryStats::cone_cells` of the shared work). For a
    /// coalesced pair this is at most the sum of the two solo cone walks
    /// — the sharing the paper's demanded cones make possible.
    pub union_cone_cells: u64,
    /// Union-cone traversals performed by coalesced batch evaluations; a
    /// cold coalesced batch performs exactly one.
    pub union_cone_walks: u64,
}

/// A submitted/applied counter pair ordering queries after mutations (see
/// the module docs on edit fencing).
#[derive(Default)]
struct Fence {
    submitted: AtomicU64,
    applied: AtomicU64,
}

/// One query waiting in the coalescing queue.
struct PendingQuery<D> {
    loc: Loc,
    responder: Responder<D>,
    /// The target session's fence at enqueue time.
    fence: u64,
    /// The engine-global (load) fence at enqueue time.
    global_fence: u64,
}

/// The coalescing key: queries against the same session *and* function
/// share one demanded-cone evaluation (under `ResolverChoice::Interproc`
/// the session resolves the function's `(function, context)` units behind
/// the same single lock acquisition).
type BatchKey = (SessionId, String);

/// The correspondence between journal session ids and this engine's
/// local [`SessionId`]s. Journal ids are allocated independently of
/// local ids (local ids restart at 1 on every process, journal ids live
/// as long as the file), so both directions need a map.
#[derive(Default)]
struct JournalMap {
    /// Journal session id → local session.
    to_local: HashMap<u64, SessionId>,
    /// Local session → journal session id (leader append path).
    to_journal: HashMap<SessionId, u64>,
    /// Next journal session id to hand out (above every replayed one).
    next_id: u64,
}

impl JournalMap {
    fn bind(&mut self, journal_id: u64, local: SessionId) {
        self.to_local.insert(journal_id, local);
        self.to_journal.insert(local, journal_id);
        self.next_id = self.next_id.max(journal_id + 1);
    }

    fn unbind_local(&mut self, local: SessionId) -> Option<u64> {
        let journal_id = self.to_journal.remove(&local)?;
        self.to_local.remove(&journal_id);
        Some(journal_id)
    }
}

struct EngineShared<D: AbstractDomain> {
    sessions: RwLock<HashMap<SessionId, Arc<Mutex<Session<D>>>>>,
    /// Per-session fences. Entries are created on first use and kept for
    /// the engine's lifetime (session ids are never reused, so a stale
    /// fence is unreachable, and keeping it avoids close/submit races).
    fences: RwLock<HashMap<SessionId, Arc<Fence>>>,
    global_fence: Fence,
    /// The pending-query coalescing queue. Invariant: an entry is present
    /// iff it is non-empty, and then either a leader job is queued/running
    /// for its key or every member is deferred behind a fence whose
    /// completion will re-kick it.
    pending: Mutex<HashMap<BatchKey, Vec<PendingQuery<D>>>>,
    memo: SharedMemoTable<Value<D>>,
    strategy: FixStrategy,
    resolver: ResolverChoice,
    transfer: TransferMode,
    next_session: AtomicU64,
    queries: AtomicU64,
    edits: AtomicU64,
    snapshots: AtomicU64,
    saves: AtomicU64,
    loads: AtomicU64,
    session_locks: AtomicU64,
    batches: AtomicU64,
    coalesced_queries: AtomicU64,
    singleton_queries: AtomicU64,
    union_cone_cells: AtomicU64,
    union_cone_walks: AtomicU64,
    query_stats: Mutex<QueryStats>,
    /// Fsync policy for saves and (by default) journal appends.
    durability: Durability,
    /// The attached journal, if any ([`Engine::open_journal`]). Writes
    /// happen with the owning session's lock held, so one session's
    /// frames appear in its edit order.
    journal: RwLock<Option<Arc<Journal>>>,
    /// Journal-session ↔ local-session correspondence.
    journal_map: Mutex<JournalMap>,
    /// Highest journal sequence number applied through
    /// [`Engine::apply_journal_entry`], and how many entries that was.
    applied_seq: AtomicU64,
    applied_frames: AtomicU64,
    /// Running totals across explain captures (see [`ExplainStats`]).
    explain_totals: Mutex<ExplainStats>,
    /// The most recent finished capture, for late retrieval (`Engine::
    /// last_explain`; the RPC byte-identity test diffs against this).
    last_explain: Mutex<Option<ExplainReport>>,
}

/// The concurrent, multi-session demanded-analysis engine.
///
/// `D` must be a [`PersistDomain`] — an [`AbstractDomain`] whose states
/// the snapshot codec can encode — because the request stream includes
/// [`Request::Save`] / [`Request::Load`]. Every domain this workspace
/// ships (and any product of them) qualifies.
pub struct Engine<D: PersistDomain> {
    pool: WorkerPool,
    shared: Arc<EngineShared<D>>,
}

impl<D: PersistDomain> Engine<D> {
    /// An engine with `workers` threads and default memo sharding.
    pub fn new(workers: usize) -> Engine<D> {
        Engine::with_config(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Engine<D> {
        let memo = match config.memo_capacity {
            Some(cap) => SharedMemoTable::with_capacity_limit(config.memo_shards, cap),
            None => SharedMemoTable::new(config.memo_shards),
        };
        Engine {
            pool: WorkerPool::new(config.workers),
            shared: Arc::new(EngineShared {
                sessions: RwLock::new(HashMap::new()),
                fences: RwLock::new(HashMap::new()),
                global_fence: Fence::default(),
                pending: Mutex::new(HashMap::new()),
                memo,
                strategy: config.strategy,
                resolver: config.resolver,
                transfer: config.transfer,
                next_session: AtomicU64::new(1),
                queries: AtomicU64::new(0),
                edits: AtomicU64::new(0),
                snapshots: AtomicU64::new(0),
                saves: AtomicU64::new(0),
                loads: AtomicU64::new(0),
                session_locks: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                coalesced_queries: AtomicU64::new(0),
                singleton_queries: AtomicU64::new(0),
                union_cone_cells: AtomicU64::new(0),
                union_cone_walks: AtomicU64::new(0),
                query_stats: Mutex::new(QueryStats::default()),
                durability: config.durability,
                journal: RwLock::new(None),
                journal_map: Mutex::new(JournalMap {
                    next_id: 1,
                    ..JournalMap::default()
                }),
                applied_seq: AtomicU64::new(0),
                applied_frames: AtomicU64::new(0),
                explain_totals: Mutex::new(ExplainStats::default()),
                last_explain: Mutex::new(None),
            }),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Opens a session over `program`; the returned id addresses it in
    /// requests. The session has no replayable source, so it cannot be
    /// saved — prefer [`Engine::open_session_src`] for sessions that
    /// should survive restarts.
    pub fn open_session(&self, name: impl Into<String>, program: LoweredProgram) -> SessionId {
        self.install_session(Session::with_config(
            name,
            program,
            self.shared.strategy,
            self.shared.resolver,
            self.shared.transfer,
            None,
        ))
    }

    /// Opens a session by parsing and lowering `source`, recording the
    /// text so the session is saveable ([`Request::Save`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Parse`] / [`EngineError::Cfg`] when the source does
    /// not compile.
    pub fn open_session_src(
        &self,
        name: impl Into<String>,
        source: &str,
    ) -> Result<SessionId, EngineError> {
        let program = dai_lang::parse_program(source)
            .map_err(|e| EngineError::Parse(e.to_string()))
            .and_then(|p| lower_program(&p).map_err(EngineError::Cfg))?;
        let name = name.into();
        let id = self.install_session(Session::with_config(
            name.clone(),
            program,
            self.shared.strategy,
            self.shared.resolver,
            self.shared.transfer,
            Some(source.to_string()),
        ));
        journal_open(&self.shared, id, &name, source);
        Ok(id)
    }

    fn install_session(&self, session: Session<D>) -> SessionId {
        let id = SessionId(self.shared.next_session.fetch_add(1, Ordering::Relaxed));
        self.shared
            .sessions
            .write()
            .expect("session map poisoned")
            .insert(id, Arc::new(Mutex::new(session)));
        id
    }

    /// Closes a session, returning `false` if the id was unknown.
    pub fn close_session(&self, id: SessionId) -> bool {
        let present = self
            .shared
            .sessions
            .write()
            .expect("session map poisoned")
            .remove(&id)
            .is_some();
        if present {
            journal_close(&self.shared, id);
        }
        present
    }

    /// The current program of a session (cloned), for inspection and
    /// oracle comparison in tests.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoSuchSession`] for unknown ids.
    pub fn program_of(&self, id: SessionId) -> Result<LoweredProgram, EngineError> {
        let session = self.session(id)?;
        let guard = session.lock().expect("session poisoned");
        Ok(guard.program().clone())
    }

    fn session(&self, id: SessionId) -> Result<Arc<Mutex<Session<D>>>, EngineError> {
        session_of(&self.shared, id)
    }

    /// Submits a request to the worker pool, returning a [`Ticket`] for
    /// the response.
    ///
    /// `Query` requests go through the coalescing queue: while one is
    /// pending, further queries against the same `(session, function)`
    /// join its batch and the whole group is answered under a single
    /// session-lock acquisition. `Edit` and `Load` bump their fences here,
    /// at submit time, so no later-submitted query can be answered from
    /// earlier state (see the module docs).
    pub fn submit(&self, request: Request) -> Ticket<D> {
        let (ticket, responder) = reply_slot();
        match request {
            Request::Query { session, func, loc } => {
                enqueue_queries(
                    &self.shared,
                    &self.pool.handle(),
                    session,
                    func,
                    vec![(loc, responder)],
                );
            }
            request => {
                match &request {
                    Request::Edit { session, .. } => {
                        fence_of(&self.shared, *session)
                            .submitted
                            .fetch_add(1, Ordering::SeqCst);
                    }
                    Request::Load { .. } => {
                        self.shared
                            .global_fence
                            .submitted
                            .fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {}
                }
                let shared = Arc::clone(&self.shared);
                let pool = self.pool.handle();
                pool.clone().spawn(move || {
                    responder.send(process(&shared, &pool, request));
                });
            }
        }
        ticket
    }

    /// Submits a whole sweep of locations against one function as a
    /// single deliberate batch — one pending-queue insertion, one leader,
    /// one session-lock acquisition, one union-cone evaluation — and
    /// returns one [`Ticket`] per location, in `locs` order. Members
    /// succeed or fail individually, exactly as if each had been its own
    /// [`Request::Query`].
    pub fn submit_query_batch(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Ticket<D>> {
        let mut tickets = Vec::with_capacity(locs.len());
        let mut members = Vec::with_capacity(locs.len());
        for &loc in locs {
            let (ticket, responder) = reply_slot();
            tickets.push(ticket);
            members.push((loc, responder));
        }
        enqueue_queries(
            &self.shared,
            &self.pool.handle(),
            session,
            func.to_string(),
            members,
        );
        tickets
    }

    /// Submits a whole `(function, location)` sweep, batching each
    /// contiguous run of equal function names into one coalesced batch
    /// (one session-lock acquisition, one union-cone evaluation). Sort
    /// `targets` first to get exactly one batch per function — unsorted
    /// targets still answer correctly, just in more batches. Tickets come
    /// back in `targets` order. This is the sweep the REPL `serve` and
    /// the benches issue.
    pub fn submit_query_sweep(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Vec<Ticket<D>> {
        let mut tickets = Vec::with_capacity(targets.len());
        let mut i = 0;
        while i < targets.len() {
            let func = &targets[i].0;
            let j = targets[i..]
                .iter()
                .position(|(f, _)| f != func)
                .map_or(targets.len(), |n| i + n);
            let locs: Vec<Loc> = targets[i..j].iter().map(|(_, l)| *l).collect();
            tickets.extend(self.submit_query_batch(session, func, &locs));
            i = j;
        }
        tickets
    }

    /// Synchronous [`Engine::submit_query_batch`]: blocks for every
    /// member's state, in `locs` order.
    pub fn query_batch(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Result<D, EngineError>> {
        self.submit_query_batch(session, func, locs)
            .into_iter()
            .map(|t| t.wait().and_then(Response::state_or_invariant))
            .collect()
    }

    /// [`Engine::submit_query_sweep`] with per-call options: with
    /// `opts.explain` the sweep is served synchronously under one
    /// session-lock acquisition with cost attribution riding the
    /// evaluation, and the capture comes back alongside the per-member
    /// results. Without it the sweep takes the regular coalescing path
    /// (which takes no timestamps) and the report slot is `None`.
    ///
    /// # Errors
    ///
    /// With `opts.explain`: [`EngineError::NoSuchSession`], or
    /// [`EngineError::Daig`] when the session runs the interprocedural
    /// backend (its evaluation never reaches the instrumented
    /// scheduler). Per-member failures stay inside the result vector
    /// either way.
    pub fn query_sweep_with(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
        opts: QueryOptions,
    ) -> Result<SweepOutcome<D>, EngineError> {
        if opts.explain {
            let (results, report) = self.explain_serve(session, targets)?;
            Ok((results, Some(report)))
        } else {
            let results = self
                .submit_query_sweep(session, targets)
                .into_iter()
                .map(|t| t.wait().and_then(Response::state_or_invariant))
                .collect();
            Ok((results, None))
        }
    }

    /// Serves `targets` with cost attribution and returns the capture:
    /// where the sweep's time went, cell by cell, and how parallel the
    /// demanded cone could have been (work/span). The answers themselves
    /// are discarded — use [`Engine::query_sweep_with`] to keep both.
    ///
    /// # Errors
    ///
    /// See [`Engine::query_sweep_with`].
    pub fn explain_sweep(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Result<ExplainReport, EngineError> {
        self.explain_serve(session, targets).map(|(_, r)| r)
    }

    /// The most recent finished explain capture, if any.
    pub fn last_explain(&self) -> Option<ExplainReport> {
        self.shared
            .last_explain
            .lock()
            .expect("explain report poisoned")
            .clone()
    }

    /// The synchronous explain path: one session-lock acquisition for
    /// the whole sweep, one [`ExplainSink`] across its contiguous
    /// same-function runs, every engine counter bumped exactly as the
    /// coalescing path would (`coalesced + singleton == queries` holds
    /// through explain traffic too).
    fn explain_serve(
        &self,
        session_id: SessionId,
        targets: &[(String, Loc)],
    ) -> Result<(Vec<Result<D, EngineError>>, ExplainReport), EngineError> {
        let session = session_of(&self.shared, session_id)?;
        let pool = self.pool.handle();
        let t_wait = std::time::Instant::now();
        let mut guard = lock_session(&self.shared, &session);
        let lock_wait_ns = t_wait.elapsed().as_nanos() as u64;
        let t_held = std::time::Instant::now();
        if !guard.intra_backend() {
            return Err(EngineError::Daig(DaigError::Invariant(
                "explain requires the intraprocedural backend".to_string(),
            )));
        }
        let mut explain_span = dai_trace::span!("engine.explain");
        let mut lock_span = dai_trace::span!("engine.session_lock");
        let mut sink = ExplainSink::new();
        let mut results = Vec::with_capacity(targets.len());
        let mut work = QueryStats::default();
        let mut eval_ns = 0u64;
        let mut i = 0;
        while i < targets.len() {
            let func = &targets[i].0;
            let j = targets[i..]
                .iter()
                .position(|(f, _)| f != func)
                .map_or(targets.len(), |n| i + n);
            let locs: Vec<Loc> = targets[i..j].iter().map(|(_, l)| *l).collect();
            let mut shared_stats = QueryStats::default();
            let mut per_query = vec![QueryStats::default(); locs.len()];
            let t0 = std::time::Instant::now();
            let r = guard.query_locs_explain(
                func,
                &locs,
                &self.shared.memo,
                &pool,
                &mut shared_stats,
                &mut per_query,
                Some(&mut sink),
            );
            eval_ns += t0.elapsed().as_nanos() as u64;
            results.extend(r);
            let served = locs.len() as u64;
            if served >= 2 {
                self.shared.batches.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .coalesced_queries
                    .fetch_add(served, Ordering::Relaxed);
                self.shared
                    .union_cone_cells
                    .fetch_add(shared_stats.cone_cells, Ordering::Relaxed);
                self.shared
                    .union_cone_walks
                    .fetch_add(shared_stats.cone_walks, Ordering::Relaxed);
            } else {
                self.shared
                    .singleton_queries
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.shared.queries.fetch_add(served, Ordering::Relaxed);
            work.absorb(shared_stats);
            for pq in &per_query {
                work.absorb(*pq);
            }
            i = j;
        }
        lock_span.set_arg(targets.len() as u64);
        drop(lock_span);
        let lock_held_ns = t_held.elapsed().as_nanos() as u64;
        drop(guard);
        self.shared
            .query_stats
            .lock()
            .expect("stats poisoned")
            .absorb(work);
        let report = sink.finish_report(
            D::domain_tag(),
            self.shared.transfer.as_str().to_string(),
            lock_wait_ns,
            lock_held_ns,
            eval_ns,
        );
        explain_span.set_arg(report.cells.len() as u64);
        drop(explain_span);
        // Per-domain evaluation latency: one histogram per domain tag,
        // registered on first capture.
        dai_trace::metrics()
            .histogram(&format!("dai_explain_eval_seconds_{}", report.domain))
            .observe_ns(eval_ns);
        self.shared
            .explain_totals
            .lock()
            .expect("explain stats poisoned")
            .absorb_report(&report);
        *self
            .shared
            .last_explain
            .lock()
            .expect("explain report poisoned") = Some(report.clone());
        Ok((results, report))
    }

    /// Submits a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// See [`Ticket::wait`].
    pub fn request(&self, request: Request) -> Result<Response<D>, EngineError> {
        self.submit(request).wait()
    }

    /// Convenience: a synchronous query returning the abstract state.
    ///
    /// # Errors
    ///
    /// See [`Engine::request`].
    pub fn query(&self, session: SessionId, func: &str, loc: Loc) -> Result<D, EngineError> {
        self.request(Request::Query {
            session,
            func: func.to_string(),
            loc,
        })?
        .state_or_invariant()
    }

    /// Current engine-wide statistics (read without blocking workers).
    pub fn stats(&self) -> EngineStats {
        snapshot_stats(&self.shared, self.pool.workers())
    }

    /// The `(submitted, applied)` edit-fence counters of a session: how
    /// many `Edit`s were submitted against it, and how many of those have
    /// completed. Pending queries stamped above `applied` are deferred —
    /// this is the epoch a batch splits at.
    pub fn session_fence(&self, id: SessionId) -> (u64, u64) {
        let fence = fence_of(&self.shared, id);
        (
            fence.submitted.load(Ordering::SeqCst),
            fence.applied.load(Ordering::SeqCst),
        )
    }

    /// The `(submitted, applied)` engine-global fence counters bumped by
    /// `Load` requests.
    pub fn global_fence(&self) -> (u64, u64) {
        (
            self.shared.global_fence.submitted.load(Ordering::SeqCst),
            self.shared.global_fence.applied.load(Ordering::SeqCst),
        )
    }

    /// Flips the runtime tracing switch. The switch (like the per-thread
    /// recorders behind it) is process-wide — it covers every layer's
    /// probes, not just this engine's — so remote `trace on` over the
    /// RPC socket lights up the whole query path.
    pub fn set_tracing(&self, on: bool) {
        dai_trace::config().set_enabled(on);
    }

    /// Whether runtime tracing is currently enabled.
    pub fn tracing_enabled(&self) -> bool {
        dai_trace::config().is_enabled()
    }

    /// Drains every thread's trace ring into one dump (records sorted by
    /// start time). Draining consumes the records.
    pub fn drain_trace(&self) -> dai_trace::TraceDump {
        dai_trace::drain()
    }

    /// Drains the trace and encodes it as one checksummed binary frame;
    /// [`dai_persist::decode_trace_frame`] reads it back.
    pub fn dump_trace_binary(&self) -> Vec<u8> {
        dai_persist::encode_trace_frame(&self.drain_trace())
    }

    /// Prometheus text exposition of the process metrics registry, with
    /// this engine's current [`EngineStats`] published into `dai_*`
    /// gauges first so the scrape always reflects the live counters.
    pub fn metrics_text(&self) -> String {
        self.stats().publish_metrics();
        dai_trace::metrics().render_prometheus()
    }

    /// The per-session activity counters of `id` (queries, edits,
    /// saves, loads) — per-session attribution, unlike the engine-wide
    /// [`EngineStats`] totals.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoSuchSession`] for unknown ids.
    pub fn session_counters(&self, id: SessionId) -> Result<SessionCounters, EngineError> {
        let session = self.session(id)?;
        let guard = session.lock().expect("session poisoned");
        Ok(guard.full_counters())
    }

    /// Whether `id` is a read-only replica session.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoSuchSession`] for unknown ids.
    pub fn session_is_replica(&self, id: SessionId) -> Result<bool, EngineError> {
        let session = self.session(id)?;
        let guard = session.lock().expect("session poisoned");
        Ok(guard.is_replica())
    }

    /// The attached journal, if [`Engine::open_journal`] has run.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.shared
            .journal
            .read()
            .expect("journal slot poisoned")
            .clone()
    }

    /// Opens (or creates) the journal at `path`, **recovers** by
    /// replaying its clean prefix into this engine — opens, edits,
    /// memo deltas, snapshots; any torn tail was already truncated by
    /// [`Journal::open`] — and then attaches the journal so every
    /// subsequent source-backed open, edit, close, and save is
    /// appended. Sessions opened *before* the journal attaches are
    /// adopted lazily: their first journaled event writes their `Open`.
    ///
    /// # Errors
    ///
    /// I/O failures, an already-attached journal, or a replayed entry
    /// that fails to apply (a parse error in a logged source — the
    /// journal lied). Tail damage is NOT an error.
    pub fn open_journal(
        &self,
        path: impl Into<std::path::PathBuf>,
        config: JournalConfig,
    ) -> Result<JournalRecovery, EngineError> {
        if self.journal().is_some() {
            return Err(EngineError::Daig(DaigError::Invariant(
                "a journal is already attached to this engine".to_string(),
            )));
        }
        let (journal, replay) = Journal::open(path, config)?;
        for entry in &replay.entries {
            self.apply_journal_entry(entry, false)?;
        }
        let journal = Arc::new(journal);
        let recovery = JournalRecovery {
            entries_replayed: replay.entries.len(),
            damaged_len: replay.damaged_len,
            last_seq: journal.last_seq(),
        };
        *self.shared.journal.write().expect("journal slot poisoned") = Some(journal);
        Ok(recovery)
    }

    /// Applies one journal entry to this engine — the shared spine of
    /// cold-start recovery (`replica = false`: the replayed sessions
    /// are this engine's own, writable) and follower replication
    /// (`replica = true`: sessions are read-only mirrors; edits arrive
    /// only through this path). Sound at any prefix: a journal prefix
    /// describes a consistent (older) program state, and demanded
    /// evaluation from any consistent prior state answers correctly.
    ///
    /// # Errors
    ///
    /// Parse/CFG failures on `Open`, unknown journal sessions on
    /// `Edit`/`Close`, snapshot decode failures. An undecodable
    /// `MemoDelta` is *not* an error — memo warmth is lossy by design.
    pub fn apply_journal_entry(
        &self,
        entry: &JournalEntry,
        replica: bool,
    ) -> Result<(), EngineError> {
        let shared = &self.shared;
        let local_of = |journal_id: u64| -> Result<SessionId, EngineError> {
            shared
                .journal_map
                .lock()
                .expect("journal map poisoned")
                .to_local
                .get(&journal_id)
                .copied()
                .ok_or(EngineError::NoSuchSession(SessionId(journal_id)))
        };
        match &entry.record {
            JournalRecord::Open { name, source } => {
                let program = dai_lang::parse_program(source)
                    .map_err(|e| EngineError::Parse(e.to_string()))
                    .and_then(|p| lower_program(&p).map_err(EngineError::Cfg))?;
                let mut session = Session::with_config(
                    name.clone(),
                    program,
                    shared.strategy,
                    shared.resolver,
                    shared.transfer,
                    Some(source.clone()),
                );
                session.set_replica(replica);
                let id = self.install_session(session);
                shared
                    .journal_map
                    .lock()
                    .expect("journal map poisoned")
                    .bind(entry.session, id);
            }
            JournalRecord::Edit { edit } => {
                let local = local_of(entry.session)?;
                let session = session_of(shared, local)?;
                let mut guard = lock_session(shared.as_ref(), &session);
                // Deliberately NOT gated on `is_replica`: this is the
                // one path through which replica sessions change.
                guard.apply_edit(edit)?;
                drop(guard);
                shared.edits.fetch_add(1, Ordering::Relaxed);
            }
            JournalRecord::Close => {
                let local = local_of(entry.session)?;
                self.close_session(local);
            }
            JournalRecord::MemoDelta { bytes } => {
                // Lossy, like a snapshot's MEMO section: a delta that
                // fails to decode is skipped whole, costing warmth only.
                match decode_memo_delta::<D>(bytes) {
                    Ok(entries) => {
                        for (k, v) in entries {
                            shared.memo.insert(k, v);
                        }
                    }
                    Err(_) => {
                        dai_trace::metrics()
                            .counter("dai_journal_memo_deltas_dropped_total")
                            .inc();
                    }
                }
            }
            JournalRecord::Snapshot { bytes } => {
                let (mut image, report) = SessionImage::<D>::from_bytes(bytes)?;
                let memo_entries = std::mem::take(&mut image.memo);
                let restore_resolver = match image.policy {
                    Some(policy) => ResolverChoice::Interproc { policy },
                    None => ResolverChoice::Intra,
                };
                let (mut session, _, _) =
                    Session::restore(image, restore_resolver, shared.transfer, &report)?;
                session.set_replica(replica);
                if !matches!(restore_resolver, ResolverChoice::Interproc { .. }) {
                    for (k, v) in memo_entries {
                        shared.memo.insert(k, v);
                    }
                }
                let mut map = shared.journal_map.lock().expect("journal map poisoned");
                match map.to_local.get(&entry.session).copied() {
                    Some(local) => {
                        // Refresh the mapped session in place: replace
                        // its slot, keeping the local id stable for
                        // queries in flight against the follower.
                        shared
                            .sessions
                            .write()
                            .expect("session map poisoned")
                            .insert(local, Arc::new(Mutex::new(session)));
                    }
                    None => {
                        let id = self.install_session(session);
                        map.bind(entry.session, id);
                    }
                }
            }
        }
        shared.applied_seq.store(entry.seq, Ordering::Relaxed);
        shared.applied_frames.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Compacts the attached journal if it has crossed its configured
    /// append threshold: one `DAIP` snapshot frame per journal-bound
    /// session replaces the accumulated history. Returns `true` when a
    /// compaction ran. Called automatically after journaled edits; a
    /// REPL/router can also invoke it directly (`force = true`).
    ///
    /// # Errors
    ///
    /// Imaging or I/O failures (the journal is left as it was).
    pub fn compact_journal(&self, force: bool) -> Result<bool, EngineError> {
        compact_attached_journal(&self.shared, force)
    }
}

/// [`Engine::compact_journal`]'s body, callable from the request path.
fn compact_attached_journal<D: PersistDomain>(
    shared: &EngineShared<D>,
    force: bool,
) -> Result<bool, EngineError> {
    let Some(journal) = shared
        .journal
        .read()
        .expect("journal slot poisoned")
        .clone()
    else {
        return Ok(false);
    };
    if !force && !journal.wants_compaction() {
        return Ok(false);
    }
    // Copy the bindings out first: imaging locks sessions, and the
    // map lock must never be held across a session lock.
    let bound: Vec<(u64, SessionId)> = {
        let map = shared.journal_map.lock().expect("journal map poisoned");
        let mut v: Vec<_> = map.to_local.iter().map(|(j, l)| (*j, *l)).collect();
        v.sort_unstable();
        v
    };
    let mut snapshots = Vec::with_capacity(bound.len());
    for (journal_id, local) in bound {
        let Ok(session) = session_of(shared, local) else {
            continue; // closed concurrently — its Close frame rides the tail
        };
        let guard = session.lock().expect("session poisoned");
        let image = guard.image()?;
        drop(guard);
        snapshots.push((journal_id, image.to_bytes()));
    }
    journal.compact(&snapshots)?;
    Ok(true)
}

/// The outcome of [`Engine::open_journal`]'s recovery replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Entries replayed from the journal's clean prefix.
    pub entries_replayed: usize,
    /// Bytes of torn/damaged tail truncated away (0 for a clean file).
    pub damaged_len: usize,
    /// The journal's last handed-out sequence number after recovery.
    pub last_seq: u64,
}

/// Appends a source-backed session's `Open` frame (no-op without an
/// attached journal).
fn journal_open<D: AbstractDomain>(
    shared: &EngineShared<D>,
    local: SessionId,
    name: &str,
    source: &str,
) {
    let Some(journal) = shared
        .journal
        .read()
        .expect("journal slot poisoned")
        .clone()
    else {
        return;
    };
    let mut map = shared.journal_map.lock().expect("journal map poisoned");
    let journal_id = map.next_id;
    map.bind(journal_id, local);
    drop(map);
    journal_append(
        &journal,
        journal_id,
        JournalRecord::Open {
            name: name.to_string(),
            source: source.to_string(),
        },
    );
}

/// Appends a `Close` frame for a bound session and drops the binding
/// (no-op for unbound sessions or without a journal).
fn journal_close<D: AbstractDomain>(shared: &EngineShared<D>, local: SessionId) {
    let unbound = shared
        .journal_map
        .lock()
        .expect("journal map poisoned")
        .unbind_local(local);
    let Some(journal_id) = unbound else { return };
    let Some(journal) = shared
        .journal
        .read()
        .expect("journal slot poisoned")
        .clone()
    else {
        return;
    };
    journal_append(&journal, journal_id, JournalRecord::Close);
}

/// Appends `record` for the session `local` is bound to, lazily
/// adopting a pre-journal session (its `Open` is written first, from
/// the locked session's own name and source). Call with the session
/// lock held so the session's frames appear in its edit order.
fn journal_record<D: AbstractDomain>(
    shared: &EngineShared<D>,
    local: SessionId,
    guard: &Session<D>,
    record: JournalRecord,
) {
    let Some(journal) = shared
        .journal
        .read()
        .expect("journal slot poisoned")
        .clone()
    else {
        return;
    };
    let mut map = shared.journal_map.lock().expect("journal map poisoned");
    let journal_id = match map.to_journal.get(&local) {
        Some(id) => *id,
        None => {
            // Adopt: sessions without source aren't replayable, so they
            // stay out of the journal entirely.
            let Some(source) = guard.source() else { return };
            let journal_id = map.next_id;
            map.bind(journal_id, local);
            journal_append(
                &journal,
                journal_id,
                JournalRecord::Open {
                    name: guard.name().to_string(),
                    source: source.to_string(),
                },
            );
            journal_id
        }
    };
    drop(map);
    journal_append(&journal, journal_id, record);
}

/// One journal append, with failures counted rather than propagated:
/// the state change the frame describes has already happened, so the
/// caller cannot un-apply it — an append failure costs durability (and
/// is visible in `dai_journal_append_errors_total`), never consistency.
fn journal_append(journal: &Journal, journal_id: u64, record: JournalRecord) {
    if journal.append(journal_id, record).is_err() {
        dai_trace::metrics()
            .counter("dai_journal_append_errors_total")
            .inc();
    }
}

/// Encodes memo entries as an opaque `MemoDelta` payload.
fn encode_memo_delta<D: PersistDomain>(entries: &[(MemoKey, Value<D>)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(entries.len() as u64);
    for (k, v) in entries {
        k.put(&mut w);
        v.put(&mut w);
    }
    w.into_bytes()
}

/// Decodes a `MemoDelta` payload (strict: any malformed entry rejects
/// the whole delta, and the caller skips it — lossy, sound).
fn decode_memo_delta<D: PersistDomain>(
    bytes: &[u8],
) -> Result<Vec<(MemoKey, Value<D>)>, PersistError> {
    let mut r = Reader::new(bytes);
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let k = MemoKey::get(&mut r)?;
        let v = Value::<D>::get(&mut r)?;
        out.push((k, v));
    }
    if !r.is_exhausted() {
        return Err(PersistError::Corrupt(format!(
            "memo delta has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Builds one reply slot, returning the waiting and the producing half.
fn reply_slot<D>() -> (Ticket<D>, Responder<D>) {
    let cell = Arc::new(Oneshot {
        slot: Mutex::new(None),
        ready: Condvar::new(),
        hook: Mutex::new(None),
    });
    let responder = Responder {
        cell: Arc::clone(&cell),
        sent: false,
    };
    (Ticket { cell }, responder)
}

/// Resolves a session id against the shared map (used by both the
/// `Engine` methods and the in-stream request handler).
fn session_of<D: AbstractDomain>(
    shared: &EngineShared<D>,
    id: SessionId,
) -> Result<Arc<Mutex<Session<D>>>, EngineError> {
    shared
        .sessions
        .read()
        .expect("session map poisoned")
        .get(&id)
        .cloned()
        .ok_or(EngineError::NoSuchSession(id))
}

/// The session's fence, created on first use (see `EngineShared::fences`).
fn fence_of<D: AbstractDomain>(shared: &EngineShared<D>, id: SessionId) -> Arc<Fence> {
    if let Some(f) = shared
        .fences
        .read()
        .expect("fence map poisoned")
        .get(&id)
        .cloned()
    {
        return f;
    }
    Arc::clone(
        shared
            .fences
            .write()
            .expect("fence map poisoned")
            .entry(id)
            .or_default(),
    )
}

/// Locks a session for serving, counting the acquisition.
fn lock_session<'s, D: AbstractDomain>(
    shared: &EngineShared<D>,
    session: &'s Mutex<Session<D>>,
) -> std::sync::MutexGuard<'s, Session<D>> {
    let guard = session.lock().expect("session poisoned");
    shared.session_locks.fetch_add(1, Ordering::Relaxed);
    guard
}

/// Adds `members` to the pending queue under `(session, func)`, stamping
/// each with the current fences, and spawns a leader job iff the key had
/// no pending members (an existing entry already has a responsible party —
/// its leader, or the fence whose completion will kick it).
fn enqueue_queries<D: PersistDomain>(
    shared: &Arc<EngineShared<D>>,
    pool: &PoolHandle,
    session: SessionId,
    func: String,
    members: Vec<(Loc, Responder<D>)>,
) {
    if members.is_empty() {
        return;
    }
    dai_trace::event!("engine.enqueue", members.len());
    let fence = fence_of(shared, session).submitted.load(Ordering::SeqCst);
    let global_fence = shared.global_fence.submitted.load(Ordering::SeqCst);
    let key = (session, func);
    let spawn_leader = {
        let mut pending = shared.pending.lock().expect("pending queue poisoned");
        let entry = pending.entry(key.clone()).or_default();
        let was_empty = entry.is_empty();
        entry.extend(members.into_iter().map(|(loc, responder)| PendingQuery {
            loc,
            responder,
            fence,
            global_fence,
        }));
        was_empty
    };
    if spawn_leader {
        spawn_batch_leader(shared, pool, key);
    }
}

/// Queues a leader job that will drain and answer `key`'s pending batch.
fn spawn_batch_leader<D: PersistDomain>(
    shared: &Arc<EngineShared<D>>,
    pool: &PoolHandle,
    key: BatchKey,
) {
    let shared = Arc::clone(shared);
    let pool2 = pool.clone();
    pool.spawn(move || serve_batch(&shared, &pool2, key));
}

/// Re-kicks pending batches after a fence completed: spawns a leader for
/// every matching non-empty entry (`session == None` matches all — the
/// global fence). Spurious leaders are harmless: a drain that finds
/// nothing eligible puts the members back and returns.
fn kick_pending<D: PersistDomain>(
    shared: &Arc<EngineShared<D>>,
    pool: &PoolHandle,
    session: Option<SessionId>,
) {
    let keys: Vec<BatchKey> = shared
        .pending
        .lock()
        .expect("pending queue poisoned")
        .iter()
        .filter(|((s, _), members)| !members.is_empty() && session.is_none_or(|id| *s == id))
        .map(|(k, _)| k.clone())
        .collect();
    for key in keys {
        spawn_batch_leader(shared, pool, key);
    }
}

/// Bumps a fence's `applied` counter and re-kicks pending batches when
/// dropped — attached to every fencing request (`Edit`, `Load`) so the
/// bump happens on *every* exit path, errors included; a query deferred
/// behind a fence must never wait forever.
struct FenceCompletion<'a, D: PersistDomain> {
    shared: &'a Arc<EngineShared<D>>,
    pool: &'a PoolHandle,
    /// `Some` for a session fence (`Edit`), `None` for the global one
    /// (`Load`).
    session: Option<SessionId>,
}

impl<D: PersistDomain> Drop for FenceCompletion<'_, D> {
    fn drop(&mut self) {
        match self.session {
            Some(id) => {
                fence_of(self.shared.as_ref(), id)
                    .applied
                    .fetch_add(1, Ordering::SeqCst);
            }
            None => {
                self.shared
                    .global_fence
                    .applied
                    .fetch_add(1, Ordering::SeqCst);
            }
        }
        kick_pending(self.shared, self.pool, self.session);
    }
}

/// The leader job: drains `key`'s pending batch under one session-lock
/// acquisition, answers every fence-eligible member from one union-cone
/// evaluation, and defers later-stamped members back to the queue (their
/// fence's completion re-kicks them).
fn serve_batch<D: PersistDomain>(shared: &Arc<EngineShared<D>>, pool: &PoolHandle, key: BatchKey) {
    let (session_id, ref func) = key;
    // A kicked leader may race a regular one that already drained the
    // entry; don't take the session lock just to discover that.
    if shared
        .pending
        .lock()
        .expect("pending queue poisoned")
        .get(&key)
        .is_none_or(|m| m.is_empty())
    {
        return;
    }
    let session = match session_of(shared, session_id) {
        Ok(s) => s,
        Err(_) => {
            // The session is gone: answer everyone immediately — fences
            // are moot for a session that no longer exists. The members
            // were still served (an error each), so the accounting
            // identity counts them like any other drain.
            let members = shared
                .pending
                .lock()
                .expect("pending queue poisoned")
                .remove(&key)
                .unwrap_or_default();
            let served = members.len() as u64;
            if served >= 2 {
                shared.batches.fetch_add(1, Ordering::Relaxed);
                shared
                    .coalesced_queries
                    .fetch_add(served, Ordering::Relaxed);
            } else if served == 1 {
                shared.singleton_queries.fetch_add(1, Ordering::Relaxed);
            }
            shared.queries.fetch_add(served, Ordering::Relaxed);
            dai_trace::event!("engine.answer", served);
            for m in members {
                m.responder
                    .send(Err(EngineError::NoSuchSession(session_id)));
            }
            return;
        }
    };
    let t0 = std::time::Instant::now();
    let mut guard = lock_session(shared.as_ref(), &session);
    // Opened only after the lock is held (a leader waiting its turn must
    // not overlap the holder's span — the acceptance trace shows strictly
    // serialized held regions, each enclosing its batch's cone walk and
    // cell evaluations), and explicitly dropped before the answers go
    // out, so a client draining the instant its sweep returns sees it.
    let mut lock_span = dai_trace::span!("engine.session_lock");
    let applied = fence_of(shared.as_ref(), session_id)
        .applied
        .load(Ordering::SeqCst);
    let global_applied = shared.global_fence.applied.load(Ordering::SeqCst);
    let eligible: Vec<PendingQuery<D>> = {
        let mut pending = shared.pending.lock().expect("pending queue poisoned");
        let members = pending.remove(&key).unwrap_or_default();
        let (eligible, deferred): (Vec<_>, Vec<_>) = members
            .into_iter()
            .partition(|m| m.fence <= applied && m.global_fence <= global_applied);
        if !deferred.is_empty() {
            dai_trace::event!("engine.fence_defer", deferred.len());
            // The batch splits at the fence: later-stamped members stay
            // queued for the fence's completion kick (re-inserted *before*
            // the re-check below, so no kick can slip between).
            pending.entry(key.clone()).or_default().extend(deferred);
        }
        eligible
    };
    if eligible.is_empty() {
        drop(lock_span);
        drop(guard);
        recheck_deferred(shared, pool, &key, applied, global_applied);
        return;
    }
    let locs: Vec<Loc> = eligible.iter().map(|m| m.loc).collect();
    let mut shared_stats = QueryStats::default();
    let mut per_query = vec![QueryStats::default(); locs.len()];
    let results = guard.query_locs(
        func,
        &locs,
        &shared.memo,
        pool,
        &mut shared_stats,
        &mut per_query,
    );
    let served = eligible.len() as u64;
    lock_span.set_arg(served);
    // Recorded while the lock is still held: closing after the release
    // would let a successor's span open inside ours, and recording after
    // the answers go out would let a client that drains the trace the
    // instant its sweep returns miss this batch's span entirely.
    drop(lock_span);
    drop(guard);
    if served >= 2 {
        dai_trace::event!("engine.coalesce", served);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .coalesced_queries
            .fetch_add(served, Ordering::Relaxed);
        shared
            .union_cone_cells
            .fetch_add(shared_stats.cone_cells, Ordering::Relaxed);
        shared
            .union_cone_walks
            .fetch_add(shared_stats.cone_walks, Ordering::Relaxed);
    } else {
        shared.singleton_queries.fetch_add(1, Ordering::Relaxed);
    }
    // Every member was served an answer — count failures too, so the
    // `coalesced + singleton == queries` accounting identity holds
    // unconditionally.
    shared.queries.fetch_add(served, Ordering::Relaxed);
    let mut work = shared_stats;
    for pq in &per_query {
        work.absorb(*pq);
    }
    shared
        .query_stats
        .lock()
        .expect("stats poisoned")
        .absorb(work);
    dai_trace::event!("engine.answer", served);
    for (m, r) in eligible.into_iter().zip(results) {
        m.responder.send(r.map(Response::State));
    }
    batch_latency().observe_ns(t0.elapsed().as_nanos() as u64);
    recheck_deferred(shared, pool, &key, applied, global_applied);
}

/// The engine-wide batch-serve latency histogram, registered once.
fn batch_latency() -> &'static dai_trace::Histogram {
    static H: std::sync::OnceLock<dai_trace::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| dai_trace::metrics().histogram("dai_engine_batch_serve_seconds"))
}

/// After a drain deferred members: if the fences moved past the values the
/// drain used while it held the queue, the completion kick may already
/// have fired into the drained-out window — re-kick so nothing strands.
fn recheck_deferred<D: PersistDomain>(
    shared: &Arc<EngineShared<D>>,
    pool: &PoolHandle,
    key: &BatchKey,
    applied_seen: u64,
    global_applied_seen: u64,
) {
    let still_pending = shared
        .pending
        .lock()
        .expect("pending queue poisoned")
        .get(key)
        .is_some_and(|m| !m.is_empty());
    if !still_pending {
        return;
    }
    let applied_now = fence_of(shared.as_ref(), key.0)
        .applied
        .load(Ordering::SeqCst);
    let global_now = shared.global_fence.applied.load(Ordering::SeqCst);
    if applied_now > applied_seen || global_now > global_applied_seen {
        spawn_batch_leader(shared, pool, key.clone());
    }
}

/// One place that assembles [`EngineStats`], used by both
/// [`Engine::stats`] and the in-stream [`Request::Stats`] handler.
fn snapshot_stats<D: AbstractDomain>(shared: &EngineShared<D>, workers: usize) -> EngineStats {
    EngineStats {
        workers,
        sessions: shared.sessions.read().expect("session map poisoned").len(),
        queries: shared.queries.load(Ordering::Relaxed),
        edits: shared.edits.load(Ordering::Relaxed),
        snapshots: shared.snapshots.load(Ordering::Relaxed),
        saves: shared.saves.load(Ordering::Relaxed),
        loads: shared.loads.load(Ordering::Relaxed),
        session_locks: shared.session_locks.load(Ordering::Relaxed),
        batch: BatchStats {
            batches: shared.batches.load(Ordering::Relaxed),
            coalesced_queries: shared.coalesced_queries.load(Ordering::Relaxed),
            singleton_queries: shared.singleton_queries.load(Ordering::Relaxed),
            union_cone_cells: shared.union_cone_cells.load(Ordering::Relaxed),
            union_cone_walks: shared.union_cone_walks.load(Ordering::Relaxed),
        },
        query_stats: *shared.query_stats.lock().expect("stats poisoned"),
        explain: shared
            .explain_totals
            .lock()
            .expect("explain stats poisoned")
            .clone(),
        memo: shared.memo.stats(),
        replication: {
            let journal = shared
                .journal
                .read()
                .expect("journal slot poisoned")
                .clone();
            ReplicationStats {
                journal_attached: journal.is_some(),
                journal_last_seq: journal.as_ref().map_or(0, |j| j.last_seq()),
                journal_frames: journal.as_ref().map_or(0, |j| j.frames()),
                applied_seq: shared.applied_seq.load(Ordering::Relaxed),
                applied_frames: shared.applied_frames.load(Ordering::Relaxed),
            }
        },
    }
}

impl<D: AbstractDomain> fmt::Debug for Response<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::State(_) => write!(f, "Response::State(..)"),
            Response::Edited(o) => write!(f, "Response::Edited({o:?})"),
            Response::Snapshot(_) => write!(f, "Response::Snapshot(..)"),
            Response::Saved(o) => write!(f, "Response::Saved({o:?})"),
            Response::Loaded { session, outcome } => {
                write!(f, "Response::Loaded {{ {session}, {outcome:?} }}")
            }
            Response::Stats(s) => write!(f, "Response::Stats({s:?})"),
        }
    }
}

fn process<D: PersistDomain>(
    shared: &Arc<EngineShared<D>>,
    pool: &PoolHandle,
    request: Request,
) -> Result<Response<D>, EngineError> {
    match request {
        Request::Query { .. } => {
            // Unreachable: `Engine::submit` routes every query through the
            // coalescing queue (`enqueue_queries`), never through here.
            Err(EngineError::Daig(DaigError::Invariant(
                "queries are served through the coalescing queue, not process()".to_string(),
            )))
        }
        Request::Edit { session, edit } => {
            // The fence was bumped at submit time; its completion (bump of
            // `applied` + re-kick of deferred queries) must happen on every
            // exit path — a failed edit changed nothing, so releasing the
            // queries it fenced is sound.
            let sid = session;
            let _fence = FenceCompletion {
                shared,
                pool,
                session: Some(session),
            };
            let _edit_span = dai_trace::span!("engine.edit");
            let session = session_of(shared, session)?;
            let mut guard = lock_session(shared.as_ref(), &session);
            let _lock_span = dai_trace::span!("engine.session_lock");
            if guard.is_replica() {
                return Err(EngineError::ReadOnly(sid));
            }
            let out = guard.apply_edit(&edit);
            if out.is_ok() {
                // Behind the session lock: this session's journal frames
                // land in its edit order.
                journal_record(shared.as_ref(), sid, &guard, JournalRecord::Edit { edit });
            }
            drop(guard);
            if out.is_ok() {
                shared.edits.fetch_add(1, Ordering::Relaxed);
                // Past the threshold? Fold history into snapshots. A
                // compaction failure costs journal size, not the edit.
                let _ = compact_attached_journal(shared.as_ref(), false);
            }
            out.map(Response::Edited)
        }
        Request::Snapshot { session } => {
            let session = session_of(shared, session)?;
            let guard = lock_session(shared.as_ref(), &session);
            let _lock_span = dai_trace::span!("engine.session_lock");
            let snap = guard.snapshot();
            drop(guard);
            shared.snapshots.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Snapshot(snap))
        }
        Request::Save { session, path } => {
            let sid = session;
            let mut save_span = dai_trace::span!("engine.save");
            let session = session_of(shared, session)?;
            // Behind the session lock (like Edit): the image is a
            // consistent point in this session's request stream. The
            // shared memo table is deliberately sampled *after* the lock
            // drops — its entries are input-content-keyed, so any sample
            // is sound, and a full-table clone must not stall the
            // session's queries. Note the table is engine-wide (shared
            // by all sessions — that sharing is what makes it warm), so
            // its export rides along with whichever session is saved.
            let guard = lock_session(shared.as_ref(), &session);
            let _lock_span = dai_trace::span!("engine.session_lock");
            let mut image = guard.image()?;
            drop(guard);
            image.memo = shared.memo.export_entries();
            let funcs = image.funcs.len();
            let memo_entries = image.memo.len();
            let bytes = image.to_bytes();
            save_span.set_arg(bytes.len() as u64);
            write_snapshot_file_durable(&path, &bytes, shared.durability)?;
            shared.saves.fetch_add(1, Ordering::Relaxed);
            // Per-session attribution (and the journal's memo delta)
            // happen only once the write has actually landed. The brief
            // relock is bookkeeping, not serving — not a session_lock.
            {
                let mut guard = session.lock().expect("session poisoned");
                guard.note_saved();
                if !image.memo.is_empty() {
                    journal_record(
                        shared.as_ref(),
                        sid,
                        &guard,
                        JournalRecord::MemoDelta {
                            bytes: encode_memo_delta(&image.memo),
                        },
                    );
                }
            }
            Ok(Response::Saved(PersistOutcome {
                bytes: bytes.len(),
                funcs,
                memo_entries,
                ..PersistOutcome::default()
            }))
        }
        Request::Load { path } => {
            // A load fences the whole engine (its fence was bumped at
            // submit): queries submitted after it must not be answered
            // until the restore — and its engine-wide memo import — has
            // happened. Completion is on-drop, error paths included.
            let _fence = FenceCompletion {
                shared,
                pool,
                session: None,
            };
            let mut load_span = dai_trace::span!("engine.load");
            let bytes = read_snapshot_file(&path)?;
            load_span.set_arg(bytes.len() as u64);
            let (mut image, report) = SessionImage::<D>::from_bytes(&bytes)?;
            let memo_entries = std::mem::take(&mut image.memo);
            // A snapshot's semantics travel with it: like the iteration
            // strategy, the resolver the restored session runs under is
            // the one it was *saved* under (interprocedural with the
            // saved policy, intraprocedural otherwise) — not the engine's
            // configured default, which applies only to newly opened
            // sessions. Restoring under a different resolver would
            // silently answer with different invariants than the session
            // that was persisted.
            let restore_resolver = match image.policy {
                Some(policy) => ResolverChoice::Interproc { policy },
                None => ResolverChoice::Intra,
            };
            let (session, installed, dropped) =
                Session::restore(image, restore_resolver, shared.transfer, &report)?;
            // Import the memo section into the engine-wide shared table.
            // Entries are keyed by content hashes of their inputs, so
            // importing them alongside live traffic is exactly as sound
            // as the cross-session sharing the table already does.
            // Interprocedural sessions never read the shared table (the
            // analyzer carries its own memo), so when the restored
            // session is interprocedural the section is counted as
            // dropped instead of imported as dead weight — the outcome
            // must not claim warmth no query can use.
            let interproc = matches!(restore_resolver, ResolverChoice::Interproc { .. });
            let (imported, memo_unused) = if interproc {
                (0, usize::from(!memo_entries.is_empty()))
            } else {
                let n = memo_entries.len();
                for (k, v) in memo_entries {
                    shared.memo.insert(k, v);
                }
                (n, 0)
            };
            let id = SessionId(shared.next_session.fetch_add(1, Ordering::Relaxed));
            shared
                .sessions
                .write()
                .expect("session map poisoned")
                .insert(id, Arc::new(Mutex::new(session)));
            shared.loads.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Loaded {
                session: id,
                outcome: PersistOutcome {
                    bytes: bytes.len(),
                    funcs: installed,
                    funcs_dropped: dropped,
                    memo_entries: imported,
                    memo_sections_dropped: report.memo_sections_dropped + memo_unused,
                    truncated: report.truncated,
                },
            })
        }
        Request::Stats => Ok(Response::Stats(Box::new(snapshot_stats(
            shared,
            pool.workers(),
        )))),
    }
}
