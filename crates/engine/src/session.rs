//! Analysis sessions: one loaded program, analyzed under a configurable
//! call-resolution backend, with a replayable history for persistence.
//!
//! A session is the engine's unit of isolation and serialization: requests
//! against the same session are serialized behind its lock, while requests
//! against different sessions proceed concurrently on the worker pool.
//!
//! ## Call resolution backends
//!
//! The engine's call handling is a per-engine configuration choice
//! ([`ResolverChoice`]), not a hard-coded policy:
//!
//! * [`ResolverChoice::Intra`] (the default, and the PR 1 behavior) —
//!   per-function units created on demand, entry states from
//!   [`AbstractDomain::entry_default`], calls resolved intraprocedurally
//!   (the domain's conservative transfer), and the demanded cone
//!   evaluated **in parallel** on the worker pool. Every per-function
//!   result is exactly equal to the sequential batch oracle
//!   `dai_core::batch::batch_analyze` on the same CFG — the
//!   from-scratch-consistency gate the engine's test suite enforces.
//! * [`ResolverChoice::Interproc`] — the session wraps a
//!   [`dai_core::InterAnalyzer`] under a [`ContextPolicy`], resolving
//!   calls by demanding callee DAIG exits, exactly the machinery behind
//!   the REPL's `query`/`queryall`. Queries answer with the
//!   context-joined state, so `serve` matches the REPL's
//!   interprocedural answers. Evaluation is sequential (cross-unit
//!   demand is recursive), but still behind the session lock, so
//!   sessions remain concurrent with each other.
//!
//! ## Persistence
//!
//! Sessions opened from source text ([`Session`]'s `source`) record every
//! applied edit; `source + history` is the replayable description of the
//! current program that `dai-persist` snapshots require (see
//! [`Session::image`] / [`Session::restore`]). DAIG warm-start sections
//! are produced by the `Intra` backend (per-function units); an
//! `Interproc` session snapshots cold (source + history only), which is
//! sound — restore just recomputes on demand.

use dai_core::analysis::{resolve_loc_frontier, FuncAnalysis, LocResolution};
use dai_core::compile::TransferMode;
use dai_core::dot::{to_dot, DotOptions};
use dai_core::driver::ProgramEdit;
use dai_core::explain::ExplainSink;
use dai_core::graph::Value;
use dai_core::intern::CellId;
use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_core::name::Name;
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_lang::cfg::{lower_program, LoweredProgram};
use dai_lang::{Loc, Symbol};
use dai_memo::SharedMemoTable;
use dai_persist::{FuncImage, PersistDomain, RestoreReport, SessionImage};
use std::collections::HashMap;

use crate::engine::EngineError;
use crate::pool::PoolHandle;
use crate::scheduler::evaluate_targets_explain;

/// How a session resolves call statements (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolverChoice {
    /// Intraprocedural per-function analysis; calls havoc conservatively;
    /// parallel cone evaluation. The engine's original semantics.
    #[default]
    Intra,
    /// Interprocedural analysis demanding callee exits under the given
    /// context-sensitivity policy; matches the REPL's answers.
    Interproc {
        /// Context-sensitivity policy for callee units.
        policy: ContextPolicy,
    },
}

/// Structural outcome of an edit request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditOutcome {
    /// Locations added by a splice (0 for relabels).
    pub new_locs: usize,
    /// Edges added by a splice (0 for relabels).
    pub new_edges: usize,
}

/// Per-session activity counters (see [`Session::full_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Queries this session answered.
    pub queries: u64,
    /// Edits applied to this session (replayed history excluded).
    pub edits: u64,
    /// Saves taken of this session.
    pub saves: u64,
    /// Restores that produced or refreshed this session.
    pub loads: u64,
}

/// A deterministic picture of a session's DAIGs: per-function Graphviz
/// exports, sorted by function name (and internally sorted by cell name —
/// see `dai_core::dot`), so two snapshots of structurally identical
/// sessions are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The session's name.
    pub session: String,
    /// `(function name, DOT source)` pairs, sorted by function name; only
    /// functions whose DAIG has been demanded appear. Interprocedural
    /// sessions list one entry per `(function, context)` unit, labelled
    /// `f @ ctx`.
    pub functions: Vec<(String, String)>,
}

/// One per-function analysis unit plus its query-resolution cache.
///
/// `resolve_loc_cell` is a function of the DAIG's *structure* only (it
/// reads which iterates each converged fix edge points at), so a resolved
/// `(location → cell)` entry stays valid for exactly one structural epoch
/// ([`dai_core::Daig::struct_epoch`]). Caching it turns the steady-state
/// query path — everything already evaluated — into a hash lookup plus a
/// value clone.
struct Unit<D: AbstractDomain> {
    fa: FuncAnalysis<D>,
    resolved: HashMap<Loc, (u64, CellId)>,
}

/// The session's analysis machinery, chosen by [`ResolverChoice`].
enum Backend<D: AbstractDomain> {
    Intra {
        units: HashMap<Symbol, Unit<D>>,
    },
    Inter {
        policy: ContextPolicy,
        analyzer: Box<InterAnalyzer<D>>,
    },
}

/// One loaded program and its per-function analyses.
pub struct Session<D: AbstractDomain> {
    name: String,
    program: LoweredProgram,
    strategy: FixStrategy,
    /// Transfer-evaluation mode applied to every unit this session
    /// creates (staged closures vs. the AST interpreter; bit-identical).
    transfer: TransferMode,
    /// The program's original source text, when known; with `history`,
    /// the replayable description persistence saves.
    source: Option<String>,
    /// Every successfully applied edit, in order.
    history: Vec<ProgramEdit>,
    backend: Backend<D>,
    queries: u64,
    edits: u64,
    /// Times this session's state was persisted ([`Session::image`]
    /// successfully taken by a `Save`).
    saves: u64,
    /// 1 for a session that came out of [`Session::restore`], plus any
    /// later re-restores in place (replica snapshot application).
    loads: u64,
    /// `true` for a replica session: state replayed from another
    /// engine's journal, writable only through the replication apply
    /// path — client edits are rejected with `EngineError::ReadOnly`.
    replica: bool,
}

fn make_backend<D: AbstractDomain>(
    resolver: ResolverChoice,
    program: &LoweredProgram,
    strategy: FixStrategy,
    transfer: TransferMode,
) -> Backend<D> {
    match resolver {
        ResolverChoice::Intra => Backend::Intra {
            units: HashMap::new(),
        },
        ResolverChoice::Interproc { policy } => {
            let (entry, phi0) = match program.entry_cfg() {
                Some(cfg) => (cfg.name().to_string(), D::entry_default(cfg.params())),
                None => ("main".to_string(), D::entry_default(&[])),
            };
            Backend::Inter {
                policy,
                analyzer: Box::new(InterAnalyzer::with_config(
                    program.clone(),
                    policy,
                    &entry,
                    phi0,
                    strategy,
                    transfer,
                )),
            }
        }
    }
}

impl<D: AbstractDomain> Session<D> {
    /// Creates an intraprocedural session over `program` under the given
    /// iteration strategy, with no replayable source (not saveable).
    pub fn new(name: impl Into<String>, program: LoweredProgram, strategy: FixStrategy) -> Self {
        Session::with_config(
            name,
            program,
            strategy,
            ResolverChoice::Intra,
            TransferMode::default(),
            None,
        )
    }

    /// Creates a session with an explicit resolver choice, transfer mode,
    /// and (optionally) the program's source text, which makes the
    /// session saveable.
    pub fn with_config(
        name: impl Into<String>,
        program: LoweredProgram,
        strategy: FixStrategy,
        resolver: ResolverChoice,
        transfer: TransferMode,
        source: Option<String>,
    ) -> Self {
        let backend = make_backend(resolver, &program, strategy, transfer);
        Session {
            name: name.into(),
            program,
            strategy,
            transfer,
            source,
            history: Vec::new(),
            backend,
            queries: 0,
            edits: 0,
            saves: 0,
            loads: 0,
            replica: false,
        }
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program under analysis.
    pub fn program(&self) -> &LoweredProgram {
        &self.program
    }

    /// The resolver choice this session runs under.
    pub fn resolver(&self) -> ResolverChoice {
        match &self.backend {
            Backend::Intra { .. } => ResolverChoice::Intra,
            Backend::Inter { policy, .. } => ResolverChoice::Interproc { policy: *policy },
        }
    }

    /// The original source text, if the session was opened from source.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// The edits applied so far, in order.
    pub fn history(&self) -> &[ProgramEdit] {
        &self.history
    }

    /// Queries served and edits applied so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.queries, self.edits)
    }

    /// All four per-session persistence/activity counters. Per-session,
    /// not engine-global: a `Save` of session A must never inflate
    /// session B's accounting, and a restored session starts with the
    /// query/edit history it actually replayed — zero — plus one load.
    pub fn full_counters(&self) -> SessionCounters {
        SessionCounters {
            queries: self.queries,
            edits: self.edits,
            saves: self.saves,
            loads: self.loads,
        }
    }

    /// Records a successful persist of this session's image.
    pub fn note_saved(&mut self) {
        self.saves += 1;
    }

    /// Whether this session is a read-only replica (see the field doc).
    pub fn is_replica(&self) -> bool {
        self.replica
    }

    /// Marks this session as a read-only replica.
    pub fn set_replica(&mut self, replica: bool) {
        self.replica = replica;
    }

    fn unit_mut<'u>(
        units: &'u mut HashMap<Symbol, Unit<D>>,
        program: &LoweredProgram,
        strategy: FixStrategy,
        transfer: TransferMode,
        func: &str,
    ) -> Result<&'u mut Unit<D>, EngineError> {
        let sym = Symbol::new(func);
        if !units.contains_key(&sym) {
            let cfg = program
                .by_name(func)
                .ok_or_else(|| EngineError::NoSuchFunction(func.to_string()))?
                .clone();
            let phi0 = D::entry_default(cfg.params());
            units.insert(
                sym.clone(),
                Unit {
                    fa: FuncAnalysis::with_config(cfg, phi0, strategy, transfer),
                    resolved: HashMap::new(),
                },
            );
        }
        Ok(units.get_mut(&sym).expect("just ensured"))
    }

    /// Demands the abstract state at `loc` of `func` under the session's
    /// resolver choice — the singleton form of [`Session::query_locs`].
    ///
    /// # Errors
    ///
    /// [`EngineError::NoSuchFunction`] / `NoSuchCell` for unknown targets;
    /// otherwise scheduler failures.
    pub fn query_loc(
        &mut self,
        func: &str,
        loc: Loc,
        memo: &SharedMemoTable<Value<D>>,
        pool: &PoolHandle,
        stats: &mut QueryStats,
    ) -> Result<D, EngineError> {
        let mut per_query = [QueryStats::default()];
        let mut out = self.query_locs(
            func,
            std::slice::from_ref(&loc),
            memo,
            pool,
            stats,
            &mut per_query,
        );
        stats.absorb(per_query[0]);
        out.pop().expect("one answer per queried location")
    }

    /// Answers a whole batch of location queries against one function in
    /// a single pass — the engine's coalesced-query path.
    ///
    /// `Intra`: the members' demanded cones are evaluated as a **union**:
    /// each round collects, per still-unanswered member, either its
    /// resolved location cell or the outermost unconverged fix cell
    /// blocking its resolution ([`resolve_loc_frontier`]), and evaluates
    /// all of them in *one* [`evaluate_targets`] call on the worker pool.
    /// A cold batch therefore traverses one union cone instead of one
    /// cone per member; every answer is still exactly the sequential
    /// evaluator's (and the batch oracle's) value, because union
    /// evaluation applies the same `apply_ready` computations to the same
    /// inputs. `Interproc`: members are answered sequentially by
    /// [`dai_core::InterAnalyzer::query_joined`] under the one session
    /// lock the caller already holds — the batching win there is the
    /// single lock acquisition.
    ///
    /// Shared work (the union-cone evaluation) is recorded into
    /// `shared_stats`; per-member bookkeeping (cache hits, reuse,
    /// interprocedural work) into `per_query[i]`. Members fail
    /// individually: an unknown location yields `Err` in its slot while
    /// its siblings are still answered.
    ///
    /// # Panics
    ///
    /// Panics if `per_query.len() != locs.len()`.
    pub fn query_locs(
        &mut self,
        func: &str,
        locs: &[Loc],
        memo: &SharedMemoTable<Value<D>>,
        pool: &PoolHandle,
        shared_stats: &mut QueryStats,
        per_query: &mut [QueryStats],
    ) -> Vec<Result<D, EngineError>> {
        self.query_locs_explain(func, locs, memo, pool, shared_stats, per_query, None)
    }

    /// `true` when the session runs the intraprocedural backend — the
    /// only backend whose evaluation path supports cost attribution
    /// (interprocedural resolution routes around the parallel scheduler).
    pub fn intra_backend(&self) -> bool {
        matches!(self.backend, Backend::Intra { .. })
    }

    /// [`Session::query_locs`] with opt-in cost attribution: a supplied
    /// `sink` receives one record per demanded cell — including the
    /// `Q-Reuse` fast paths this layer answers without touching the
    /// scheduler — so report cell counts match the [`QueryStats`]
    /// movements exactly. `Inter` sessions ignore the sink (their
    /// evaluation never reaches the instrumented scheduler); callers
    /// wanting reports must check [`Session::intra_backend`] first.
    #[allow(clippy::too_many_arguments)]
    pub fn query_locs_explain(
        &mut self,
        func: &str,
        locs: &[Loc],
        memo: &SharedMemoTable<Value<D>>,
        pool: &PoolHandle,
        shared_stats: &mut QueryStats,
        per_query: &mut [QueryStats],
        sink: Option<&mut ExplainSink>,
    ) -> Vec<Result<D, EngineError>> {
        assert_eq!(per_query.len(), locs.len(), "one stats slot per member");
        self.queries += locs.len() as u64;
        match &mut self.backend {
            Backend::Intra { units } => {
                let unit = match Self::unit_mut(
                    units,
                    &self.program,
                    self.strategy,
                    self.transfer,
                    func,
                ) {
                    Ok(unit) => unit,
                    Err(_) => {
                        return locs
                            .iter()
                            .map(|_| Err(EngineError::NoSuchFunction(func.to_string())))
                            .collect();
                    }
                };
                Self::query_unit_locs(unit, locs, memo, pool, shared_stats, per_query, sink)
            }
            Backend::Inter { analyzer, .. } => {
                if self.program.by_name(func).is_none() {
                    return locs
                        .iter()
                        .map(|_| Err(EngineError::NoSuchFunction(func.to_string())))
                        .collect();
                }
                locs.iter()
                    .enumerate()
                    .map(|(i, &loc)| {
                        let before = analyzer.stats();
                        let out = analyzer.query_joined(func, loc).map_err(EngineError::Daig);
                        per_query[i].absorb(analyzer.stats().delta(&before));
                        out
                    })
                    .collect()
            }
        }
    }

    /// The `Intra` union-cone drain behind [`Session::query_locs`].
    #[allow(clippy::too_many_arguments)]
    fn query_unit_locs(
        unit: &mut Unit<D>,
        locs: &[Loc],
        memo: &SharedMemoTable<Value<D>>,
        pool: &PoolHandle,
        shared_stats: &mut QueryStats,
        per_query: &mut [QueryStats],
        mut sink: Option<&mut ExplainSink>,
    ) -> Vec<Result<D, EngineError>> {
        // Finish-time attribution is per id arena: tell the sink a new
        // function's DAIG is in play.
        if let Some(s) = sink.as_deref_mut() {
            s.begin_unit();
        }
        // One span per union drain; its payload is the number of cells the
        // drain loaded into cone tables (0 for a fully warm batch). Every
        // `engine.cells` span the rounds record falls inside it.
        let mut walk_span = dai_trace::span!("engine.cone_walk");
        let cells_before = shared_stats.cone_cells;
        let mut out: Vec<Option<Result<D, EngineError>>> = (0..locs.len()).map(|_| None).collect();
        let mut resolved: Vec<Option<Name>> = vec![None; locs.len()];
        // Members whose answer required no evaluation at all count as
        // `Q-Reuse`, exactly like an already-filled `evaluate_targets`
        // target.
        let mut demanded = vec![false; locs.len()];
        // Steady-state fast path: resolved cells are cached per structural
        // epoch; members still filled answer by lookup.
        let epoch = unit.fa.daig().struct_epoch();
        for (i, loc) in locs.iter().enumerate() {
            if let Some(&(cached_epoch, id)) = unit.resolved.get(loc) {
                // Entries are recorded against the post-evaluation epoch
                // and epochs only grow, so a cached epoch from the future
                // would mean the guard below can serve a resolution the
                // current structure never produced.
                debug_assert!(
                    cached_epoch <= epoch,
                    "resolution cache for {loc} is ahead of the DAIG \
                     (cached epoch {cached_epoch} > current {epoch})"
                );
                if cached_epoch == epoch {
                    debug_assert!(
                        unit.fa.daig().contains_id(id),
                        "resolution cache for {loc} points at a dead cell \
                         within its own epoch {epoch}"
                    );
                    if let Some(d) = unit.fa.daig().value_id(id).and_then(Value::as_state) {
                        per_query[i].reused += 1;
                        if let Some(s) = sink.as_deref_mut() {
                            s.record_reused(unit.fa.daig().name_of(id).to_string());
                        }
                        out[i] = Some(Ok(d.clone()));
                    }
                }
            }
        }
        // Round-based union drain: collect every member's frontier (its
        // resolved cell, or the outermost unconverged fix cell blocking
        // resolution), evaluate the union in one call, repeat. A member
        // nested under L loops needs at most L + 1 rounds, and only rounds
        // with unfilled targets traverse (and count) a cone — a cold batch
        // costs one union traversal, a warm one costs none.
        let round_bound = 2 + locs
            .iter()
            .map(|&l| unit.fa.cfg().enclosing_loops(l).len())
            .max()
            .unwrap_or(0);
        for _round in 0..round_bound {
            let mut targets: Vec<Name> = Vec::new();
            for (i, &loc) in locs.iter().enumerate() {
                if out[i].is_some() {
                    continue;
                }
                if resolved[i].is_none() {
                    match resolve_loc_frontier(&unit.fa, loc) {
                        Ok(LocResolution::Resolved(name)) => resolved[i] = Some(name),
                        Ok(LocResolution::NeedsFix(cell)) => {
                            demanded[i] = true;
                            targets.push(cell);
                            continue;
                        }
                        Err(e) => {
                            out[i] = Some(Err(EngineError::Daig(e)));
                            continue;
                        }
                    }
                }
                let name = resolved[i].as_ref().expect("resolved above");
                match unit.fa.daig().value(name) {
                    Some(v) => match v.as_state() {
                        Some(d) => {
                            if !demanded[i] {
                                per_query[i].reused += 1;
                                if let Some(s) = sink.as_deref_mut() {
                                    s.record_reused(name.to_string());
                                }
                            }
                            let d = d.clone();
                            // Record the resolution against the *post*-
                            // evaluation epoch: demanded unrolls changed
                            // the structure, and the resolved cell belongs
                            // to the final one.
                            if let Some(id) = unit.fa.daig().id_of(name) {
                                unit.resolved
                                    .insert(loc, (unit.fa.daig().struct_epoch(), id));
                            }
                            out[i] = Some(Ok(d));
                        }
                        None => {
                            out[i] = Some(Err(EngineError::Daig(dai_core::DaigError::Invariant(
                                format!("location cell {name} holds a statement"),
                            ))));
                        }
                    },
                    None => {
                        demanded[i] = true;
                        targets.push(name.clone());
                    }
                }
            }
            if targets.is_empty() {
                break;
            }
            targets.sort();
            targets.dedup();
            let _round_span = dai_trace::span!("engine.round", targets.len());
            if let Err(e) = evaluate_targets_explain(
                &mut unit.fa,
                &targets,
                memo,
                &IntraResolver,
                pool,
                shared_stats,
                sink.as_deref_mut(),
            ) {
                // A union-evaluation failure fails every still-pending
                // member; already-extracted answers stand.
                for slot in out.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(EngineError::Daig(e.clone())));
                }
                break;
            }
        }
        walk_span.set_arg(shared_stats.cone_cells - cells_before);
        out.into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    Err(EngineError::Daig(dai_core::DaigError::Invariant(format!(
                        "batched query at {} did not settle within the round bound",
                        locs[i]
                    ))))
                })
            })
            .collect()
    }

    /// Applies a program edit: the CFG is updated, and the affected DAIGs
    /// (if demanded already) are edited in place with minimal dirtying —
    /// exactly the incremental + demand-driven configuration. Successful
    /// edits are appended to the replayable [`Session::history`].
    ///
    /// Validation happens on a scratch copy of the program first, so a
    /// rejected edit (unknown edge, call-graph violation, malformed
    /// block) leaves the session exactly as it was: program, call graph,
    /// and DAIGs untouched.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cfg`] for malformed edits; the session is unchanged
    /// on error.
    pub fn apply_edit(&mut self, edit: &ProgramEdit) -> Result<EditOutcome, EngineError> {
        // Stage the edit on a clone; only an edit that fully validates
        // (including the call-graph refresh) is committed.
        let mut staged = self.program.clone();
        let (func, outcome) = match edit {
            ProgramEdit::Relabel { func, edge, stmt } => {
                let cfg = staged
                    .by_name_mut(func.as_str())
                    .ok_or_else(|| EngineError::NoSuchFunction(func.to_string()))?;
                dai_lang::edit::relabel_edge(cfg, *edge, stmt.clone())?;
                (func, EditOutcome::default())
            }
            ProgramEdit::Insert { func, edge, block } => {
                let cfg = staged
                    .by_name_mut(func.as_str())
                    .ok_or_else(|| EngineError::NoSuchFunction(func.to_string()))?;
                let info = dai_lang::edit::splice_block_on_edge(cfg, *edge, block)?;
                (
                    func,
                    EditOutcome {
                        new_locs: info.new_locs.len(),
                        new_edges: info.new_edges.len(),
                    },
                )
            }
        };
        staged.refresh_call_graph()?;
        // Commit: install the validated program, then replay the edit on
        // the demanded DAIGs (edits are deterministic, so every unit's CFG
        // clone ends up identical to the staged one).
        match &mut self.backend {
            Backend::Intra { units } => {
                self.program = staged;
                if let Some(unit) = units.get_mut(func) {
                    match edit {
                        ProgramEdit::Relabel { edge, stmt, .. } => {
                            unit.fa.relabel(*edge, stmt.clone())?;
                        }
                        ProgramEdit::Insert { edge, block, .. } => {
                            unit.fa.splice(*edge, block)?;
                        }
                    }
                    // A relabel leaves the structure (and epoch) intact but
                    // empties downstream cells; cached resolutions stay
                    // valid and simply miss on the emptied value. A splice
                    // bumps the epoch.
                }
            }
            Backend::Inter { analyzer, .. } => {
                // The analyzer re-validates and applies to its own program
                // + units (cross-unit dirtying included); it was given the
                // same program, so the staged validation above already
                // guarantees success.
                match edit {
                    ProgramEdit::Relabel { func, edge, stmt } => {
                        analyzer.relabel(func.as_str(), *edge, stmt.clone())?;
                    }
                    ProgramEdit::Insert { func, edge, block } => {
                        analyzer.splice(func.as_str(), *edge, block)?;
                    }
                }
                self.program = staged;
            }
        }
        self.history.push(edit.clone());
        self.edits += 1;
        Ok(outcome)
    }

    /// A deterministic DOT snapshot of every demanded DAIG.
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut functions: Vec<(String, String)> = match &self.backend {
            Backend::Intra { units } => units
                .iter()
                .map(|(f, unit)| {
                    let opts = DotOptions {
                        title: Some(format!("{f} — session {}", self.name)),
                        ..DotOptions::default()
                    };
                    (f.to_string(), to_dot(unit.fa.daig(), &opts))
                })
                .collect(),
            Backend::Inter { analyzer, .. } => {
                // Order comes from the unconditional sort below, shared
                // with the Intra arm.
                analyzer
                    .units_iter()
                    .map(|(key, unit)| {
                        let (f, ctx) = key;
                        let label = format!("{f} @ {ctx}");
                        let opts = DotOptions {
                            title: Some(format!("{label} — session {}", self.name)),
                            ..DotOptions::default()
                        };
                        (label, to_dot(unit.daig(), &opts))
                    })
                    .collect()
            }
        };
        functions.sort();
        SessionSnapshot {
            session: self.name.clone(),
            functions,
        }
    }
}

impl<D: PersistDomain> Session<D> {
    /// Assembles this session's snapshot image: the replayable header
    /// (source + history + strategy + policy) and the demanded DAIGs
    /// (`Intra` backend only — an `Interproc` session snapshots cold).
    /// The image's memo section starts empty; the engine's `Save` handler
    /// attaches the shared table's export after releasing the session
    /// lock.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotReplayable`] if the session was opened without
    /// source text — there is nothing sound to replay on restore.
    pub fn image(&self) -> Result<SessionImage<D>, EngineError> {
        let source = self
            .source
            .clone()
            .ok_or_else(|| EngineError::NotReplayable(self.name.clone()))?;
        let mut funcs: Vec<FuncImage<D>> = match &self.backend {
            Backend::Intra { units } => units
                .iter()
                .map(|(f, unit)| FuncImage {
                    func: f.clone(),
                    entry: unit.fa.entry_state().clone(),
                    daig: unit.fa.daig().clone(),
                })
                .collect(),
            Backend::Inter { .. } => Vec::new(),
        };
        funcs.sort_by(|a, b| a.func.cmp(&b.func));
        let policy = match &self.backend {
            Backend::Intra { .. } => None,
            Backend::Inter { policy, .. } => Some(*policy),
        };
        Ok(SessionImage {
            name: self.name.clone(),
            domain: D::domain_tag(),
            strategy: self.strategy,
            policy,
            source,
            edits: self.history.clone(),
            funcs,
            memo: Vec::new(),
        })
    }

    /// Rebuilds a session from a snapshot image under `resolver` —
    /// normally the choice implied by the snapshot itself
    /// (`image.policy`), which is how the engine's `Load` handler calls
    /// it: the source is re-parsed and lowered, the edit
    /// history replayed (deterministically reproducing the live session's
    /// CFGs, ids included), and — for the `Intra` backend — each restored
    /// DAIG is installed *after* cross-checking its statement cells
    /// against the replayed CFG. A DAIG that fails the cross-check is
    /// dropped (that function cold-starts), never trusted.
    ///
    /// Returns the session plus `(installed, dropped)` DAIG counts.
    ///
    /// # Errors
    ///
    /// [`EngineError::Parse`] / [`EngineError::Cfg`] if the source or an
    /// edit fails to replay (the snapshot header lied), in which case no
    /// session is produced.
    pub fn restore(
        image: SessionImage<D>,
        resolver: ResolverChoice,
        transfer: TransferMode,
        report: &RestoreReport,
    ) -> Result<(Session<D>, usize, usize), EngineError> {
        let program = dai_lang::parse_program(&image.source)
            .map_err(|e| EngineError::Parse(e.to_string()))
            .and_then(|p| lower_program(&p).map_err(EngineError::Cfg))?;
        let mut session = Session::with_config(
            image.name,
            program,
            image.strategy,
            resolver,
            transfer,
            Some(image.source),
        );
        for edit in &image.edits {
            session.apply_edit(edit)?;
        }
        debug_assert_eq!(session.history.len(), image.edits.len());
        // Replay counts as history, not as served work: the restored
        // session keeps its edit-history *provenance* (`history`, so a
        // re-save round-trips byte-identically) but its activity
        // counters start fresh, with exactly one load on the books.
        session.edits = 0;
        session.loads = 1;
        let mut installed = 0usize;
        let mut dropped = report.funcs_dropped;
        if !matches!(session.backend, Backend::Intra { .. }) {
            // An interprocedural session has no per-function units to
            // warm: intact DAIG sections are deliberately (and soundly)
            // unused — and counted as dropped, so a caller monitoring
            // warm-start health can see its sections went unused.
            return Ok((session, 0, dropped + image.funcs.len()));
        }
        if let Backend::Intra { units } = &mut session.backend {
            for f in image.funcs {
                let Some(cfg) = session.program.by_name(f.func.as_str()) else {
                    dropped += 1;
                    continue;
                };
                // Intra units are always built with the domain's default
                // entry state; a snapshot carrying anything else would
                // answer from a different φ₀ than freshly demanded
                // functions in the same session — drop it to cold rather
                // than break batch-oracle equality.
                if f.entry != D::entry_default(cfg.params()) {
                    dropped += 1;
                    continue;
                }
                // Cross-check: the DAIG's statement cells must hold
                // exactly the replayed CFG's edge labels; a mismatch means
                // the snapshot's DAIG does not describe this program.
                let consistent = cfg.edges().all(|e| {
                    f.daig
                        .value(&dai_core::Name::Stmt(e.id))
                        .and_then(Value::as_stmt)
                        == Some(&e.stmt)
                });
                if !consistent {
                    dropped += 1;
                    continue;
                }
                // `from_parts` restages transfers under the default mode;
                // align the unit with the session's configured one.
                let mut fa = FuncAnalysis::from_parts(cfg.clone(), f.daig, f.entry);
                fa.set_transfer_mode(transfer);
                units.insert(
                    f.func.clone(),
                    Unit {
                        fa,
                        resolved: HashMap::new(),
                    },
                );
                installed += 1;
            }
        }
        Ok((session, installed, dropped))
    }
}
