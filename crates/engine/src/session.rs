//! Analysis sessions: one loaded program, one `FuncAnalysis` per function.
//!
//! A session is the engine's unit of isolation and serialization: requests
//! against the same session are serialized behind its lock, while requests
//! against different sessions proceed concurrently on the worker pool.
//! Function units are created on demand (first query against a function
//! builds its DAIG), entry states come from
//! [`AbstractDomain::entry_default`], and calls are resolved
//! intraprocedurally (the domain's conservative call transfer) — which
//! keeps every per-function result exactly equal to the sequential batch
//! oracle `dai_core::batch::batch_analyze` on the same CFG, the
//! from-scratch-consistency gate the engine's test suite enforces.

use dai_core::analysis::{resolve_loc_cell, FuncAnalysis};
use dai_core::dot::{to_dot, DotOptions};
use dai_core::driver::ProgramEdit;
use dai_core::graph::Value;
use dai_core::intern::CellId;
use dai_core::query::QueryStats;
use dai_core::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_lang::cfg::LoweredProgram;
use dai_lang::{Loc, Symbol};
use dai_memo::SharedMemoTable;
use std::collections::HashMap;

use crate::engine::EngineError;
use crate::pool::PoolHandle;
use crate::scheduler::evaluate_targets;

/// Structural outcome of an edit request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditOutcome {
    /// Locations added by a splice (0 for relabels).
    pub new_locs: usize,
    /// Edges added by a splice (0 for relabels).
    pub new_edges: usize,
}

/// A deterministic picture of a session's DAIGs: per-function Graphviz
/// exports, sorted by function name (and internally sorted by cell name —
/// see `dai_core::dot`), so two snapshots of structurally identical
/// sessions are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The session's name.
    pub session: String,
    /// `(function name, DOT source)` pairs, sorted by function name; only
    /// functions whose DAIG has been demanded appear.
    pub functions: Vec<(String, String)>,
}

/// One per-function analysis unit plus its query-resolution cache.
///
/// `resolve_loc_cell` is a function of the DAIG's *structure* only (it
/// reads which iterates each converged fix edge points at), so a resolved
/// `(location → cell)` entry stays valid for exactly one structural epoch
/// ([`dai_core::Daig::struct_epoch`]). Caching it turns the steady-state
/// query path — everything already evaluated — into a hash lookup plus a
/// value clone.
struct Unit<D: AbstractDomain> {
    fa: FuncAnalysis<D>,
    resolved: HashMap<Loc, (u64, CellId)>,
}

/// One loaded program and its per-function analyses.
pub struct Session<D: AbstractDomain> {
    name: String,
    program: LoweredProgram,
    strategy: FixStrategy,
    units: HashMap<Symbol, Unit<D>>,
    queries: u64,
    edits: u64,
}

impl<D: AbstractDomain> Session<D> {
    /// Creates a session over `program` under the given iteration
    /// strategy.
    pub fn new(name: impl Into<String>, program: LoweredProgram, strategy: FixStrategy) -> Self {
        Session {
            name: name.into(),
            program,
            strategy,
            units: HashMap::new(),
            queries: 0,
            edits: 0,
        }
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program under analysis.
    pub fn program(&self) -> &LoweredProgram {
        &self.program
    }

    /// Queries served and edits applied so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.queries, self.edits)
    }

    fn unit_mut(&mut self, func: &str) -> Result<&mut Unit<D>, EngineError> {
        let sym = Symbol::new(func);
        if !self.units.contains_key(&sym) {
            let cfg = self
                .program
                .by_name(func)
                .ok_or_else(|| EngineError::NoSuchFunction(func.to_string()))?
                .clone();
            let phi0 = D::entry_default(cfg.params());
            self.units.insert(
                sym.clone(),
                Unit {
                    fa: FuncAnalysis::with_strategy(cfg, phi0, self.strategy),
                    resolved: HashMap::new(),
                },
            );
        }
        Ok(self.units.get_mut(&sym).expect("just ensured"))
    }

    /// Demands the fixed-point-consistent abstract state at `loc` of
    /// `func`, evaluating the demanded cone on the worker pool. This is
    /// the parallel counterpart of `FuncAnalysis::query_loc`: the
    /// enclosing fixed points are demanded outermost-first, then the body
    /// cell of the converged iteration is read — so the returned state is
    /// the one the sequential evaluator (and the batch oracle) produces.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoSuchFunction`] / `NoSuchCell` for unknown targets;
    /// otherwise scheduler failures.
    pub fn query_loc(
        &mut self,
        func: &str,
        loc: Loc,
        memo: &SharedMemoTable<Value<D>>,
        pool: &PoolHandle,
        stats: &mut QueryStats,
    ) -> Result<D, EngineError> {
        self.queries += 1;
        let unit = self.unit_mut(func)?;
        // Steady-state fast path: the resolved cell is cached per
        // structural epoch; if it is still filled, the query is a lookup.
        let epoch = unit.fa.daig().struct_epoch();
        if let Some(&(cached_epoch, id)) = unit.resolved.get(&loc) {
            if cached_epoch == epoch {
                if let Some(d) = unit.fa.daig().value_id(id).and_then(Value::as_state) {
                    stats.reused += 1;
                    return Ok(d.clone());
                }
            }
        }
        // The fix-chain walk lives in dai-core (`resolve_loc_cell`); the
        // engine only substitutes *how* each demanded cell gets filled —
        // parallel frontier evaluation instead of the sequential query.
        let cell = resolve_loc_cell(&mut unit.fa, loc, |fa, cell| {
            evaluate_targets(fa, std::slice::from_ref(cell), memo, pool, stats)
        })?;
        evaluate_targets(&mut unit.fa, std::slice::from_ref(&cell), memo, pool, stats)?;
        // Record the resolution against the *post*-evaluation epoch:
        // demanded unrolls during evaluation changed the structure, and
        // the resolved cell belongs to the final one.
        if let Some(id) = unit.fa.daig().id_of(&cell) {
            unit.resolved
                .insert(loc, (unit.fa.daig().struct_epoch(), id));
        }
        unit.fa
            .daig()
            .value(&cell)
            .and_then(Value::as_state)
            .cloned()
            .ok_or_else(|| {
                EngineError::Daig(dai_core::DaigError::Invariant(format!(
                    "location cell {cell} holds a statement"
                )))
            })
    }

    /// Applies a program edit: the CFG is updated, and the function's DAIG
    /// (if demanded already) is edited in place with minimal dirtying —
    /// exactly the incremental + demand-driven configuration.
    ///
    /// Validation happens on a scratch copy of the program first, so a
    /// rejected edit (unknown edge, call-graph violation, malformed
    /// block) leaves the session exactly as it was: program, call graph,
    /// and DAIGs untouched.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cfg`] for malformed edits; the session is unchanged
    /// on error.
    pub fn apply_edit(&mut self, edit: &ProgramEdit) -> Result<EditOutcome, EngineError> {
        // Stage the edit on a clone; only an edit that fully validates
        // (including the call-graph refresh) is committed.
        let mut staged = self.program.clone();
        let (func, outcome) = match edit {
            ProgramEdit::Relabel { func, edge, stmt } => {
                let cfg = staged
                    .by_name_mut(func.as_str())
                    .ok_or_else(|| EngineError::NoSuchFunction(func.to_string()))?;
                dai_lang::edit::relabel_edge(cfg, *edge, stmt.clone())?;
                (func, EditOutcome::default())
            }
            ProgramEdit::Insert { func, edge, block } => {
                let cfg = staged
                    .by_name_mut(func.as_str())
                    .ok_or_else(|| EngineError::NoSuchFunction(func.to_string()))?;
                let info = dai_lang::edit::splice_block_on_edge(cfg, *edge, block)?;
                (
                    func,
                    EditOutcome {
                        new_locs: info.new_locs.len(),
                        new_edges: info.new_edges.len(),
                    },
                )
            }
        };
        staged.refresh_call_graph()?;
        // Commit: install the validated program, then replay the edit on
        // the function's DAIG (edits are deterministic, so the unit's CFG
        // clone ends up identical to the staged one).
        self.program = staged;
        if let Some(unit) = self.units.get_mut(func) {
            match edit {
                ProgramEdit::Relabel { edge, stmt, .. } => {
                    unit.fa.relabel(*edge, stmt.clone())?;
                }
                ProgramEdit::Insert { edge, block, .. } => {
                    unit.fa.splice(*edge, block)?;
                }
            }
            // A relabel leaves the structure (and epoch) intact but
            // empties downstream cells; cached resolutions stay valid and
            // simply miss on the emptied value. A splice bumps the epoch.
        }
        self.edits += 1;
        Ok(outcome)
    }

    /// A deterministic DOT snapshot of every demanded DAIG.
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut functions: Vec<(String, String)> = self
            .units
            .iter()
            .map(|(f, unit)| {
                let opts = DotOptions {
                    title: Some(format!("{f} — session {}", self.name)),
                    ..DotOptions::default()
                };
                (f.to_string(), to_dot(unit.fa.daig(), &opts))
            })
            .collect();
        functions.sort();
        SessionSnapshot {
            session: self.name.clone(),
            functions,
        }
    }
}
