//! The [`Persist`] trait — hand-rolled binary encode/decode — and its
//! implementations for every type a snapshot carries: the subject
//! language's syntax (`dai-lang`), DAIG cell names and values
//! (`dai-core`), and the abstract states of every shipped domain
//! (`dai-domains`).
//!
//! Design rules:
//!
//! * **Self-describing enough to fail loudly.** Every enum writes a one-
//!   byte tag; decoders reject unknown tags with
//!   [`PersistError::Corrupt`] instead of guessing. Counts are bounded by
//!   the remaining input, so a corrupted length can never trigger a
//!   pathological allocation.
//! * **Canonical in, canonical out.** Domain states re-enter through
//!   their normalizing constructors (`from_bindings`, [`Oct::from_parts`],
//!   [`Sign::from_bits`]), so a decoded state satisfies the same
//!   representation invariants `Eq`/`Hash` rely on — a snapshot cannot
//!   smuggle in a non-canonical state that would break `Q-Loop-Converge`.
//! * **Bounded recursion.** [`Expr`] and [`AstStmt`] are recursive;
//!   decoding tracks depth and rejects nesting beyond
//!   [`MAX_DECODE_DEPTH`], so corrupt input cannot overflow the stack.

use crate::codec::{PersistError, Reader, Writer};
use dai_core::driver::ProgramEdit;
use dai_core::graph::Value;
use dai_core::name::{IterCtx, Name};
use dai_core::strategy::{Convergence, FixStrategy};
use dai_domains::bool3::Bool3;
use dai_domains::constprop::{Const, ConstDomain};
use dai_domains::interval::{AbsVal, ArrayAbs, Bound, Interval, IntervalDomain};
use dai_domains::octagon::{Oct, OctagonDomain};
use dai_domains::shape::{Addr, ShapeDomain, SymHeap};
use dai_domains::sign::{Sign, SignDomain};
use dai_domains::{AbstractDomain, Prod};
use dai_lang::{AstStmt, BinOp, Block, EdgeId, Expr, Loc, Stmt, Symbol, UnOp};
use dai_memo::MemoKey;
use std::collections::BTreeMap;

/// Maximum nesting depth accepted when decoding recursive syntax.
pub const MAX_DECODE_DEPTH: u32 = 512;

/// Binary encode/decode against the [`crate::codec`] primitives.
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn put(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// [`PersistError`] on truncated or structurally invalid input.
    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

/// An [`AbstractDomain`] that snapshots can carry, with a tag naming the
/// domain so a file saved under one domain is rejected (rather than
/// misdecoded) when loaded under another.
pub trait PersistDomain: AbstractDomain + Persist {
    /// A stable, human-readable name of the domain ("interval",
    /// "octagon", …) recorded in the session header.
    fn domain_tag() -> String;

    /// A cheap identity token for encode memoization, or `None` (the
    /// default) to opt out.
    ///
    /// Contract: while both states are alive, two states returning the
    /// same `Some` token must encode to identical bytes under
    /// [`Persist::put`]. Tokens derived from allocation addresses are
    /// only unique for as long as the allocation lives, so a cache
    /// keyed on them must retain a clone of the state alongside each
    /// entry to pin the address.
    fn encode_identity(&self) -> Option<u64> {
        None
    }
}

pub(crate) fn bad_tag(what: &str, tag: u8) -> PersistError {
    PersistError::Corrupt(format!("unknown {what} tag {tag}"))
}

// ---------------------------------------------------------------------
// Primitives and containers.
// ---------------------------------------------------------------------

impl Persist for bool {
    fn put(&self, w: &mut Writer) {
        w.u8(u8::from(*self));
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(bad_tag("bool", t)),
        }
    }
}

impl Persist for u32 {
    fn put(&self, w: &mut Writer) {
        w.u32(*self);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.u32()
    }
}

impl Persist for u64 {
    fn put(&self, w: &mut Writer) {
        w.u64(*self);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.u64()
    }
}

impl Persist for i64 {
    fn put(&self, w: &mut Writer) {
        w.i64(*self);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.i64()
    }
}

impl Persist for String {
    fn put(&self, w: &mut Writer) {
        w.str(self);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.str()
    }
}

impl Persist for Symbol {
    fn put(&self, w: &mut Writer) {
        w.str(self.as_str());
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        // `str_ref` borrows the input: one allocation (the `Arc<str>`)
        // per symbol instead of two.
        Ok(Symbol::new(r.str_ref()?))
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn put(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for item in self {
            item.put(w);
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.u64()?;
        // Every element consumes at least one byte, so a count beyond the
        // remaining input is structurally impossible.
        if n > r.remaining() as u64 {
            return Err(PersistError::Corrupt(format!(
                "collection count {n} exceeds remaining input"
            )));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(T::get(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Option<T> {
    fn put(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.put(w);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            t => Err(bad_tag("option", t)),
        }
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
        self.1.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl Persist for dai_core::query::QueryStats {
    fn put(&self, w: &mut Writer) {
        w.u64(self.computed);
        w.u64(self.memo_matched);
        w.u64(self.reused);
        w.u64(self.unrolls);
        w.u64(self.fix_converged);
        w.u64(self.cone_walks);
        w.u64(self.cone_cells);
        w.u64(self.transfers_compiled);
        w.u64(self.transfers_interp);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(dai_core::query::QueryStats {
            computed: r.u64()?,
            memo_matched: r.u64()?,
            reused: r.u64()?,
            unrolls: r.u64()?,
            fix_converged: r.u64()?,
            cone_walks: r.u64()?,
            cone_cells: r.u64()?,
            transfers_compiled: r.u64()?,
            transfers_interp: r.u64()?,
        })
    }
}

impl Persist for dai_memo::MemoStats {
    fn put(&self, w: &mut Writer) {
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.insertions);
        w.u64(self.evictions);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(dai_memo::MemoStats {
            hits: r.u64()?,
            misses: r.u64()?,
            insertions: r.u64()?,
            evictions: r.u64()?,
        })
    }
}

impl Persist for MemoKey {
    fn put(&self, w: &mut Writer) {
        w.u128(self.0);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(MemoKey(r.u128()?))
    }
}

// ---------------------------------------------------------------------
// dai-lang: locations, edges, expressions, statements, blocks.
// ---------------------------------------------------------------------

impl Persist for Loc {
    fn put(&self, w: &mut Writer) {
        w.u32(self.0);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Loc(r.u32()?))
    }
}

impl Persist for EdgeId {
    fn put(&self, w: &mut Writer) {
        w.u32(self.0);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(EdgeId(r.u32()?))
    }
}

impl Persist for UnOp {
    fn put(&self, w: &mut Writer) {
        w.u8(match self {
            UnOp::Neg => 0,
            UnOp::Not => 1,
        });
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(UnOp::Neg),
            1 => Ok(UnOp::Not),
            t => Err(bad_tag("unop", t)),
        }
    }
}

impl Persist for BinOp {
    fn put(&self, w: &mut Writer) {
        w.u8(match self {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Mod => 4,
            BinOp::Eq => 5,
            BinOp::Ne => 6,
            BinOp::Lt => 7,
            BinOp::Le => 8,
            BinOp::Gt => 9,
            BinOp::Ge => 10,
            BinOp::And => 11,
            BinOp::Or => 12,
        });
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::Div,
            4 => BinOp::Mod,
            5 => BinOp::Eq,
            6 => BinOp::Ne,
            7 => BinOp::Lt,
            8 => BinOp::Le,
            9 => BinOp::Gt,
            10 => BinOp::Ge,
            11 => BinOp::And,
            12 => BinOp::Or,
            t => return Err(bad_tag("binop", t)),
        })
    }
}

fn put_expr(e: &Expr, w: &mut Writer) {
    match e {
        Expr::Int(n) => {
            w.u8(0);
            w.i64(*n);
        }
        Expr::Bool(b) => {
            w.u8(1);
            b.put(w);
        }
        Expr::Null => w.u8(2),
        Expr::Var(v) => {
            w.u8(3);
            v.put(w);
        }
        Expr::Unary(op, inner) => {
            w.u8(4);
            op.put(w);
            put_expr(inner, w);
        }
        Expr::Binary(op, l, rhs) => {
            w.u8(5);
            op.put(w);
            put_expr(l, w);
            put_expr(rhs, w);
        }
        Expr::ArrayLit(es) => {
            w.u8(6);
            w.u64(es.len() as u64);
            for e in es {
                put_expr(e, w);
            }
        }
        Expr::ArrayRead(a, i) => {
            w.u8(7);
            put_expr(a, w);
            put_expr(i, w);
        }
        Expr::ArrayLen(a) => {
            w.u8(8);
            put_expr(a, w);
        }
        Expr::Field(e, f) => {
            w.u8(9);
            put_expr(e, w);
            f.put(w);
        }
        Expr::AllocNode => w.u8(10),
    }
}

fn get_expr(r: &mut Reader<'_>, depth: u32) -> Result<Expr, PersistError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(PersistError::Corrupt(
            "expression nesting exceeds decode depth bound".to_string(),
        ));
    }
    Ok(match r.u8()? {
        0 => Expr::Int(r.i64()?),
        1 => Expr::Bool(bool::get(r)?),
        2 => Expr::Null,
        3 => Expr::Var(Symbol::get(r)?),
        4 => Expr::Unary(UnOp::get(r)?, Box::new(get_expr(r, depth + 1)?)),
        5 => {
            let op = BinOp::get(r)?;
            let l = get_expr(r, depth + 1)?;
            let rhs = get_expr(r, depth + 1)?;
            Expr::Binary(op, Box::new(l), Box::new(rhs))
        }
        6 => {
            let n = r.u64()?;
            if n > r.remaining() as u64 {
                return Err(PersistError::Corrupt(
                    "array literal count exceeds remaining input".to_string(),
                ));
            }
            let mut es = Vec::with_capacity(n as usize);
            for _ in 0..n {
                es.push(get_expr(r, depth + 1)?);
            }
            Expr::ArrayLit(es)
        }
        7 => {
            let a = get_expr(r, depth + 1)?;
            let i = get_expr(r, depth + 1)?;
            Expr::ArrayRead(Box::new(a), Box::new(i))
        }
        8 => Expr::ArrayLen(Box::new(get_expr(r, depth + 1)?)),
        9 => {
            let e = get_expr(r, depth + 1)?;
            Expr::Field(Box::new(e), Symbol::get(r)?)
        }
        10 => Expr::AllocNode,
        t => return Err(bad_tag("expr", t)),
    })
}

impl Persist for Expr {
    fn put(&self, w: &mut Writer) {
        put_expr(self, w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        get_expr(r, 0)
    }
}

impl Persist for Stmt {
    fn put(&self, w: &mut Writer) {
        match self {
            Stmt::Skip => w.u8(0),
            Stmt::Assign(x, e) => {
                w.u8(1);
                x.put(w);
                e.put(w);
            }
            Stmt::ArrayWrite(a, i, e) => {
                w.u8(2);
                a.put(w);
                i.put(w);
                e.put(w);
            }
            Stmt::FieldWrite(x, f, e) => {
                w.u8(3);
                x.put(w);
                f.put(w);
                e.put(w);
            }
            Stmt::Assume(e) => {
                w.u8(4);
                e.put(w);
            }
            Stmt::Print(e) => {
                w.u8(5);
                e.put(w);
            }
            Stmt::Call { lhs, callee, args } => {
                w.u8(6);
                lhs.put(w);
                callee.put(w);
                args.put(w);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Stmt::Skip,
            1 => Stmt::Assign(Symbol::get(r)?, Expr::get(r)?),
            2 => Stmt::ArrayWrite(Symbol::get(r)?, Expr::get(r)?, Expr::get(r)?),
            3 => Stmt::FieldWrite(Symbol::get(r)?, Symbol::get(r)?, Expr::get(r)?),
            4 => Stmt::Assume(Expr::get(r)?),
            5 => Stmt::Print(Expr::get(r)?),
            6 => Stmt::Call {
                lhs: Option::<Symbol>::get(r)?,
                callee: Symbol::get(r)?,
                args: Vec::<Expr>::get(r)?,
            },
            t => return Err(bad_tag("stmt", t)),
        })
    }
}

fn put_ast(s: &AstStmt, w: &mut Writer) {
    match s {
        AstStmt::Simple(s) => {
            w.u8(0);
            s.put(w);
        }
        AstStmt::If { cond, then_, else_ } => {
            w.u8(1);
            cond.put(w);
            put_block(then_, w);
            put_block(else_, w);
        }
        AstStmt::While { cond, body } => {
            w.u8(2);
            cond.put(w);
            put_block(body, w);
        }
        AstStmt::Nested(b) => {
            w.u8(3);
            put_block(b, w);
        }
        AstStmt::Return(e) => {
            w.u8(4);
            e.put(w);
        }
    }
}

fn put_block(b: &Block, w: &mut Writer) {
    w.u64(b.0.len() as u64);
    for s in &b.0 {
        put_ast(s, w);
    }
}

fn get_ast(r: &mut Reader<'_>, depth: u32) -> Result<AstStmt, PersistError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(PersistError::Corrupt(
            "statement nesting exceeds decode depth bound".to_string(),
        ));
    }
    Ok(match r.u8()? {
        0 => AstStmt::Simple(Stmt::get(r)?),
        1 => {
            let cond = Expr::get(r)?;
            let then_ = get_block(r, depth + 1)?;
            let else_ = get_block(r, depth + 1)?;
            AstStmt::If { cond, then_, else_ }
        }
        2 => {
            let cond = Expr::get(r)?;
            let body = get_block(r, depth + 1)?;
            AstStmt::While { cond, body }
        }
        3 => AstStmt::Nested(get_block(r, depth + 1)?),
        4 => AstStmt::Return(Option::<Expr>::get(r)?),
        t => return Err(bad_tag("ast-stmt", t)),
    })
}

fn get_block(r: &mut Reader<'_>, depth: u32) -> Result<Block, PersistError> {
    let n = r.u64()?;
    if n > r.remaining() as u64 {
        return Err(PersistError::Corrupt(
            "block count exceeds remaining input".to_string(),
        ));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(get_ast(r, depth)?);
    }
    Ok(Block(out))
}

impl Persist for AstStmt {
    fn put(&self, w: &mut Writer) {
        put_ast(self, w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        get_ast(r, 0)
    }
}

impl Persist for Block {
    fn put(&self, w: &mut Writer) {
        put_block(self, w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        get_block(r, 0)
    }
}

// ---------------------------------------------------------------------
// dai-core: edits, names, strategies, values.
// ---------------------------------------------------------------------

impl Persist for ProgramEdit {
    fn put(&self, w: &mut Writer) {
        match self {
            ProgramEdit::Relabel { func, edge, stmt } => {
                w.u8(0);
                func.put(w);
                edge.put(w);
                stmt.put(w);
            }
            ProgramEdit::Insert { func, edge, block } => {
                w.u8(1);
                func.put(w);
                edge.put(w);
                block.put(w);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => ProgramEdit::Relabel {
                func: Symbol::get(r)?,
                edge: EdgeId::get(r)?,
                stmt: Stmt::get(r)?,
            },
            1 => ProgramEdit::Insert {
                func: Symbol::get(r)?,
                edge: EdgeId::get(r)?,
                block: Block::get(r)?,
            },
            t => return Err(bad_tag("edit", t)),
        })
    }
}

impl Persist for IterCtx {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(IterCtx(Vec::<(Loc, u32)>::get(r)?))
    }
}

impl Persist for Name {
    fn put(&self, w: &mut Writer) {
        match self {
            Name::State { loc, ctx } => {
                w.u8(0);
                loc.put(w);
                ctx.put(w);
            }
            Name::PreWiden { head, ctx } => {
                w.u8(1);
                head.put(w);
                ctx.put(w);
            }
            Name::Stmt(e) => {
                w.u8(2);
                e.put(w);
            }
            Name::PreJoin { edge, ctx } => {
                w.u8(3);
                edge.put(w);
                ctx.put(w);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Name::State {
                loc: Loc::get(r)?,
                ctx: IterCtx::get(r)?,
            },
            1 => Name::PreWiden {
                head: Loc::get(r)?,
                ctx: IterCtx::get(r)?,
            },
            2 => Name::Stmt(EdgeId::get(r)?),
            3 => Name::PreJoin {
                edge: EdgeId::get(r)?,
                ctx: IterCtx::get(r)?,
            },
            t => return Err(bad_tag("name", t)),
        })
    }
}

impl Persist for dai_core::interproc::ContextPolicy {
    fn put(&self, w: &mut Writer) {
        match self {
            dai_core::interproc::ContextPolicy::Insensitive => w.u8(0),
            dai_core::interproc::ContextPolicy::CallString(k) => {
                w.u8(1);
                w.u64(*k as u64);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => dai_core::interproc::ContextPolicy::Insensitive,
            1 => dai_core::interproc::ContextPolicy::CallString(r.u64()? as usize),
            t => return Err(bad_tag("context-policy", t)),
        })
    }
}

impl Persist for Convergence {
    fn put(&self, w: &mut Writer) {
        w.u8(match self {
            Convergence::Equal => 0,
            Convergence::Leq => 1,
        });
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(Convergence::Equal),
            1 => Ok(Convergence::Leq),
            t => Err(bad_tag("convergence", t)),
        }
    }
}

impl Persist for FixStrategy {
    fn put(&self, w: &mut Writer) {
        w.u32(self.widen_delay);
        self.convergence.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(FixStrategy {
            widen_delay: r.u32()?,
            convergence: Convergence::get(r)?,
        })
    }
}

impl<D: Persist> Persist for Value<D> {
    fn put(&self, w: &mut Writer) {
        match self {
            Value::Stmt(s) => {
                w.u8(0);
                s.put(w);
            }
            Value::State(d) => {
                w.u8(1);
                d.put(w);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Value::Stmt(Stmt::get(r)?),
            1 => Value::State(D::get(r)?),
            t => return Err(bad_tag("value", t)),
        })
    }
}

// ---------------------------------------------------------------------
// dai-domains: the shipped abstract domains.
// ---------------------------------------------------------------------

impl Persist for Bool3 {
    fn put(&self, w: &mut Writer) {
        w.u8(match self {
            Bool3::Bot => 0,
            Bool3::True => 1,
            Bool3::False => 2,
            Bool3::Top => 3,
        });
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Bool3::Bot,
            1 => Bool3::True,
            2 => Bool3::False,
            3 => Bool3::Top,
            t => return Err(bad_tag("bool3", t)),
        })
    }
}

impl Persist for Bound {
    fn put(&self, w: &mut Writer) {
        match self {
            Bound::NegInf => w.u8(0),
            Bound::Fin(n) => {
                w.u8(1);
                w.i64(*n);
            }
            Bound::PosInf => w.u8(2),
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Bound::NegInf,
            1 => Bound::Fin(r.i64()?),
            2 => Bound::PosInf,
            t => return Err(bad_tag("bound", t)),
        })
    }
}

impl Persist for Interval {
    fn put(&self, w: &mut Writer) {
        self.lo().put(w);
        self.hi().put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        // `Interval::new` canonicalizes the empty interval.
        Ok(Interval::new(Bound::get(r)?, Bound::get(r)?))
    }
}

impl Persist for AbsVal {
    fn put(&self, w: &mut Writer) {
        match self {
            AbsVal::Bot => w.u8(0),
            AbsVal::Num(iv) => {
                w.u8(1);
                iv.put(w);
            }
            AbsVal::Boolean(b) => {
                w.u8(2);
                b.put(w);
            }
            AbsVal::NullRef => w.u8(3),
            AbsVal::NodeRef => w.u8(4),
            AbsVal::AnyRef => w.u8(5),
            AbsVal::Arr(a) => {
                w.u8(6);
                a.len.put(w);
                a.elem.put(w);
            }
            AbsVal::Top => w.u8(7),
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => AbsVal::Bot,
            1 => AbsVal::Num(Interval::get(r)?),
            2 => AbsVal::Boolean(Bool3::get(r)?),
            3 => AbsVal::NullRef,
            4 => AbsVal::NodeRef,
            5 => AbsVal::AnyRef,
            6 => {
                let len = Interval::get(r)?;
                let elem = AbsVal::get(r)?;
                AbsVal::Arr(ArrayAbs {
                    len,
                    elem: Box::new(elem),
                })
            }
            7 => AbsVal::Top,
            t => return Err(bad_tag("absval", t)),
        })
    }
}

/// Encodes a `Bottom | Env(map)` environment domain: tag byte, then the
/// sorted `(Symbol, V)` pairs (a `BTreeMap` iterates sorted, so encoding
/// is deterministic).
fn put_env<V: Persist>(bottom: bool, env: Option<&BTreeMap<Symbol, V>>, w: &mut Writer) {
    if bottom {
        w.u8(0);
        return;
    }
    w.u8(1);
    let env = env.expect("non-bottom env");
    w.u64(env.len() as u64);
    for (k, v) in env {
        k.put(w);
        v.put(w);
    }
}

fn get_env_entries<V: Persist>(
    r: &mut Reader<'_>,
) -> Result<Option<Vec<(Symbol, V)>>, PersistError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Vec::<(Symbol, V)>::get(r)?)),
        t => Err(bad_tag("env-domain", t)),
    }
}

impl Persist for IntervalDomain {
    fn put(&self, w: &mut Writer) {
        match self {
            IntervalDomain::Bottom => put_env::<AbsVal>(true, None, w),
            IntervalDomain::Env(env) => put_env(false, Some(env), w),
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match get_env_entries::<AbsVal>(r)? {
            None => IntervalDomain::Bottom,
            // `from_bindings` re-normalizes, so decoded states satisfy the
            // domain's canonical-form invariant.
            Some(entries) => IntervalDomain::from_bindings(entries),
        })
    }
}

impl Persist for Sign {
    fn put(&self, w: &mut Writer) {
        w.u8(self.bits());
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let bits = r.u8()?;
        Sign::from_bits(bits).ok_or_else(|| bad_tag("sign", bits))
    }
}

impl Persist for SignDomain {
    fn put(&self, w: &mut Writer) {
        match self {
            SignDomain::Bottom => put_env::<Sign>(true, None, w),
            SignDomain::Env(env) => put_env(false, Some(env), w),
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match get_env_entries::<Sign>(r)? {
            None => SignDomain::Bottom,
            Some(entries) => SignDomain::from_bindings(entries),
        })
    }
}

impl Persist for Const {
    fn put(&self, w: &mut Writer) {
        match self {
            Const::Int(n) => {
                w.u8(0);
                w.i64(*n);
            }
            Const::Bool(b) => {
                w.u8(1);
                b.put(w);
            }
            Const::Null => w.u8(2),
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Const::Int(r.i64()?),
            1 => Const::Bool(bool::get(r)?),
            2 => Const::Null,
            t => return Err(bad_tag("const", t)),
        })
    }
}

impl Persist for ConstDomain {
    fn put(&self, w: &mut Writer) {
        match self {
            ConstDomain::Bottom => put_env::<Const>(true, None, w),
            ConstDomain::Env(env) => put_env(false, Some(env), w),
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match get_env_entries::<Const>(r)? {
            None => ConstDomain::Bottom,
            Some(entries) => ConstDomain::from_bindings(entries),
        })
    }
}

/// Token bytes of the compact DBM encoding (octagon tag 2). A closed
/// octagon's difference-bound matrix is dominated by `INF` (no
/// constraint) and small finite bounds, so the raw 8-bytes-per-entry
/// layout spends ~90% of its bytes on two values. The compact layout
/// emits one token byte per run/entry:
///
/// * `0xFF` — a run of `INF` entries; a length-prefix varint-free `u32`
///   run length follows (runs are short, 4 bytes keeps decode branchless);
/// * `0xFE` — an escape: the entry as a raw little-endian `i64` follows;
/// * `0x00..=0xFD` — the entry itself, zigzag-encoded (covers
///   `-127..=126`), no further bytes.
///
/// On the Fig. 10 octagon workload this shrinks abstract-state blobs
/// ~8×, which cuts the RPC checksum, copy, and syscall costs by the
/// same factor (the wire's dominant costs all scale with payload bytes).
const DBM_INF_RUN: u8 = 0xFF;
const DBM_ESCAPE: u8 = 0xFE;

fn put_dbm_compact(dbm: &[i64], w: &mut Writer) {
    const INF: i64 = i64::MAX;
    let mut i = 0;
    while i < dbm.len() {
        let c = dbm[i];
        if c == INF {
            // `position` over the tail vectorizes the run scan, and INF
            // dominates the matrix, so this is the loop's hot exit.
            let mut run = dbm[i..]
                .iter()
                .position(|&c| c != INF)
                .unwrap_or(dbm.len() - i);
            i += run;
            while run > 0 {
                let chunk = run.min(u32::MAX as usize);
                w.u8(DBM_INF_RUN);
                w.u32(chunk as u32);
                run -= chunk;
            }
            continue;
        }
        i += 1;
        let zigzag = ((c << 1) ^ (c >> 63)) as u64;
        if zigzag < DBM_ESCAPE as u64 {
            w.u8(zigzag as u8);
        } else {
            w.u8(DBM_ESCAPE);
            w.i64(c);
        }
    }
}

fn get_dbm_compact(entries: usize, r: &mut Reader<'_>) -> Result<Vec<i64>, PersistError> {
    const INF: i64 = i64::MAX;
    // Pre-fill with INF: runs (the dominant token) then only advance the
    // cursor — no per-entry writes at all.
    let mut dbm = vec![INF; entries];
    let mut i = 0;
    while i < entries {
        match r.u8()? {
            DBM_INF_RUN => {
                let run = r.u32()? as usize;
                if run == 0 || run > entries - i {
                    return Err(PersistError::Corrupt(format!(
                        "octagon INF run of {run} overflows the {entries}-entry DBM"
                    )));
                }
                i += run;
            }
            DBM_ESCAPE => {
                dbm[i] = r.i64()?;
                i += 1;
            }
            token => {
                let zigzag = token as u64;
                dbm[i] = ((zigzag >> 1) as i64) ^ -((zigzag & 1) as i64);
                i += 1;
            }
        }
    }
    Ok(dbm)
}

impl Persist for OctagonDomain {
    fn put(&self, w: &mut Writer) {
        match self {
            OctagonDomain::Bottom => w.u8(0),
            OctagonDomain::Oct(o) => {
                w.u8(2);
                w.u64(o.vars().len() as u64);
                for v in o.vars() {
                    v.put(w);
                }
                // The DBM dimension is implied by the variable count. The
                // `closed` flag is deliberately NOT serialized: it is a
                // derived property, re-derived after restore (see
                // [`Oct::from_parts`]).
                put_dbm_compact(o.dbm(), w);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => OctagonDomain::Bottom,
            // Tag 1 is the legacy raw layout (8 bytes per DBM entry),
            // still decoded so pre-compaction snapshots restore; tag 2
            // is the compact layout every current writer emits.
            tag @ (1 | 2) => {
                let n = r.u64()?;
                if n > r.remaining() as u64 {
                    return Err(PersistError::Corrupt(
                        "octagon variable count exceeds remaining input".to_string(),
                    ));
                }
                let mut vars = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    vars.push(Symbol::get(r)?);
                }
                // The DBM is quadratic in the variable count, so the
                // linear `n` bound above is not enough: a corrupt count
                // could otherwise request a multi-gigabyte allocation
                // before the first matrix byte is read. In the legacy
                // layout every entry is exactly 8 bytes, so the size
                // check is exact; the compact layout needs at least one
                // token byte per 0xFFFF_FFFF entries, so the division
                // below still rejects absurd counts before allocating.
                let d = 2 * vars.len() as u128;
                let entries_wide = d * d;
                let min_bytes = if tag == 1 {
                    entries_wide * 8
                } else {
                    entries_wide.div_ceil(u32::MAX as u128)
                };
                if min_bytes > r.remaining() as u128 {
                    return Err(PersistError::Corrupt(format!(
                        "octagon DBM of {entries_wide} entries exceeds remaining input"
                    )));
                }
                let entries = entries_wide as usize;
                let dbm = if tag == 1 {
                    r.i64s(entries)?
                } else {
                    get_dbm_compact(entries, r)?
                };
                let oct = Oct::from_parts(vars, dbm).ok_or_else(|| {
                    PersistError::Corrupt("octagon parts violate invariants".to_string())
                })?;
                OctagonDomain::Oct(std::sync::Arc::new(oct))
            }
            t => return Err(bad_tag("octagon", t)),
        })
    }
}

impl Persist for Addr {
    fn put(&self, w: &mut Writer) {
        match self {
            Addr::Null => w.u8(0),
            Addr::Sym(i) => {
                w.u8(1);
                w.u32(*i);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Addr::Null,
            1 => Addr::Sym(r.u32()?),
            t => return Err(bad_tag("addr", t)),
        })
    }
}

impl Persist for SymHeap {
    fn put(&self, w: &mut Writer) {
        let env: Vec<(Symbol, Addr)> = self.env.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let pts: Vec<(Addr, Addr)> = self.pts.iter().map(|(k, v)| (*k, *v)).collect();
        let lsegs: Vec<(Addr, Addr)> = self.lsegs.iter().copied().collect();
        let diseqs: Vec<(Addr, Addr)> = self.diseqs.iter().copied().collect();
        env.put(w);
        pts.put(w);
        lsegs.put(w);
        diseqs.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SymHeap {
            env: Vec::<(Symbol, Addr)>::get(r)?.into_iter().collect(),
            pts: Vec::<(Addr, Addr)>::get(r)?.into_iter().collect(),
            lsegs: Vec::<(Addr, Addr)>::get(r)?.into_iter().collect(),
            diseqs: Vec::<(Addr, Addr)>::get(r)?.into_iter().collect(),
        })
    }
}

impl Persist for ShapeDomain {
    fn put(&self, w: &mut Writer) {
        match self {
            ShapeDomain::Bottom => w.u8(0),
            ShapeDomain::State { heaps, err, top } => {
                w.u8(1);
                let heaps: Vec<&SymHeap> = heaps.iter().collect();
                w.u64(heaps.len() as u64);
                for h in heaps {
                    h.put(w);
                }
                err.put(w);
                top.put(w);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => ShapeDomain::Bottom,
            1 => {
                let n = r.u64()?;
                if n > r.remaining() as u64 {
                    return Err(PersistError::Corrupt(
                        "shape disjunct count exceeds remaining input".to_string(),
                    ));
                }
                let mut heaps = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    heaps.push(SymHeap::get(r)?);
                }
                let err = bool::get(r)?;
                let top = bool::get(r)?;
                // Re-enter through the normalizing constructor so the
                // wire cannot materialize a non-canonical disjunction
                // (empty-but-not-⊥, over-cap, or ⊤ with leftover heaps).
                ShapeDomain::from_parts(heaps, err, top)
            }
            t => return Err(bad_tag("shape", t)),
        })
    }
}

impl<A: Persist, B: Persist> Persist for Prod<A, B> {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
        self.1.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let a = A::get(r)?;
        let b = B::get(r)?;
        Ok(Prod(a, b))
    }
}

impl PersistDomain for IntervalDomain {
    fn domain_tag() -> String {
        "interval".to_string()
    }
}

impl PersistDomain for OctagonDomain {
    fn domain_tag() -> String {
        "octagon".to_string()
    }

    /// Octagons share their matrix behind an [`std::sync::Arc`], and the
    /// engine's memo table hands the *same* handle back on warm repeats
    /// — so the allocation address is a sound (and very hit-friendly)
    /// identity. `Arc` pointers are never null, leaving `0` free for ⊥.
    fn encode_identity(&self) -> Option<u64> {
        match self {
            OctagonDomain::Bottom => Some(0),
            OctagonDomain::Oct(o) => Some(std::sync::Arc::as_ptr(o) as u64),
        }
    }
}

impl PersistDomain for SignDomain {
    fn domain_tag() -> String {
        "sign".to_string()
    }
}

impl PersistDomain for ConstDomain {
    fn domain_tag() -> String {
        "const".to_string()
    }
}

impl PersistDomain for ShapeDomain {
    fn domain_tag() -> String {
        "shape".to_string()
    }
}

impl<A: PersistDomain, B: PersistDomain> PersistDomain for Prod<A, B> {
    fn domain_tag() -> String {
        format!("prod<{},{}>", A::domain_tag(), B::domain_tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_lang::parse_program;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::get(&mut r).expect("decodes");
        assert!(r.is_exhausted(), "{} trailing bytes", r.remaining());
        assert_eq!(&back, v);
    }

    #[test]
    fn syntax_roundtrips_through_the_real_parser() {
        let src = "function f(p, q) { var n = new Node(); n.next = p; \
                   var a = [1, 2 * p]; a[0] = len(a); \
                   if (!(p > 0) && q <= 3) { print(a[1]); } else { p = -q; } \
                   while (p < 10) { p = p + 1; } \
                   var r = g(a[1], n.next); return r; } \
                   function g(i, n) { return i; }";
        let program = parse_program(src).unwrap();
        for f in &program.functions {
            roundtrip(&f.body);
        }
        let cfgs = dai_lang::cfg::lower_program(&program).unwrap();
        for cfg in cfgs.cfgs() {
            for e in cfg.edges() {
                roundtrip(&e.stmt);
            }
        }
    }

    #[test]
    fn names_and_edits_roundtrip() {
        let ctx = IterCtx::root().push(Loc(3), 2).push(Loc(7), 0);
        roundtrip(&Name::State {
            loc: Loc(9),
            ctx: ctx.clone(),
        });
        roundtrip(&Name::PreWiden {
            head: Loc(3),
            ctx: ctx.clone(),
        });
        roundtrip(&Name::Stmt(EdgeId(12)));
        roundtrip(&Name::PreJoin {
            edge: EdgeId(4),
            ctx,
        });
        roundtrip(&ProgramEdit::Relabel {
            func: Symbol::new("main"),
            edge: EdgeId(1),
            stmt: Stmt::Assign("x".into(), Expr::Int(5)),
        });
        roundtrip(&ProgramEdit::Insert {
            func: Symbol::new("f0"),
            edge: EdgeId(2),
            block: dai_lang::parse_block("while (x < 3) { x = x + 1; }").unwrap(),
        });
        roundtrip(&FixStrategy::delayed(3).with_convergence(Convergence::Leq));
    }

    #[test]
    fn domain_states_roundtrip() {
        use dai_domains::CallSite;
        let assign = |d: &IntervalDomain, src: &str| {
            d.transfer(&Stmt::Assign(
                "x".into(),
                dai_lang::parse_expr(src).unwrap(),
            ))
        };
        let iv = assign(&IntervalDomain::top(), "5");
        roundtrip(&iv);
        roundtrip(&IntervalDomain::bottom());
        roundtrip(&iv.join(&assign(&IntervalDomain::top(), "9")));
        roundtrip(&IntervalDomain::top().transfer(&Stmt::Assign(
            "a".into(),
            dai_lang::parse_expr("[1, 2, 3]").unwrap(),
        )));

        let oct = OctagonDomain::top().transfer(&Stmt::Assign(
            "x".into(),
            dai_lang::parse_expr("7").unwrap(),
        ));
        let oct = oct.transfer(&Stmt::Assign(
            "y".into(),
            dai_lang::parse_expr("x + 1").unwrap(),
        ));
        roundtrip(&oct);
        roundtrip(&OctagonDomain::bottom());

        let sign = SignDomain::from_bindings([("x".into(), Sign::NONNEG)]);
        roundtrip(&sign);
        roundtrip(&SignDomain::bottom());

        roundtrip(&ConstDomain::from_bindings([
            ("x".into(), Const::Int(3)),
            ("b".into(), Const::Bool(true)),
            ("p".into(), Const::Null),
        ]));

        let shape = ShapeDomain::with_lists(&["p", "q"]);
        roundtrip(&shape);
        let shape2 = shape.transfer(&Stmt::Assign("r".into(), Expr::AllocNode));
        let shape3 = shape2.transfer(&Stmt::FieldWrite("r".into(), "next".into(), Expr::var("p")));
        roundtrip(&shape3);
        roundtrip(&ShapeDomain::bottom());

        let prod: Prod<IntervalDomain, SignDomain> = Prod::entry_default(&["x".into()]);
        roundtrip(&prod.transfer(&Stmt::Assign(
            "x".into(),
            dai_lang::parse_expr("4").unwrap(),
        )));

        // Exercise the interprocedural constructors so richer states
        // roundtrip too.
        let args = [Expr::Int(1)];
        let site = CallSite {
            lhs: None,
            callee: &Symbol::new("g"),
            args: &args,
            site_key: "f:e1",
        };
        roundtrip(&iv.call_entry(site, &["p".into()]));

        // Values wrap either syntax or states.
        roundtrip(&Value::<IntervalDomain>::Stmt(Stmt::Skip));
        roundtrip(&Value::State(iv));
    }

    #[test]
    fn unknown_tags_are_corrupt_not_panic() {
        let mut w = Writer::new();
        w.u8(250);
        let bytes = w.into_bytes();
        assert!(matches!(
            Name::get(&mut Reader::new(&bytes)),
            Err(PersistError::Corrupt(_))
        ));
        assert!(matches!(
            Stmt::get(&mut Reader::new(&bytes)),
            Err(PersistError::Corrupt(_))
        ));
        assert!(matches!(
            IntervalDomain::get(&mut Reader::new(&bytes)),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn widened_shape_states_roundtrip_through_normalization() {
        // Shape decode re-enters through `ShapeDomain::from_parts`
        // (saturation + GC + dedup + caps); states the domain produced —
        // including widened, canonicalized loop invariants — must be
        // fixed points of that normalization, or roundtrips would not be
        // identities.
        let mut s = ShapeDomain::with_lists(&["p"]);
        // Drive a list-building loop shape: n = new Node(); n.next = p;
        // p = n — then widen a few rounds as a loop head would.
        for _ in 0..3 {
            let body = s
                .transfer(&Stmt::Assign("n".into(), Expr::AllocNode))
                .transfer(&Stmt::FieldWrite("n".into(), "next".into(), Expr::var("p")))
                .transfer(&Stmt::Assign("p".into(), Expr::var("n")));
            s = s.widen(&body);
        }
        roundtrip(&s);
    }

    #[test]
    fn non_canonical_shape_bytes_normalize_on_decode() {
        // An empty, non-err, non-top disjunction is unreachable through
        // the domain's constructors (it canonicalizes to ⊥); the wire
        // must not materialize it either.
        let mut w = Writer::new();
        w.u8(1); // State
        w.u64(0); // no heaps
        false.put(&mut w); // err
        false.put(&mut w); // top
        let bytes = w.into_bytes();
        let back = ShapeDomain::get(&mut Reader::new(&bytes)).unwrap();
        assert!(back.is_bottom(), "normalized to ⊥, got {back}");
    }

    #[test]
    fn huge_octagon_variable_count_is_rejected_before_allocating() {
        // A crafted payload claiming many octagon variables must fail on
        // the quadratic-DBM size check, not attempt a pathological
        // allocation. 1000 one-byte-named vars fit in ~9KB of input, but
        // the implied DBM would be (2*1000)^2 = 4M entries = 32MB — far
        // more than the remaining input.
        let mut w = Writer::new();
        w.u8(1); // OctagonDomain::Oct
        let n = 1000u64;
        w.u64(n);
        for _ in 0..n {
            w.str("v");
        }
        // No DBM bytes at all.
        let bytes = w.into_bytes();
        let err = OctagonDomain::get(&mut Reader::new(&bytes)).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(ref m) if m.contains("DBM")),
            "{err}"
        );
    }

    #[test]
    fn decoded_octagons_are_marked_unclosed() {
        // The `closed` flag is derived, never trusted from the wire: a
        // decoded octagon must re-derive closure on first use.
        let oct = OctagonDomain::top().transfer(&Stmt::Assign(
            "x".into(),
            dai_lang::parse_expr("7").unwrap(),
        ));
        let mut w = Writer::new();
        oct.put(&mut w);
        let bytes = w.into_bytes();
        let back = OctagonDomain::get(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, oct, "Eq ignores the closure flag");
        if let OctagonDomain::Oct(o) = &back {
            assert!(!o.is_closed(), "decoded matrices start unclosed");
        } else {
            panic!("expected a non-bottom octagon");
        }
        // And the semantics are unchanged: bounds re-derive identically.
        assert_eq!(back.interval_of("x"), oct.interval_of("x"));
    }

    #[test]
    fn deep_expression_nesting_is_bounded() {
        let mut w = Writer::new();
        // 1000 nested unary-negs, then never terminate: the depth guard
        // must fire before the reader underruns the stack.
        for _ in 0..1000 {
            w.u8(4); // Expr::Unary
            w.u8(0); // UnOp::Neg
        }
        let bytes = w.into_bytes();
        let err = Expr::get(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(m) if m.contains("depth")));
    }

    #[test]
    fn domain_tags_are_distinct() {
        let tags = [
            IntervalDomain::domain_tag(),
            OctagonDomain::domain_tag(),
            SignDomain::domain_tag(),
            ConstDomain::domain_tag(),
            ShapeDomain::domain_tag(),
            Prod::<IntervalDomain, SignDomain>::domain_tag(),
        ];
        let unique: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(unique.len(), tags.len());
    }
}
