//! [`Persist`] codecs and disk/wire framing for `dai-trace` dumps, so
//! traces travel exactly like snapshots and RPC messages: one
//! [`crate::frame`] frame — tag, version, length, payload, FxHash64
//! checksum — around a `Persist`-encoded payload.
//!
//! The codecs live here (not in `dai-trace`, which is dependency-free,
//! nor in `dai-engine`, which the orphan rule excludes) because this is
//! the one crate that sees both the [`Persist`] trait and the trace
//! types.

use dai_trace::{Record, RecordKind, TraceDump, TraceOp};

use crate::codec::{PersistError, Reader, Writer};
use crate::frame::{split_frame, write_frame};
use crate::wire::{bad_tag, Persist};

/// The frame tag of a binary trace dump (`trace dump PATH` in the REPL,
/// `dump_trace_binary` in the engine).
pub const TRACE_FRAME_TAG: [u8; 4] = *b"TRCE";

/// Version of the trace payload encoding inside a [`TRACE_FRAME_TAG`]
/// frame. Version 2 added [`TraceDump::dropped_by_thread`] (exact
/// per-thread overflow losses).
pub const TRACE_FRAME_VERSION: u16 = 2;

impl Persist for TraceOp {
    fn put(&self, w: &mut Writer) {
        w.u8(match self {
            TraceOp::Enable => 0,
            TraceOp::Disable => 1,
            TraceOp::Dump => 2,
        });
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(TraceOp::Enable),
            1 => Ok(TraceOp::Disable),
            2 => Ok(TraceOp::Dump),
            t => Err(bad_tag("trace-op", t)),
        }
    }
}

impl Persist for RecordKind {
    fn put(&self, w: &mut Writer) {
        w.u8(match self {
            RecordKind::Span => 0,
            RecordKind::Event => 1,
        });
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(RecordKind::Span),
            1 => Ok(RecordKind::Event),
            t => Err(bad_tag("trace-record-kind", t)),
        }
    }
}

impl Persist for Record {
    fn put(&self, w: &mut Writer) {
        w.u32(self.label);
        w.u32(self.thread);
        self.kind.put(w);
        w.u64(self.start_ns);
        w.u64(self.end_ns);
        w.u64(self.arg);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Record {
            label: r.u32()?,
            thread: r.u32()?,
            kind: RecordKind::get(r)?,
            start_ns: r.u64()?,
            end_ns: r.u64()?,
            arg: r.u64()?,
        })
    }
}

impl Persist for TraceDump {
    fn put(&self, w: &mut Writer) {
        self.records.put(w);
        self.labels.put(w);
        self.threads.put(w);
        w.u64(self.dropped);
        self.dropped_by_thread.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let dump = TraceDump {
            records: Vec::<Record>::get(r)?,
            labels: Vec::<String>::get(r)?,
            threads: Vec::<String>::get(r)?,
            dropped: r.u64()?,
            dropped_by_thread: Vec::<u64>::get(r)?,
        };
        // The per-thread losses are parallel to the thread table and sum
        // to the total; a payload violating either was not drained from
        // the recorder.
        if dump.dropped_by_thread.len() != dump.threads.len() {
            return Err(PersistError::Corrupt(format!(
                "trace drop table has {} entries for {} threads",
                dump.dropped_by_thread.len(),
                dump.threads.len()
            )));
        }
        let per_thread: u64 = dump.dropped_by_thread.iter().sum();
        if per_thread != dump.dropped {
            return Err(PersistError::Corrupt(format!(
                "trace drop total {} != per-thread sum {per_thread}",
                dump.dropped
            )));
        }
        // A record indexing past the interned tables would have been
        // assembled by something other than the recorder: reject it
        // rather than let `"?"` fallbacks mask real corruption.
        for rec in &dump.records {
            if rec.label as usize >= dump.labels.len() {
                return Err(PersistError::Corrupt(format!(
                    "trace record label {} out of range ({} labels)",
                    rec.label,
                    dump.labels.len()
                )));
            }
            if rec.thread as usize >= dump.threads.len() {
                return Err(PersistError::Corrupt(format!(
                    "trace record thread {} out of range ({} threads)",
                    rec.thread,
                    dump.threads.len()
                )));
            }
        }
        Ok(dump)
    }
}

/// Encodes `dump` as one checksummed [`TRACE_FRAME_TAG`] frame — the
/// binary on-disk trace format.
pub fn encode_trace_frame(dump: &TraceDump) -> Vec<u8> {
    let mut w = Writer::new();
    dump.put(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 32);
    write_frame(&mut out, TRACE_FRAME_TAG, TRACE_FRAME_VERSION, &payload);
    out
}

/// Decodes a binary trace dump produced by [`encode_trace_frame`].
///
/// # Errors
///
/// [`PersistError`] when the frame is missing, truncated, mistagged,
/// version-skewed, checksum-damaged, carries trailing bytes, or its
/// payload does not decode.
pub fn decode_trace_frame(bytes: &[u8]) -> Result<TraceDump, PersistError> {
    let frame = split_frame(bytes).ok_or(PersistError::Truncated)?;
    if frame.header.tag != TRACE_FRAME_TAG {
        return Err(PersistError::Corrupt(format!(
            "not a trace dump (tag {:?})",
            frame.header.tag
        )));
    }
    if frame.header.version != TRACE_FRAME_VERSION {
        return Err(PersistError::UnsupportedVersion(frame.header.version));
    }
    if frame.truncated {
        return Err(PersistError::Truncated);
    }
    let payload = frame
        .payload
        .ok_or_else(|| PersistError::Corrupt("trace frame checksum mismatch".to_string()))?;
    if frame.consumed != bytes.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after trace frame",
            bytes.len() - frame.consumed
        )));
    }
    let mut r = Reader::new(payload);
    let dump = TraceDump::get(&mut r)?;
    if !r.is_exhausted() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes in trace payload",
            r.remaining()
        )));
    }
    Ok(dump)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> TraceDump {
        TraceDump {
            records: vec![
                Record {
                    label: 0,
                    thread: 0,
                    kind: RecordKind::Span,
                    start_ns: 10,
                    end_ns: 90,
                    arg: 4,
                },
                Record {
                    label: 1,
                    thread: 1,
                    kind: RecordKind::Event,
                    start_ns: 42,
                    end_ns: 42,
                    arg: u64::MAX,
                },
            ],
            labels: vec!["engine.cone_walk".into(), "engine.unroll".into()],
            threads: vec!["main".into(), "dai-worker-1".into()],
            dropped: 7,
            dropped_by_thread: vec![3, 4],
        }
    }

    #[test]
    fn trace_ops_and_dumps_roundtrip() {
        for op in [TraceOp::Enable, TraceOp::Disable, TraceOp::Dump] {
            let mut w = Writer::new();
            op.put(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(TraceOp::get(&mut r).unwrap(), op);
            assert!(r.is_exhausted());
        }
        let dump = sample_dump();
        let bytes = encode_trace_frame(&dump);
        assert_eq!(decode_trace_frame(&bytes).unwrap(), dump);
    }

    #[test]
    fn empty_dump_roundtrips() {
        let dump = TraceDump::default();
        assert_eq!(
            decode_trace_frame(&encode_trace_frame(&dump)).unwrap(),
            dump
        );
    }

    #[test]
    fn out_of_range_indices_are_corrupt_not_lossy() {
        let mut dump = sample_dump();
        dump.records[0].label = 99;
        let mut w = Writer::new();
        dump.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match TraceDump::get(&mut r) {
            Err(PersistError::Corrupt(m)) => assert!(m.contains("label"), "{m}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_drop_table_is_corrupt_not_lossy() {
        // Wrong length: not parallel to the thread table.
        let mut dump = sample_dump();
        dump.dropped_by_thread.push(0);
        let mut w = Writer::new();
        dump.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match TraceDump::get(&mut r) {
            Err(PersistError::Corrupt(m)) => assert!(m.contains("entries"), "{m}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        // Wrong sum: per-thread losses must add up to the total.
        let mut dump = sample_dump();
        dump.dropped_by_thread[0] += 1;
        let mut w = Writer::new();
        dump.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match TraceDump::get(&mut r) {
            Err(PersistError::Corrupt(m)) => assert!(m.contains("sum"), "{m}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_prefix_errors_cleanly() {
        let bytes = encode_trace_frame(&sample_dump());
        for cut in 0..bytes.len() {
            assert!(
                decode_trace_frame(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage after a whole frame is rejected too.
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"junk-after-frame");
        assert!(decode_trace_frame(&padded).is_err());
    }

    #[test]
    fn every_byte_flip_errors_cleanly() {
        let bytes = encode_trace_frame(&sample_dump());
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            // The checksum (or a structural check) must catch every
            // single-byte flip; none may panic or decode successfully.
            assert!(
                decode_trace_frame(&flipped).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }
}
