//! The one frame layout shared by every consumer of `dai` on-disk and
//! on-wire bytes: a fixed header (4-byte tag, `u16` payload version,
//! `u64` payload length), an **optional** `u64` request id, the payload,
//! and a trailing FxHash64 checksum.
//!
//! ```text
//! [u8;4]  tag        ("SESS", "FUNC", "MEMO", "RPCQ", "RPCS", …)
//! u16     version    payload version (snapshot sections) or protocol
//!                    version (RPC messages)
//! u64     length     payload length in bytes
//! [u64    id]        request id — present only when the (tag, version)
//!                    pair declares it (RPC protocol ≥ 4); snapshot
//!                    sections and older RPC frames have no id field
//! bytes   payload
//! u64     checksum   FxHash64 over payload bytes + length + id (see
//!                    [`checksum_with`]; id-less frames keep the
//!                    original [`checksum`])
//! ```
//!
//! Snapshot files (`dai_persist::codec`) concatenate frames after a file
//! header; the RPC transport (`dai-rpc`) sends exactly one frame per
//! message. Both use *this* implementation — the framing exists once, so
//! a framing bug (or fix) cannot diverge between disk and wire.
//!
//! Whether a frame carries the id field is a property of its `(tag,
//! version)` pair, decided by the *caller*: this module cannot know
//! which protocols multiplex, so the stream reader takes a predicate
//! ([`read_frame_expecting`]) and the writer an explicit `Option<u64>`
//! ([`write_frame_id`]). The checksum covers the id, so a flipped id
//! byte is caught exactly like a flipped payload byte.
//!
//! Two read styles are provided:
//!
//! * [`split_frame`] — zero-copy over an in-memory byte slice, reporting
//!   damage (checksum mismatch) and truncation distinctly so snapshot
//!   parsing can stay lossy-by-section;
//! * [`read_frame`] — blocking read from an [`std::io::Read`] stream,
//!   with an explicit length bound so a hostile peer cannot make the
//!   reader allocate unbounded memory from one lying header.

use dai_memo::FxHasher64;
use std::hash::Hasher;
use std::io::Read;

/// Byte length of the fixed frame header (tag + version + length).
pub const FRAME_HEADER_LEN: usize = 4 + 2 + 8;

/// Byte length of the frame trailer (the checksum).
pub const FRAME_TRAILER_LEN: usize = 8;

/// Byte length of the optional request-id field.
pub const FRAME_ID_LEN: usize = 8;

/// The payload checksum: FxHash64 over the bytes plus the length (so a
/// truncation to a prefix that happens to hash equal is still caught).
pub fn checksum(bytes: &[u8]) -> u64 {
    checksum_with(bytes, None)
}

/// [`checksum`] extended to cover the optional request id, so an id
/// corrupted in flight fails verification like a corrupted payload.
/// `checksum_with(bytes, None)` is exactly [`checksum`]`(bytes)`.
pub fn checksum_with(bytes: &[u8], id: Option<u64>) -> u64 {
    let mut h = FxHasher64::default();
    h.write(bytes);
    h.write_u64(bytes.len() as u64);
    if let Some(id) = id {
        h.write_u64(id);
    }
    h.finish()
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The 4-byte tag naming what the payload is.
    pub tag: [u8; 4],
    /// The writer's payload/protocol version.
    pub version: u16,
    /// Declared payload length in bytes.
    pub len: u64,
}

impl FrameHeader {
    /// Encodes the header into its wire bytes.
    pub fn encode(&self) -> [u8; FRAME_HEADER_LEN] {
        let mut out = [0u8; FRAME_HEADER_LEN];
        out[..4].copy_from_slice(&self.tag);
        out[4..6].copy_from_slice(&self.version.to_le_bytes());
        out[6..14].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Decodes a header from exactly [`FRAME_HEADER_LEN`] bytes.
    pub fn decode(bytes: &[u8; FRAME_HEADER_LEN]) -> FrameHeader {
        FrameHeader {
            tag: bytes[..4].try_into().expect("4 tag bytes"),
            version: u16::from_le_bytes(bytes[4..6].try_into().expect("2 version bytes")),
            len: u64::from_le_bytes(bytes[6..14].try_into().expect("8 length bytes")),
        }
    }
}

/// Appends one complete frame (header + payload + checksum) to `out`.
pub fn write_frame(out: &mut Vec<u8>, tag: [u8; 4], version: u16, payload: &[u8]) {
    write_frame_id(out, tag, version, None, payload);
}

/// [`write_frame`] with an optional request id between the header and
/// the payload. Passing `Some(id)` is only meaningful when the `(tag,
/// version)` pair declares the id field — the reader must expect it
/// ([`read_frame_expecting`]) or the id bytes parse as payload.
pub fn write_frame_id(
    out: &mut Vec<u8>,
    tag: [u8; 4],
    version: u16,
    id: Option<u64>,
    payload: &[u8],
) {
    let header = FrameHeader {
        tag,
        version,
        len: payload.len() as u64,
    };
    let id_len = if id.is_some() { FRAME_ID_LEN } else { 0 };
    out.reserve(FRAME_HEADER_LEN + id_len + payload.len() + FRAME_TRAILER_LEN);
    out.extend_from_slice(&header.encode());
    if let Some(id) = id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum_with(payload, id).to_le_bytes());
}

/// One frame split off the front of a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct SplitFrame<'a> {
    /// The frame's header (always readable when `split_frame` returns
    /// `Some`).
    pub header: FrameHeader,
    /// The payload, if it was complete and its checksum verified; `None`
    /// for a damaged (checksum-mismatched) or truncated frame.
    pub payload: Option<&'a [u8]>,
    /// `true` when the input ended before the declared payload and
    /// checksum were complete (no further frame can follow).
    pub truncated: bool,
    /// Bytes consumed from the input (header + payload + trailer, or
    /// everything remaining when truncated).
    pub consumed: usize,
}

/// Splits one frame off the front of `bytes`. Returns `None` when not
/// even a complete header remains (the caller decides whether trailing
/// garbage is truncation or a clean end).
pub fn split_frame(bytes: &[u8]) -> Option<SplitFrame<'_>> {
    if bytes.len() < FRAME_HEADER_LEN {
        return None;
    }
    let header = FrameHeader::decode(
        bytes[..FRAME_HEADER_LEN]
            .try_into()
            .expect("checked header length"),
    );
    let body = &bytes[FRAME_HEADER_LEN..];
    let Some(need) = (header.len as usize)
        .checked_add(FRAME_TRAILER_LEN)
        .filter(|&n| n <= body.len())
    else {
        // The payload or its checksum is cut off: everything remaining is
        // consumed and no payload can be trusted.
        return Some(SplitFrame {
            header,
            payload: None,
            truncated: true,
            consumed: bytes.len(),
        });
    };
    let payload = &body[..header.len as usize];
    let sum = u64::from_le_bytes(
        body[header.len as usize..need]
            .try_into()
            .expect("8 checksum bytes"),
    );
    Some(SplitFrame {
        header,
        payload: (checksum(payload) == sum).then_some(payload),
        truncated: false,
        consumed: FRAME_HEADER_LEN + need,
    })
}

/// A frame read from a byte stream.
#[derive(Debug, Clone)]
pub struct StreamFrame {
    /// The frame's header.
    pub header: FrameHeader,
    /// The request id, when the caller's predicate declared the frame's
    /// `(tag, version)` pair as id-carrying ([`read_frame_expecting`]).
    pub id: Option<u64>,
    /// The payload, if complete and checksum-verified; `None` when the
    /// payload bytes arrived but the checksum did not match.
    pub payload: Option<Vec<u8>>,
}

/// What went wrong reading a frame from a stream.
#[derive(Debug)]
pub enum FrameReadError {
    /// The stream ended cleanly before any header byte — no frame was in
    /// flight (a peer hung up between messages).
    Eof,
    /// The stream ended mid-frame (header or payload cut off).
    Truncated,
    /// The header declared a payload larger than the caller's bound; no
    /// payload bytes were consumed past the header.
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The caller's bound it exceeded.
        bound: usize,
    },
    /// Transport failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Eof => write!(f, "stream closed between frames"),
            FrameReadError::Truncated => write!(f, "stream ended mid-frame"),
            FrameReadError::Oversized { declared, bound } => {
                write!(f, "declared frame length {declared} exceeds bound {bound}")
            }
            FrameReadError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF at offset 0 to
/// `Ok(false)` and a mid-buffer EOF to [`FrameReadError::Truncated`].
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameReadError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one complete frame from `r`, allocating at most `max_payload`
/// bytes for the payload. An over-declared length consumes only the
/// header, so a transport that answers the error and keeps reading stays
/// in sync with a peer that never actually sent the oversized payload.
///
/// # Errors
///
/// See [`FrameReadError`]; a checksum mismatch is *not* an error here —
/// the frame arrives with `payload: None` so the caller can answer it in
/// protocol (mirroring the lossy snapshot sections).
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<StreamFrame, FrameReadError> {
    read_frame_expecting(r, max_payload, |_| false)
}

/// [`read_frame`] for protocols that multiplex: `expect_id` decides from
/// the decoded header whether a `u64` request id sits between the
/// length field and the payload (the RPC transport answers `true` for
/// its tags at protocol ≥ 4). The id is covered by the checksum
/// ([`checksum_with`]); on a mismatch the frame still arrives — with
/// `payload: None` and the id *as read* — so a transport can answer the
/// damaged request in protocol under a best-effort id.
///
/// # Errors
///
/// As [`read_frame`]. An oversized declared length consumes the header
/// and (when expected) the id, nothing more.
pub fn read_frame_expecting(
    r: &mut impl Read,
    max_payload: usize,
    expect_id: impl FnOnce(&FrameHeader) -> bool,
) -> Result<StreamFrame, FrameReadError> {
    let mut header_bytes = [0u8; FRAME_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header_bytes)? {
        return Err(FrameReadError::Eof);
    }
    let header = FrameHeader::decode(&header_bytes);
    let id = if expect_id(&header) {
        let mut id_bytes = [0u8; FRAME_ID_LEN];
        if !read_exact_or_eof(r, &mut id_bytes)? {
            return Err(FrameReadError::Truncated);
        }
        Some(u64::from_le_bytes(id_bytes))
    } else {
        None
    };
    if header.len > max_payload as u64 {
        return Err(FrameReadError::Oversized {
            declared: header.len,
            bound: max_payload,
        });
    }
    let mut payload = vec![0u8; header.len as usize];
    if !read_exact_or_eof(r, &mut payload)? {
        return Err(FrameReadError::Truncated);
    }
    let mut sum_bytes = [0u8; FRAME_TRAILER_LEN];
    if !read_exact_or_eof(r, &mut sum_bytes)? {
        return Err(FrameReadError::Truncated);
    }
    let sum = u64::from_le_bytes(sum_bytes);
    let verified = checksum_with(&payload, id) == sum;
    Ok(StreamFrame {
        header,
        id,
        payload: verified.then_some(payload),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let h = FrameHeader {
            tag: *b"RPCQ",
            version: 7,
            len: 123_456,
        };
        assert_eq!(FrameHeader::decode(&h.encode()), h);
    }

    #[test]
    fn split_frame_verifies_and_consumes() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, *b"AAAA", 1, b"hello");
        write_frame(&mut bytes, *b"BBBB", 2, b"world!");
        let first = split_frame(&bytes).unwrap();
        assert_eq!(first.header.tag, *b"AAAA");
        assert_eq!(first.payload, Some(&b"hello"[..]));
        let second = split_frame(&bytes[first.consumed..]).unwrap();
        assert_eq!(second.header.tag, *b"BBBB");
        assert_eq!(second.header.version, 2);
        assert_eq!(second.payload, Some(&b"world!"[..]));
        assert_eq!(first.consumed + second.consumed, bytes.len());
    }

    #[test]
    fn split_frame_flags_damage_and_truncation() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, *b"AAAA", 1, b"payload");
        let mut flipped = bytes.clone();
        flipped[FRAME_HEADER_LEN + 2] ^= 0xFF;
        let f = split_frame(&flipped).unwrap();
        assert!(f.payload.is_none(), "checksum must catch the flip");
        assert!(!f.truncated);
        let cut = split_frame(&bytes[..bytes.len() - 1]).unwrap();
        assert!(cut.truncated);
        assert!(cut.payload.is_none());
        assert!(split_frame(&bytes[..FRAME_HEADER_LEN - 1]).is_none());
    }

    #[test]
    fn stream_read_roundtrips_and_bounds_length() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, *b"RPCQ", 3, b"abc");
        let f = read_frame(&mut &bytes[..], 1024).unwrap();
        assert_eq!(f.header.tag, *b"RPCQ");
        assert_eq!(f.payload.as_deref(), Some(&b"abc"[..]));
        // Oversized declared length: only the header is consumed.
        let huge = FrameHeader {
            tag: *b"RPCQ",
            version: 1,
            len: u64::MAX,
        };
        let mut stream = huge.encode().to_vec();
        stream.extend_from_slice(&bytes);
        let mut cursor = &stream[..];
        match read_frame(&mut cursor, 1024) {
            Err(FrameReadError::Oversized { declared, .. }) => assert_eq!(declared, u64::MAX),
            other => panic!("expected oversized, got {other:?}"),
        }
        // The good frame behind it still reads: the reader stayed in sync.
        let f = read_frame(&mut cursor, 1024).unwrap();
        assert_eq!(f.payload.as_deref(), Some(&b"abc"[..]));
    }

    #[test]
    fn id_frames_roundtrip_and_checksum_covers_id() {
        let is_v4 = |h: &FrameHeader| h.tag == *b"RPCQ" && h.version >= 4;
        let mut bytes = Vec::new();
        write_frame_id(&mut bytes, *b"RPCQ", 4, Some(0xDEAD_BEEF), b"abc");
        let f = read_frame_expecting(&mut &bytes[..], 1024, is_v4).unwrap();
        assert_eq!(f.id, Some(0xDEAD_BEEF));
        assert_eq!(f.payload.as_deref(), Some(&b"abc"[..]));
        // A flipped id byte fails the checksum, but the frame still
        // arrives (with the id as read) so the peer can answer it.
        let mut flipped = bytes.clone();
        flipped[FRAME_HEADER_LEN] ^= 0x01;
        let f = read_frame_expecting(&mut &flipped[..], 1024, is_v4).unwrap();
        assert!(f.payload.is_none());
        assert_eq!(f.id, Some(0xDEAD_BEEE));
        // A v3 frame through the same predicate has no id field and the
        // original checksum: the two layouts coexist on one stream.
        let mut mixed = Vec::new();
        write_frame(&mut mixed, *b"RPCQ", 3, b"legacy");
        write_frame_id(&mut mixed, *b"RPCQ", 4, Some(7), b"new");
        let mut cursor = &mixed[..];
        let old = read_frame_expecting(&mut cursor, 1024, is_v4).unwrap();
        assert_eq!(old.id, None);
        assert_eq!(old.payload.as_deref(), Some(&b"legacy"[..]));
        let new = read_frame_expecting(&mut cursor, 1024, is_v4).unwrap();
        assert_eq!(new.id, Some(7));
        assert_eq!(new.payload.as_deref(), Some(&b"new"[..]));
        assert_ne!(
            checksum_with(b"abc", Some(1)),
            checksum_with(b"abc", Some(2))
        );
        assert_eq!(checksum_with(b"abc", None), checksum(b"abc"));
    }

    #[test]
    fn oversized_id_frame_consumes_header_and_id_only() {
        let is_v4 = |h: &FrameHeader| h.tag == *b"RPCQ" && h.version >= 4;
        let huge = FrameHeader {
            tag: *b"RPCQ",
            version: 4,
            len: u64::MAX,
        };
        let mut stream = huge.encode().to_vec();
        stream.extend_from_slice(&99u64.to_le_bytes());
        let mut good = Vec::new();
        write_frame_id(&mut good, *b"RPCQ", 4, Some(3), b"ok");
        stream.extend_from_slice(&good);
        let mut cursor = &stream[..];
        assert!(matches!(
            read_frame_expecting(&mut cursor, 1024, is_v4),
            Err(FrameReadError::Oversized { .. })
        ));
        // The reader stayed in sync: the following frame parses whole.
        let f = read_frame_expecting(&mut cursor, 1024, is_v4).unwrap();
        assert_eq!(f.id, Some(3));
        assert_eq!(f.payload.as_deref(), Some(&b"ok"[..]));
    }

    #[test]
    fn stream_read_reports_eof_vs_truncation() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, *b"RPCQ", 1, b"abcdef");
        assert!(matches!(
            read_frame(&mut &[][..], 64),
            Err(FrameReadError::Eof)
        ));
        for cut in 1..bytes.len() {
            assert!(
                matches!(
                    read_frame(&mut &bytes[..cut], 64),
                    Err(FrameReadError::Truncated)
                ),
                "cut at {cut}"
            );
        }
    }
}
