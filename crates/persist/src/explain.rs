//! [`Persist`] codecs and framing for `dai-core` explain reports, so a
//! per-query cost attribution travels exactly like snapshots, traces,
//! and RPC messages: one [`crate::frame`] frame — tag, version, length,
//! payload, FxHash64 checksum — around a `Persist`-encoded payload.
//!
//! The codecs live here (not in `dai-core`, which must not depend on
//! the persistence layer) because this is the one crate that sees both
//! the [`Persist`] trait and the report types.

use dai_core::explain::{CellCost, CellOutcome, ExplainReport, FixCost};

use crate::codec::{PersistError, Reader, Writer};
use crate::frame::{split_frame, write_frame};
use crate::wire::{bad_tag, Persist};

/// The frame tag of a binary explain report (`explain` over the RPC
/// socket, `explain --json` artifacts).
pub const EXPLAIN_FRAME_TAG: [u8; 4] = *b"EXPL";

/// Version of the explain payload encoding inside an
/// [`EXPLAIN_FRAME_TAG`] frame.
pub const EXPLAIN_FRAME_VERSION: u16 = 1;

impl Persist for CellOutcome {
    fn put(&self, w: &mut Writer) {
        w.u8(match self {
            CellOutcome::Computed => 0,
            CellOutcome::MemoMatched => 1,
            CellOutcome::Reused => 2,
        });
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(CellOutcome::Computed),
            1 => Ok(CellOutcome::MemoMatched),
            2 => Ok(CellOutcome::Reused),
            t => Err(bad_tag("explain-cell-outcome", t)),
        }
    }
}

impl Persist for CellCost {
    fn put(&self, w: &mut Writer) {
        self.cell.put(w);
        self.outcome.put(w);
        self.compiled.put(w);
        w.u64(self.wall_ns);
        w.u64(self.finish_ns);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(CellCost {
            cell: String::get(r)?,
            outcome: CellOutcome::get(r)?,
            compiled: bool::get(r)?,
            wall_ns: r.u64()?,
            finish_ns: r.u64()?,
        })
    }
}

impl Persist for FixCost {
    fn put(&self, w: &mut Writer) {
        self.cell.put(w);
        w.u64(self.iters);
        w.u64(self.unrolls);
        w.u64(self.wall_ns);
        self.converged.put(w);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(FixCost {
            cell: String::get(r)?,
            iters: r.u64()?,
            unrolls: r.u64()?,
            wall_ns: r.u64()?,
            converged: bool::get(r)?,
        })
    }
}

impl Persist for ExplainReport {
    fn put(&self, w: &mut Writer) {
        self.domain.put(w);
        self.transfer.put(w);
        self.cells.put(w);
        self.fixes.put(w);
        w.u64(self.work_ns);
        w.u64(self.span_ns);
        w.u64(self.lock_wait_ns);
        w.u64(self.lock_held_ns);
        w.u64(self.eval_ns);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let report = ExplainReport {
            domain: String::get(r)?,
            transfer: String::get(r)?,
            cells: Vec::<CellCost>::get(r)?,
            fixes: Vec::<FixCost>::get(r)?,
            work_ns: r.u64()?,
            span_ns: r.u64()?,
            lock_wait_ns: r.u64()?,
            lock_held_ns: r.u64()?,
            eval_ns: r.u64()?,
        };
        // The capture invariants are structural: work is the sum of the
        // attributed walls, and no finish time (hence the span) can
        // exceed the total work. A payload violating either was not
        // produced by an `ExplainSink` — reject it rather than hand a
        // lying report to accounting checks downstream.
        let walls: u64 = report
            .cells
            .iter()
            .map(|c| c.wall_ns)
            .chain(report.fixes.iter().map(|f| f.wall_ns))
            .sum();
        if walls != report.work_ns {
            return Err(PersistError::Corrupt(format!(
                "explain report work {} != attributed walls {}",
                report.work_ns, walls
            )));
        }
        if report.span_ns > report.work_ns {
            return Err(PersistError::Corrupt(format!(
                "explain report span {} exceeds work {}",
                report.span_ns, report.work_ns
            )));
        }
        Ok(report)
    }
}

/// Encodes `report` as one checksummed [`EXPLAIN_FRAME_TAG`] frame —
/// the binary wire/disk format of a cost attribution.
pub fn encode_explain_frame(report: &ExplainReport) -> Vec<u8> {
    let mut w = Writer::new();
    report.put(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 32);
    write_frame(&mut out, EXPLAIN_FRAME_TAG, EXPLAIN_FRAME_VERSION, &payload);
    out
}

/// Decodes a binary explain report produced by [`encode_explain_frame`].
///
/// # Errors
///
/// [`PersistError`] when the frame is missing, truncated, mistagged,
/// version-skewed, checksum-damaged, carries trailing bytes, or its
/// payload does not decode (including structurally inconsistent
/// work/span accounting).
pub fn decode_explain_frame(bytes: &[u8]) -> Result<ExplainReport, PersistError> {
    let frame = split_frame(bytes).ok_or(PersistError::Truncated)?;
    if frame.header.tag != EXPLAIN_FRAME_TAG {
        return Err(PersistError::Corrupt(format!(
            "not an explain report (tag {:?})",
            frame.header.tag
        )));
    }
    if frame.header.version != EXPLAIN_FRAME_VERSION {
        return Err(PersistError::UnsupportedVersion(frame.header.version));
    }
    if frame.truncated {
        return Err(PersistError::Truncated);
    }
    let payload = frame
        .payload
        .ok_or_else(|| PersistError::Corrupt("explain frame checksum mismatch".to_string()))?;
    if frame.consumed != bytes.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after explain frame",
            bytes.len() - frame.consumed
        )));
    }
    let mut r = Reader::new(payload);
    let report = ExplainReport::get(&mut r)?;
    if !r.is_exhausted() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes in explain payload",
            r.remaining()
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ExplainReport {
        ExplainReport {
            domain: "octagon".to_string(),
            transfer: "compiled".to_string(),
            cells: vec![
                CellCost {
                    cell: "f:l3:sigma".to_string(),
                    outcome: CellOutcome::Computed,
                    compiled: true,
                    wall_ns: 900,
                    finish_ns: 900,
                },
                CellCost {
                    cell: "f:l4:sigma".to_string(),
                    outcome: CellOutcome::MemoMatched,
                    compiled: false,
                    wall_ns: 100,
                    finish_ns: 1_000,
                },
                CellCost {
                    cell: "f:l5:sigma".to_string(),
                    outcome: CellOutcome::Reused,
                    compiled: false,
                    wall_ns: 0,
                    finish_ns: 0,
                },
            ],
            fixes: vec![FixCost {
                cell: "f:l4.fix:sigma".to_string(),
                iters: 3,
                unrolls: 2,
                wall_ns: 250,
                converged: true,
            }],
            work_ns: 1_250,
            span_ns: 1_000,
            lock_wait_ns: 40,
            lock_held_ns: 2_000,
            eval_ns: 1_900,
        }
    }

    #[test]
    fn explain_reports_roundtrip_byte_identically() {
        let report = sample_report();
        let bytes = encode_explain_frame(&report);
        let back = decode_explain_frame(&bytes).unwrap();
        assert_eq!(back, report);
        // Re-encoding the decoded report reproduces the frame exactly —
        // the byte-identity the RPC end-to-end test relies on.
        assert_eq!(encode_explain_frame(&back), bytes);
    }

    #[test]
    fn empty_report_roundtrips() {
        let report = ExplainReport::default();
        assert_eq!(
            decode_explain_frame(&encode_explain_frame(&report)).unwrap(),
            report
        );
    }

    #[test]
    fn inconsistent_accounting_is_corrupt_not_lossy() {
        let mut report = sample_report();
        report.work_ns += 1;
        let mut w = Writer::new();
        report.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match ExplainReport::get(&mut r) {
            Err(PersistError::Corrupt(m)) => assert!(m.contains("work"), "{m}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        let mut report = sample_report();
        report.span_ns = report.work_ns + 1;
        let mut w = Writer::new();
        report.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match ExplainReport::get(&mut r) {
            Err(PersistError::Corrupt(m)) => assert!(m.contains("span"), "{m}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_prefix_errors_cleanly() {
        let bytes = encode_explain_frame(&sample_report());
        for cut in 0..bytes.len() {
            assert!(
                decode_explain_frame(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"junk-after-frame");
        assert!(decode_explain_frame(&padded).is_err());
    }

    #[test]
    fn every_byte_flip_errors_cleanly() {
        let bytes = encode_explain_frame(&sample_report());
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            // The checksum (or a structural check) must catch every
            // single-byte flip; none may panic or decode successfully.
            assert!(
                decode_explain_frame(&flipped).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }
}
