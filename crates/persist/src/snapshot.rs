//! Whole-session snapshot images: what gets saved, and the lossy policy
//! applied on restore.
//!
//! A [`SessionImage`] carries the three stateful layers of a demanded
//! analysis session, in three kinds of sections:
//!
//! * **`SESS` (required)** — the session header: name, domain tag,
//!   iteration strategy, context-sensitivity policy (for
//!   interprocedural sessions), the program **source text**, and the
//!   **edit history** ([`ProgramEdit`]s). This is the only part that must
//!   survive: source + history replayed through `dai-lang`'s parser,
//!   lowering, and edit primitives deterministically reconstructs the
//!   exact current CFGs (edit application assigns location/edge ids by
//!   deterministic counters).
//! * **`FUNC` (optional, one per demanded function)** — the function's
//!   DAIG: every live cell in interning order with its name, optional
//!   value, and producing computation. Restoring it warm-starts queries;
//!   dropping it merely means the next query recomputes (paper §2.2:
//!   dropping cached results is always sound).
//! * **`MEMO` (optional)** — memo-table entries `f·(v₁⋯v_k) ↦ v`, sorted
//!   by key for byte-deterministic output. Same lossy contract.
//!
//! [`SessionImage::from_bytes`] enforces that policy: a damaged or
//! version-skewed `FUNC`/`MEMO` section is *counted and skipped* (the
//! [`RestoreReport`] says what was dropped), while a damaged `SESS`
//! section fails the whole restore — there is nothing sound to fall back
//! to without the program.

use crate::codec::{
    read_sections, PersistError, Reader, SnapshotWriter, Writer, TAG_FUNC, TAG_MEMO, TAG_SESSION,
};
use crate::wire::{Persist, PersistDomain};
use dai_core::driver::ProgramEdit;
use dai_core::graph::{Daig, Func, Value};
use dai_core::intern::CellId;
use dai_core::interproc::ContextPolicy;
use dai_core::name::Name;
use dai_core::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_lang::Symbol;
use dai_memo::MemoKey;
use std::fmt;
use std::path::Path;

/// Payload version of `SESS` sections.
pub const SESSION_VERSION: u16 = 1;
/// Payload version of `FUNC` sections.
pub const FUNC_VERSION: u16 = 1;
/// Payload version of `MEMO` sections.
pub const MEMO_VERSION: u16 = 1;

/// One demanded function's restored analysis state.
#[derive(Debug, Clone)]
pub struct FuncImage<D: AbstractDomain> {
    /// The function's name.
    pub func: Symbol,
    /// The entry state `φ₀` the DAIG was built with.
    pub entry: D,
    /// The DAIG, structure and values.
    pub daig: Daig<D>,
}

/// A complete session snapshot.
#[derive(Debug, Clone)]
pub struct SessionImage<D: AbstractDomain> {
    /// The session's name.
    pub name: String,
    /// The domain tag ([`PersistDomain::domain_tag`]) the values were
    /// encoded under.
    pub domain: String,
    /// The loop-head iteration strategy of every unit.
    pub strategy: FixStrategy,
    /// The context-sensitivity policy the session analyzed under, when
    /// it was interprocedural (`None` for intraprocedural sessions).
    /// Like `strategy`, this is part of the session's *semantics*: a
    /// restore under a different policy computes different invariants,
    /// so restorers either honor it or warn.
    pub policy: Option<ContextPolicy>,
    /// The original program source text.
    pub source: String,
    /// Every edit applied since the source was loaded, in order.
    pub edits: Vec<ProgramEdit>,
    /// Demanded functions' DAIGs (possibly empty — a cold snapshot).
    pub funcs: Vec<FuncImage<D>>,
    /// Memo entries (possibly empty).
    pub memo: Vec<(MemoKey, Value<D>)>,
}

/// What a lossy restore kept and dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// `FUNC` sections restored intact.
    pub funcs_restored: usize,
    /// `FUNC` sections dropped (damaged, version-skewed, undecodable, or
    /// failing DAIG well-formedness) — each degrades that function to a
    /// cold start.
    pub funcs_dropped: usize,
    /// Memo entries restored.
    pub memo_entries: usize,
    /// `MEMO` sections dropped.
    pub memo_sections_dropped: usize,
    /// The file ended mid-section; everything after the cut was dropped.
    pub truncated: bool,
}

impl RestoreReport {
    /// `true` when anything warm (DAIG values or memo entries) survived.
    pub fn is_warm(&self) -> bool {
        self.funcs_restored > 0 || self.memo_entries > 0
    }

    /// `true` when any optional payload was lost.
    pub fn is_lossy(&self) -> bool {
        self.funcs_dropped > 0 || self.memo_sections_dropped > 0 || self.truncated
    }
}

impl fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} function DAIG(s) restored ({} dropped), {} memo entrie(s) ({} section(s) dropped){}",
            self.funcs_restored,
            self.funcs_dropped,
            self.memo_entries,
            self.memo_sections_dropped,
            if self.truncated { ", file truncated" } else { "" }
        )
    }
}

fn func_code(f: Func) -> u8 {
    match f {
        Func::Transfer => 0,
        Func::Join => 1,
        Func::Widen => 2,
        Func::Fix => 3,
    }
}

fn func_from_code(c: u8) -> Result<Func, PersistError> {
    Ok(match c {
        0 => Func::Transfer,
        1 => Func::Join,
        2 => Func::Widen,
        3 => Func::Fix,
        t => return Err(PersistError::Corrupt(format!("unknown func tag {t}"))),
    })
}

/// Encodes a DAIG: live cells in interning (id) order, each with its
/// name, optional value, and producing computation (source cells encoded
/// as positions into the same cell list).
pub fn encode_daig<D: AbstractDomain + Persist>(daig: &Daig<D>, w: &mut Writer) {
    let ids: Vec<CellId> = daig.ids().collect();
    // Dense position map: arena ids are bounded by `arena_len`.
    let mut pos = vec![u32::MAX; daig.arena_len()];
    for (i, &id) in ids.iter().enumerate() {
        pos[id.idx()] = i as u32;
    }
    w.u64(ids.len() as u64);
    for &id in &ids {
        daig.name_of(id).put(w);
        match daig.value_id(id) {
            Some(v) => {
                w.u8(1);
                v.put(w);
            }
            None => w.u8(0),
        }
        match daig.comp_slot(id) {
            None => w.u8(0),
            Some(c) => {
                w.u8(1);
                w.u8(func_code(c.func));
                w.u64(c.srcs.len() as u64);
                for &s in &c.srcs {
                    // Live comps only read live cells (well-formedness), so
                    // every source has a position.
                    w.u32(pos[s.idx()]);
                }
            }
        }
    }
}

/// Decodes a DAIG encoded by [`encode_daig`], rebuilding the interner in
/// the same order (so the graph is structurally identical up to dead-slot
/// compaction) and re-deriving value digests at write time.
///
/// The result is **not** yet validated; callers should run
/// [`Daig::check_well_formed`] and treat failure as a dropped (cold)
/// section.
///
/// # Errors
///
/// [`PersistError`] on truncated or structurally invalid input.
pub fn decode_daig<D: AbstractDomain + Persist>(
    r: &mut Reader<'_>,
    strategy: FixStrategy,
) -> Result<Daig<D>, PersistError> {
    let n = r.u64()?;
    if n > r.remaining() as u64 {
        return Err(PersistError::Corrupt(
            "cell count exceeds remaining input".to_string(),
        ));
    }
    struct Decoded<D> {
        name: Name,
        value: Option<Value<D>>,
        comp: Option<(Func, Vec<u32>)>,
    }
    let mut cells: Vec<Decoded<D>> = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = Name::get(r)?;
        let value = match r.u8()? {
            0 => None,
            1 => Some(Value::<D>::get(r)?),
            t => return Err(PersistError::Corrupt(format!("bad value marker {t}"))),
        };
        let comp = match r.u8()? {
            0 => None,
            1 => {
                let func = func_from_code(r.u8()?)?;
                let k = r.u64()?;
                if k > r.remaining() as u64 {
                    return Err(PersistError::Corrupt(
                        "source count exceeds remaining input".to_string(),
                    ));
                }
                let mut srcs = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    let p = r.u32()?;
                    if u64::from(p) >= n {
                        return Err(PersistError::Corrupt(format!(
                            "source position {p} out of range (cells: {n})"
                        )));
                    }
                    srcs.push(p);
                }
                Some((func, srcs))
            }
            t => return Err(PersistError::Corrupt(format!("bad comp marker {t}"))),
        };
        cells.push(Decoded { name, value, comp });
    }
    let mut daig: Daig<D> = Daig::new();
    daig.set_strategy(strategy);
    let ids: Vec<CellId> = cells
        .iter()
        .map(|c| daig.add_cell_id(c.name.clone(), c.value.clone()))
        .collect();
    // A fresh interner hands out dense ids in insertion order; anything
    // else means a duplicated name aliased two saved cells onto one id.
    if ids.iter().enumerate().any(|(i, id)| id.idx() != i) {
        return Err(PersistError::Corrupt("duplicate cell name".to_string()));
    }
    for (i, c) in cells.iter().enumerate() {
        if let Some((func, srcs)) = &c.comp {
            let src_ids: Vec<CellId> = srcs.iter().map(|&p| ids[p as usize]).collect();
            daig.add_comp_ids(ids[i], *func, src_ids);
        }
    }
    Ok(daig)
}

impl<D: PersistDomain> SessionImage<D> {
    /// Serializes the image into a complete snapshot file (header plus
    /// `SESS`/`FUNC`*/`MEMO` sections). Memo entries are sorted by key
    /// first, so equal images produce byte-identical files.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = SnapshotWriter::new();
        let mut sess = Writer::new();
        self.name.put(&mut sess);
        self.domain.put(&mut sess);
        self.strategy.put(&mut sess);
        self.policy.put(&mut sess);
        self.source.put(&mut sess);
        self.edits.put(&mut sess);
        out.section(TAG_SESSION, SESSION_VERSION, &sess.into_bytes());
        for f in &self.funcs {
            let mut w = Writer::new();
            f.func.put(&mut w);
            f.entry.put(&mut w);
            encode_daig(&f.daig, &mut w);
            out.section(TAG_FUNC, FUNC_VERSION, &w.into_bytes());
        }
        if !self.memo.is_empty() {
            // Sort and dedup by reference: cloning the entries (every
            // memoized abstract state) just to order them would double
            // the save path's transient memory.
            let mut entries: Vec<&(MemoKey, Value<D>)> = self.memo.iter().collect();
            entries.sort_by_key(|(k, _)| *k);
            entries.dedup_by_key(|(k, _)| *k);
            let mut w = Writer::new();
            w.u64(entries.len() as u64);
            for (k, v) in entries {
                k.put(&mut w);
                v.put(&mut w);
            }
            out.section(TAG_MEMO, MEMO_VERSION, &w.into_bytes());
        }
        out.into_bytes()
    }

    /// Parses a snapshot file, applying the lossy policy: `FUNC` and
    /// `MEMO` sections that are damaged, version-skewed, or undecodable
    /// are dropped (counted in the report); restore then degrades to a
    /// cold start for exactly that state, which is sound.
    ///
    /// # Errors
    ///
    /// Header errors, a missing/damaged/undecodable `SESS` section, or a
    /// `SESS` section recorded under a different domain than `D`.
    pub fn from_bytes(bytes: &[u8]) -> Result<(SessionImage<D>, RestoreReport), PersistError> {
        let list = read_sections(bytes)?;
        let mut report = RestoreReport {
            truncated: list.truncated,
            ..RestoreReport::default()
        };
        // The required session header. Unlike FUNC/MEMO — where version
        // skew just drops the section — a skewed SESS section is fatal:
        // decoding it under the wrong layout could silently restore a
        // wrong session, and there is nothing sound to fall back to.
        let sess = list
            .sections
            .iter()
            .find(|s| s.tag == TAG_SESSION)
            .ok_or(PersistError::RequiredSection("SESS"))?;
        if sess.version != SESSION_VERSION {
            return Err(PersistError::UnsupportedVersion(sess.version));
        }
        let sess_payload = sess.payload.ok_or(PersistError::RequiredSection("SESS"))?;
        let mut r = Reader::new(sess_payload);
        let name = String::get(&mut r)?;
        let domain = String::get(&mut r)?;
        let strategy = FixStrategy::get(&mut r)?;
        let policy = Option::<ContextPolicy>::get(&mut r)?;
        let source = String::get(&mut r)?;
        let edits = Vec::<ProgramEdit>::get(&mut r)?;
        if domain != D::domain_tag() {
            return Err(PersistError::Corrupt(format!(
                "snapshot was saved under domain `{domain}`, not `{}`",
                D::domain_tag()
            )));
        }
        let mut image = SessionImage {
            name,
            domain,
            strategy,
            policy,
            source,
            edits,
            funcs: Vec::new(),
            memo: Vec::new(),
        };
        for s in &list.sections {
            match s.tag {
                t if t == TAG_FUNC => {
                    let decoded = s
                        .payload
                        .filter(|_| s.version == FUNC_VERSION)
                        .and_then(|payload| {
                            let mut r = Reader::new(payload);
                            let func = Symbol::get(&mut r).ok()?;
                            let entry = D::get(&mut r).ok()?;
                            let daig = decode_daig::<D>(&mut r, strategy).ok()?;
                            r.is_exhausted().then_some(FuncImage { func, entry, daig })
                        })
                        .filter(|f| f.daig.check_well_formed().is_ok());
                    match decoded {
                        Some(f) => {
                            image.funcs.push(f);
                            report.funcs_restored += 1;
                        }
                        None => report.funcs_dropped += 1,
                    }
                }
                t if t == TAG_MEMO => {
                    let decoded =
                        s.payload
                            .filter(|_| s.version == MEMO_VERSION)
                            .and_then(|payload| {
                                let mut r = Reader::new(payload);
                                let entries = Vec::<(MemoKey, Value<D>)>::get(&mut r).ok()?;
                                r.is_exhausted().then_some(entries)
                            });
                    match decoded {
                        Some(mut entries) => {
                            report.memo_entries += entries.len();
                            image.memo.append(&mut entries);
                        }
                        None => report.memo_sections_dropped += 1,
                    }
                }
                _ => {} // SESS (already handled) and unknown future tags.
            }
        }
        Ok((image, report))
    }
}

/// How hard persistence pushes bytes toward the platter.
///
/// `Fast` is the historical behavior: tmp + rename gives atomicity
/// against a crash of *this process*, but an OS crash can still lose
/// the rename or the data behind it. `Safe` adds the full durability
/// dance — `fsync` the data file before the rename and `fsync` the
/// containing directory after it — so a completed save survives power
/// loss. Journal appends under `Safe` sync after every append batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Durability {
    /// Atomic against process crash only (no fsync). The default.
    #[default]
    Fast,
    /// fsync file before rename, fsync directory after (and after each
    /// journal append batch).
    Safe,
}

/// Process-wide `fsync` instrumentation: (file syncs, directory syncs)
/// issued by this module's durable writes. Tests assert the syscalls
/// actually happen in [`Durability::Safe`] mode — the counters bump in
/// the same call that issues the syscall, never speculatively.
static FILE_SYNCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static DIR_SYNCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The running `(file, directory)` fsync counts (see [`Durability`]).
pub fn sync_counts() -> (u64, u64) {
    (
        FILE_SYNCS.load(std::sync::atomic::Ordering::Relaxed),
        DIR_SYNCS.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// `fsync`s an open file, bumping the instrumentation counter.
///
/// # Errors
///
/// The underlying `fsync` failure.
pub fn sync_file(file: &std::fs::File) -> std::io::Result<()> {
    file.sync_all()?;
    FILE_SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(())
}

/// `fsync`s the directory containing `path`, making a completed rename
/// in it durable. Bumps the instrumentation counter.
///
/// # Errors
///
/// The open or `fsync` failure.
pub fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let dir = dir.unwrap_or_else(|| Path::new("."));
    let handle = std::fs::File::open(dir)?;
    handle.sync_all()?;
    DIR_SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(())
}

/// Writes snapshot bytes to `path` **atomically**: the bytes land in a
/// temporary file in the same directory, then rename over the
/// destination. A crash or full disk mid-write therefore never clobbers
/// an existing good snapshot — the lossy-section story covers damaged
/// *optional* payloads, but a clipped `SESS` section would lose the
/// session, so the required section gets the stronger guarantee.
/// Durability against an *OS* crash is [`Durability::Fast`] here; use
/// [`write_snapshot_file_durable`] for the fsync'd variant.
///
/// # Errors
///
/// [`PersistError::Io`] on filesystem failure.
pub fn write_snapshot_file(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), PersistError> {
    write_snapshot_file_durable(path, bytes, Durability::Fast)
}

/// [`write_snapshot_file`] with an explicit [`Durability`] level: under
/// `Safe` the temporary file is fsync'd **before** the rename (so the
/// rename can never land pointing at unwritten data) and the directory
/// is fsync'd **after** it (so the rename itself survives power loss).
///
/// # Errors
///
/// [`PersistError::Io`] on filesystem failure.
pub fn write_snapshot_file_durable(
    path: impl AsRef<Path>,
    bytes: &[u8],
    durability: Durability,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let io_err = |e: std::io::Error| PersistError::Io(format!("{}: {e}", path.display()));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        std::io::Write::write_all(&mut file, bytes).map_err(io_err)?;
        if durability == Durability::Safe {
            sync_file(&file).map_err(io_err)?;
        }
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err(e)
    })?;
    if durability == Durability::Safe {
        sync_parent_dir(path).map_err(io_err)?;
    }
    Ok(())
}

/// Reads snapshot bytes from `path`.
///
/// # Errors
///
/// [`PersistError::Io`] on filesystem failure.
pub fn read_snapshot_file(path: impl AsRef<Path>) -> Result<Vec<u8>, PersistError> {
    std::fs::read(path.as_ref())
        .map_err(|e| PersistError::Io(format!("{}: {e}", path.as_ref().display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::strip_sections;
    use dai_core::analysis::FuncAnalysis;
    use dai_core::query::{IntraResolver, QueryStats};
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parse_program;
    use dai_memo::{MemoStore, MemoTable};

    type D = IntervalDomain;

    const SRC: &str = "function f(n) { var i = 0; while (i < 9) { i = i + 1; } return i; }";

    fn evaluated_analysis() -> (FuncAnalysis<D>, MemoTable<Value<D>>) {
        let cfg = lower_program(&parse_program(SRC).unwrap()).unwrap().cfgs()[0].clone();
        let mut fa = FuncAnalysis::new(cfg, IntervalDomain::top());
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        (fa, memo)
    }

    fn image_of(fa: &FuncAnalysis<D>, memo: &MemoTable<Value<D>>) -> SessionImage<D> {
        SessionImage {
            name: "test".to_string(),
            domain: <D as PersistDomain>::domain_tag(),
            strategy: fa.daig().strategy(),
            policy: None,
            source: SRC.to_string(),
            edits: Vec::new(),
            funcs: vec![FuncImage {
                func: Symbol::new("f"),
                entry: fa.entry_state().clone(),
                daig: fa.daig().clone(),
            }],
            memo: memo.entries().map(|(k, v)| (k, v.clone())).collect(),
        }
    }

    #[test]
    fn daig_roundtrip_preserves_every_cell_and_value() {
        let (fa, memo) = evaluated_analysis();
        let (image, report) =
            SessionImage::<D>::from_bytes(&image_of(&fa, &memo).to_bytes()).unwrap();
        assert_eq!(report.funcs_restored, 1);
        assert_eq!(report.funcs_dropped, 0);
        assert!(report.is_warm());
        assert!(!report.is_lossy());
        let restored = &image.funcs[0].daig;
        restored.check_well_formed().unwrap();
        assert_eq!(restored.cell_count(), fa.daig().cell_count());
        assert_eq!(restored.comp_count(), fa.daig().comp_count());
        for n in fa.daig().names() {
            assert_eq!(restored.value(n), fa.daig().value(n), "cell {n}");
            assert_eq!(restored.comp(n), fa.daig().comp(n), "comp of {n}");
        }
        assert_eq!(image.memo.len(), memo.len());
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let (fa, memo) = evaluated_analysis();
        assert_eq!(
            image_of(&fa, &memo).to_bytes(),
            image_of(&fa, &memo).to_bytes()
        );
    }

    #[test]
    fn damaged_func_section_degrades_not_errors() {
        let (fa, memo) = evaluated_analysis();
        let mut bytes = image_of(&fa, &memo).to_bytes();
        // Find the FUNC section and corrupt a payload byte: locate the tag.
        let at = bytes
            .windows(4)
            .position(|w| w == TAG_FUNC)
            .expect("has FUNC section");
        bytes[at + 20] ^= 0x5A;
        let (image, report) = SessionImage::<D>::from_bytes(&bytes).unwrap();
        assert_eq!(report.funcs_restored, 0);
        assert_eq!(report.funcs_dropped, 1);
        assert!(report.is_lossy());
        assert!(image.funcs.is_empty());
        assert_eq!(image.source, SRC, "session header intact");
        assert_eq!(image.memo.len(), memo.len(), "memo section intact");
    }

    #[test]
    fn truncation_never_panics_and_keeps_prefix_sections() {
        let (fa, memo) = evaluated_analysis();
        let bytes = image_of(&fa, &memo).to_bytes();
        for cut in 0..bytes.len() {
            // Either a clean error (header/SESS gone) or a lossy success.
            let _ = SessionImage::<D>::from_bytes(&bytes[..cut]);
        }
        // Cutting just the trailing memo checksum keeps everything else.
        let (image, report) = SessionImage::<D>::from_bytes(&bytes[..bytes.len() - 1]).unwrap();
        assert!(report.truncated);
        assert_eq!(report.funcs_restored, 1);
        assert_eq!(report.memo_sections_dropped, 1);
        assert!(image.memo.is_empty());
    }

    #[test]
    fn stripping_func_sections_leaves_a_memo_only_warm_start() {
        let (fa, memo) = evaluated_analysis();
        let bytes = image_of(&fa, &memo).to_bytes();
        let memo_only = strip_sections(&bytes, TAG_FUNC).unwrap();
        let (image, report) = SessionImage::<D>::from_bytes(&memo_only).unwrap();
        assert!(image.funcs.is_empty());
        assert_eq!(report.funcs_dropped, 0, "stripped, not damaged");
        assert_eq!(image.memo.len(), memo.len());
    }

    #[test]
    fn version_skewed_session_header_is_fatal_not_misdecoded() {
        // Rewrite the file with the SESS section stamped as a future
        // payload version: the reader must refuse rather than decode the
        // payload under v1 field order.
        let (fa, memo) = evaluated_analysis();
        let bytes = image_of(&fa, &memo).to_bytes();
        let list = crate::codec::read_sections(&bytes).unwrap();
        let mut rewritten = crate::codec::SnapshotWriter::new();
        for s in list.sections {
            let version = if s.tag == TAG_SESSION {
                SESSION_VERSION + 1
            } else {
                s.version
            };
            rewritten.section(s.tag, version, s.payload.unwrap());
        }
        let err = SessionImage::<D>::from_bytes(&rewritten.into_bytes()).unwrap_err();
        assert!(
            matches!(err, PersistError::UnsupportedVersion(v) if v == SESSION_VERSION + 1),
            "{err}"
        );
    }

    #[test]
    fn version_skewed_warm_sections_are_dropped_not_fatal() {
        let (fa, memo) = evaluated_analysis();
        let bytes = image_of(&fa, &memo).to_bytes();
        let list = crate::codec::read_sections(&bytes).unwrap();
        let mut rewritten = crate::codec::SnapshotWriter::new();
        for s in list.sections {
            let version = if s.tag == TAG_SESSION {
                s.version
            } else {
                s.version + 1
            };
            rewritten.section(s.tag, version, s.payload.unwrap());
        }
        let (image, report) = SessionImage::<D>::from_bytes(&rewritten.into_bytes()).unwrap();
        assert_eq!(report.funcs_dropped, 1);
        assert_eq!(report.memo_sections_dropped, 1);
        assert!(image.funcs.is_empty() && image.memo.is_empty());
        assert_eq!(image.source, SRC, "header still restores");
    }

    #[test]
    fn wrong_domain_is_rejected() {
        let (fa, memo) = evaluated_analysis();
        let bytes = image_of(&fa, &memo).to_bytes();
        let err = SessionImage::<dai_domains::SignDomain>::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(m) if m.contains("domain")));
    }

    #[test]
    fn restored_memo_entries_hit_a_fresh_table() {
        let (fa, memo) = evaluated_analysis();
        let (image, _) = SessionImage::<D>::from_bytes(&image_of(&fa, &memo).to_bytes()).unwrap();
        let mut fresh: MemoTable<Value<D>> = MemoTable::new();
        for (k, v) in image.memo {
            fresh.record(k, v);
        }
        // Re-running the query over a fresh DAIG with the restored memo
        // table must match memo entries instead of recomputing.
        let cfg = lower_program(&parse_program(SRC).unwrap()).unwrap().cfgs()[0].clone();
        let mut fa2 = FuncAnalysis::new(cfg, IntervalDomain::top());
        let mut stats = QueryStats::default();
        let out = fa2
            .query_exit(&mut fresh, &mut IntraResolver, &mut stats)
            .unwrap();
        assert!(stats.memo_matched > 0, "warm memo must match: {stats:?}");
        let mut cold_memo = MemoTable::new();
        let cfg = lower_program(&parse_program(SRC).unwrap()).unwrap().cfgs()[0].clone();
        let mut fa3 = FuncAnalysis::new(cfg, IntervalDomain::top());
        let mut cold_stats = QueryStats::default();
        let cold = fa3
            .query_exit(&mut cold_memo, &mut IntraResolver, &mut cold_stats)
            .unwrap();
        assert_eq!(out, cold, "warm and cold answers agree");
        assert!(
            stats.computed < cold_stats.computed,
            "warm start computes fewer cells ({} vs {})",
            stats.computed,
            cold_stats.computed
        );
    }

    #[test]
    fn safe_durability_issues_the_fsyncs_and_fast_does_not() {
        let dir = std::env::temp_dir().join(format!("dai-durab-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.daip");

        // Fast: no syncs. (Other tests in this process don't use Safe
        // mode, but read the counters as before/after deltas anyway.)
        let before = sync_counts();
        write_snapshot_file_durable(&path, b"fast bytes", Durability::Fast).unwrap();
        assert_eq!(sync_counts(), before, "Fast mode must not fsync");
        assert_eq!(std::fs::read(&path).unwrap(), b"fast bytes");

        // Safe: exactly one file sync (tmp before rename) and one
        // directory sync (after rename).
        let (f0, d0) = sync_counts();
        write_snapshot_file_durable(&path, b"safe bytes", Durability::Safe).unwrap();
        let (f1, d1) = sync_counts();
        assert_eq!(f1 - f0, 1, "Safe mode fsyncs the data file");
        assert_eq!(d1 - d0, 1, "Safe mode fsyncs the directory");
        assert_eq!(std::fs::read(&path).unwrap(), b"safe bytes");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
