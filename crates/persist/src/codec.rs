//! The low-level container format: a magic/version header followed by
//! length-prefixed, individually checksummed **sections**.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "DAIP"  magic                                   4 bytes
//! u16     container format version (FORMAT_VERSION)
//! u16     reserved flags (0)
//! then, repeated until end of file:
//!   [u8;4]  section tag ("SESS", "FUNC", "MEMO", …)
//!   u16     section payload version
//!   u64     payload length
//!   bytes   payload
//!   u64     checksum of the payload (FxHash64 over bytes + length)
//! ```
//!
//! The framing is what makes persistence *lossy by section*: a reader can
//! always locate the next section boundary from the length prefix, verify
//! the payload independently via its checksum, and skip a damaged or
//! version-skewed section without giving up on the rest of the file. A
//! truncated file simply yields fewer sections (the cut-off one is
//! reported as damaged). Which sections are *allowed* to be dropped is the
//! caller's policy — see [`crate::snapshot`].

use crate::frame::{split_frame, write_frame};
use std::fmt;

pub use crate::frame::checksum;

/// The 4-byte file magic.
pub const MAGIC: [u8; 4] = *b"DAIP";

/// The container format version. Bumped only when the *framing* changes;
/// section payloads carry their own versions.
pub const FORMAT_VERSION: u16 = 1;

/// Section tag: the per-session header (source, edit history, strategy).
pub const TAG_SESSION: [u8; 4] = *b"SESS";
/// Section tag: one demanded function's DAIG (structure + values).
pub const TAG_FUNC: [u8; 4] = *b"FUNC";
/// Section tag: memo-table entries.
pub const TAG_MEMO: [u8; 4] = *b"MEMO";

/// Failures surfaced by snapshot encoding/decoding.
///
/// Note the asymmetry with the lossy design: most decoding problems in
/// *optional* sections never become a `PersistError` — they are counted in
/// a [`crate::snapshot::RestoreReport`] instead. Errors are reserved for
/// problems that make the whole file unusable (bad magic, unsupported
/// container version, a damaged required section) or for I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input ended before a fixed-size field was complete.
    Truncated,
    /// Structurally invalid data (bad tag, impossible count, failed
    /// invariant revalidation).
    Corrupt(String),
    /// The file is not a snapshot (wrong magic).
    NotASnapshot,
    /// The container format version is not supported by this build.
    UnsupportedVersion(u16),
    /// A required section is missing or damaged.
    RequiredSection(&'static str),
    /// Filesystem failure.
    Io(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "snapshot data ends mid-field"),
            PersistError::Corrupt(m) => write!(f, "corrupt snapshot data: {m}"),
            PersistError::NotASnapshot => write!(f, "not a dai snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot container version {v}")
            }
            PersistError::RequiredSection(tag) => {
                write!(f, "required snapshot section `{tag}` missing or damaged")
            }
            PersistError::Io(m) => write!(f, "snapshot i/o: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// An append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a run of little-endian `i64`s (no length prefix) — the
    /// bulk path for matrix-shaped payloads (octagon DBMs), where a
    /// per-entry [`Writer::i64`] loop costs more than the rest of the
    /// encoding combined.
    pub fn i64s(&mut self, vs: &[i64]) {
        #[cfg(target_endian = "little")]
        {
            // On little-endian hosts the in-memory representation IS the
            // wire representation, so the whole run is one memcpy. `i64`
            // has no padding and any byte pattern is valid `u8`.
            let bytes = unsafe {
                std::slice::from_raw_parts(vs.as_ptr().cast::<u8>(), std::mem::size_of_val(vs))
            };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for &v in vs {
            self.i64(v);
        }
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte is consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    /// Reads a run of `n` little-endian `i64`s — the bulk counterpart of
    /// [`Writer::i64s`]. Bounds-checked once for the whole run.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] if fewer than `n * 8` bytes remain
    /// (or `n * 8` overflows).
    pub fn i64s(&mut self, n: usize) -> Result<Vec<i64>, PersistError> {
        let bytes = self
            .take(n.checked_mul(8).ok_or(PersistError::Truncated)?)?
            .chunks_exact(8);
        let mut out = Vec::with_capacity(n);
        out.extend(bytes.map(|c| i64::from_le_bytes(c.try_into().expect("8"))));
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] / [`PersistError::Corrupt`] for bad
    /// lengths or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, PersistError> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads a length-prefixed UTF-8 string as a borrow of the input —
    /// the allocation-free path for decoders that intern or copy into
    /// their own representation ([`Symbol`](dai_lang::Symbol)s in
    /// particular, which octagon states carry by the dozen).
    ///
    /// # Errors
    ///
    /// As [`Reader::str`].
    pub fn str_ref(&mut self) -> Result<&'a str, PersistError> {
        let n = self.len_prefix()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("invalid UTF-8 in string".to_string()))
    }

    /// Reads a `u64` length/count prefix, rejecting values that exceed the
    /// remaining input (a corrupted count must fail fast, not attempt a
    /// multi-gigabyte allocation).
    pub fn len_prefix(&mut self) -> Result<usize, PersistError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(PersistError::Corrupt(format!(
                "length prefix {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }
}

/// Builds a snapshot file: header plus appended sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

impl SnapshotWriter {
    /// A writer with the magic/version header in place.
    pub fn new() -> SnapshotWriter {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes()); // reserved flags
        SnapshotWriter { buf }
    }

    /// Appends one section: tag, payload version, length, payload,
    /// checksum — one [`crate::frame`] frame, the same layout `dai-rpc`
    /// sends over sockets.
    pub fn section(&mut self, tag: [u8; 4], version: u16, payload: &[u8]) {
        write_frame(&mut self.buf, tag, version, payload);
    }

    /// The finished file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// One section as found in a snapshot file.
#[derive(Debug, Clone, Copy)]
pub struct RawSection<'a> {
    /// The 4-byte tag.
    pub tag: [u8; 4],
    /// The payload version the writer recorded.
    pub version: u16,
    /// The payload, if its checksum verified; `None` for a damaged
    /// (checksum-mismatched or truncated) section.
    pub payload: Option<&'a [u8]>,
}

/// The parsed section list of a snapshot file.
#[derive(Debug)]
pub struct SectionList<'a> {
    /// Sections in file order, damaged ones included with `payload: None`.
    pub sections: Vec<RawSection<'a>>,
    /// `true` if the file ended mid-section (everything before the cut is
    /// still usable).
    pub truncated: bool,
}

/// Splits a snapshot file into its sections, verifying the header and each
/// payload checksum. Damage is *contained*: a bad checksum or a trailing
/// truncation marks that one section damaged without failing the parse.
///
/// # Errors
///
/// [`PersistError::NotASnapshot`] / [`PersistError::UnsupportedVersion`]
/// when the header itself is unusable.
pub fn read_sections(bytes: &[u8]) -> Result<SectionList<'_>, PersistError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4).map_err(|_| PersistError::NotASnapshot)?;
    if magic != MAGIC {
        return Err(PersistError::NotASnapshot);
    }
    let version = r.u16().map_err(|_| PersistError::NotASnapshot)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let _flags = r.u16().map_err(|_| PersistError::NotASnapshot)?;
    let mut rest = r.take(r.remaining()).expect("remaining bytes");
    let mut sections = Vec::new();
    let mut truncated = false;
    while !rest.is_empty() {
        let Some(frame) = split_frame(rest) else {
            // Not even a complete header remains.
            truncated = true;
            break;
        };
        sections.push(RawSection {
            tag: frame.header.tag,
            version: frame.header.version,
            payload: frame.payload,
        });
        if frame.truncated {
            // The payload or its checksum was cut off: the section was
            // recorded as damaged and no resync point exists.
            truncated = true;
            break;
        }
        rest = &rest[frame.consumed..];
    }
    Ok(SectionList {
        sections,
        truncated,
    })
}

/// Rewrites a snapshot file without any section whose tag is `tag`.
/// Damaged trailing data is dropped too. Used by tests and the
/// persistence benchmark to build memo-only (or DAIG-only) restore
/// points from one full snapshot.
///
/// # Errors
///
/// Propagates header errors from [`read_sections`].
pub fn strip_sections(bytes: &[u8], tag: [u8; 4]) -> Result<Vec<u8>, PersistError> {
    let list = read_sections(bytes)?;
    let mut out = SnapshotWriter::new();
    for s in list.sections {
        if s.tag == tag {
            continue;
        }
        if let Some(payload) = s.payload {
            out.section(s.tag, s.version, payload);
        }
    }
    Ok(out.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i64(-42);
        w.u128(0xDEAD_BEEF_DEAD_BEEF_0123_4567_89AB_CDEF);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.u128().unwrap(), 0xDEAD_BEEF_DEAD_BEEF_0123_4567_89AB_CDEF);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_exhausted());
        assert_eq!(r.u8(), Err(PersistError::Truncated));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len_prefix(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn sections_roundtrip_and_verify() {
        let mut sw = SnapshotWriter::new();
        sw.section(TAG_SESSION, 1, b"hello");
        sw.section(TAG_MEMO, 2, b"world!");
        let bytes = sw.into_bytes();
        let list = read_sections(&bytes).unwrap();
        assert!(!list.truncated);
        assert_eq!(list.sections.len(), 2);
        assert_eq!(list.sections[0].tag, TAG_SESSION);
        assert_eq!(list.sections[0].version, 1);
        assert_eq!(list.sections[0].payload, Some(&b"hello"[..]));
        assert_eq!(list.sections[1].payload, Some(&b"world!"[..]));
    }

    #[test]
    fn flipped_byte_damages_only_its_section() {
        let mut sw = SnapshotWriter::new();
        sw.section(TAG_SESSION, 1, b"intact");
        sw.section(TAG_MEMO, 1, b"to-be-damaged");
        let mut bytes = sw.into_bytes();
        // Flip one byte inside the second payload.
        let at = bytes.len() - 10;
        bytes[at] ^= 0xFF;
        let list = read_sections(&bytes).unwrap();
        assert_eq!(list.sections[0].payload, Some(&b"intact"[..]));
        assert_eq!(list.sections[1].payload, None, "checksum must catch it");
        assert!(!list.truncated);
    }

    #[test]
    fn truncation_keeps_complete_prefix() {
        let mut sw = SnapshotWriter::new();
        sw.section(TAG_SESSION, 1, b"first");
        sw.section(TAG_FUNC, 1, b"second-section-payload");
        let bytes = sw.into_bytes();
        for cut in 9..bytes.len() {
            let list = read_sections(&bytes[..cut]).unwrap();
            for s in &list.sections {
                if let Some(p) = s.payload {
                    // Any payload that survives a cut must be genuine.
                    assert!(p == b"first" || p == b"second-section-payload");
                }
            }
        }
        // Header-only truncation is a header error, not a panic.
        assert!(read_sections(&bytes[..3]).is_err());
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        assert_eq!(
            read_sections(b"NOPE....").unwrap_err(),
            PersistError::NotASnapshot
        );
        let mut bytes = SnapshotWriter::new().into_bytes();
        bytes[4] = 0xFF; // mangle the format version
        assert!(matches!(
            read_sections(&bytes),
            Err(PersistError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn strip_removes_tagged_sections() {
        let mut sw = SnapshotWriter::new();
        sw.section(TAG_SESSION, 1, b"keep");
        sw.section(TAG_MEMO, 1, b"drop");
        sw.section(TAG_FUNC, 1, b"keep2");
        let stripped = strip_sections(&sw.into_bytes(), TAG_MEMO).unwrap();
        let list = read_sections(&stripped).unwrap();
        assert_eq!(list.sections.len(), 2);
        assert!(list.sections.iter().all(|s| s.tag != TAG_MEMO));
    }
}
