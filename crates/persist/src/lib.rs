//! # dai-persist — versioned snapshot/restore for demanded analysis
//!
//! Serializes the three stateful layers of a demanded-abstract-
//! interpretation session — **session state** (program source + edit
//! history), **per-function DAIGs** (cell structure + computed values),
//! and **memo-table shards** — into a self-describing, versioned binary
//! file, and restores them. Hand-rolled codec: the workspace builds
//! offline, so there is no serde; see [`codec`] for the exact framing.
//!
//! ## Why a *lossy* format is sound (and why that matters here)
//!
//! The central soundness result of demanded abstract interpretation
//! (Stein et al., PLDI 2021, §2.2 and Theorems 6.1–6.3) is that every
//! value a DAIG cell or memo entry caches is something the analysis can
//! recompute from the program alone: **dropping any cached result — or
//! all of them — never changes any query's answer**, only the work needed
//! to produce it. Persistence inherits that guarantee wholesale:
//!
//! * a snapshot's `FUNC` (DAIG) and `MEMO` sections are pure *warm-start
//!   accelerators*. If one is corrupt on disk, version-skewed, or simply
//!   cut off, the restore **skips it and degrades to a cold start** for
//!   exactly that state — same answers, more recomputation;
//! * only the `SESS` section (source text + edit history + strategy) is
//!   load-bearing, because it determines *which program* is analyzed.
//!   It is small, checksummed, and replayed through `dai-lang`'s parser
//!   and deterministic edit primitives, so a restored session's CFGs are
//!   identical — location and edge ids included — to the live session's;
//! * restored values cannot silently lie: each `FUNC` section is
//!   revalidated against Definition 4.1 well-formedness after decoding
//!   (and `dai-engine` additionally cross-checks the DAIG's statement
//!   cells against the replayed CFG), falling back to cold on mismatch.
//!
//! This is an unusually friendly persistence problem: most systems must
//! choose between expensive write-ahead durability and correctness,
//! whereas here the worst case of *any* partial write, bit rot, or
//! version skew in the optional sections is a slower first query.
//!
//! ## File format (see [`codec`] for byte-level detail)
//!
//! ```text
//! header   "DAIP" + container version
//! SESS     name, domain tag, strategy, source text, edit history   (required)
//! FUNC*    one per demanded function: name, φ₀, DAIG cells         (lossy)
//! MEMO     sorted (key, value) memo entries                        (lossy)
//! ```
//!
//! Every section is length-prefixed and carries its own version and
//! checksum, so readers can always skip what they cannot use. Snapshots
//! of equal sessions are byte-identical (cells are written in interning
//! order, memo entries sorted by key).
//!
//! ## Crate map
//!
//! * [`frame`] — the shared frame layout (tag + version + length +
//!   payload + FxHash64 checksum) used both by snapshot sections here and
//!   by `dai-rpc`'s socket messages — one framing implementation, two
//!   transports;
//! * [`codec`] — the container: header, sections (one [`frame`] each),
//!   checksums, [`codec::strip_sections`] for building partial restore
//!   points;
//! * [`wire`] — the [`wire::Persist`] encode/decode trait and its
//!   implementations for `dai-lang` syntax, `dai-core` names/values, and
//!   every shipped abstract domain ([`wire::PersistDomain`]);
//! * [`snapshot`] — [`snapshot::SessionImage`]: assembling, serializing,
//!   and lossily parsing whole-session snapshots.
//!
//! The engine-facing save/restore logic (sessions, the `Request::Save` /
//! `Request::Load` stream handlers) lives in `dai-engine`, which composes
//! these pieces; the REPL's `save`/`load` commands persist its
//! interprocedural session as source + history (cold restore).

pub mod codec;
pub mod explain;
pub mod frame;
pub mod snapshot;
pub mod trace;
pub mod wire;

pub use codec::{
    read_sections, strip_sections, PersistError, Reader, SnapshotWriter, Writer, FORMAT_VERSION,
    TAG_FUNC, TAG_MEMO, TAG_SESSION,
};
pub use explain::{
    decode_explain_frame, encode_explain_frame, EXPLAIN_FRAME_TAG, EXPLAIN_FRAME_VERSION,
};
pub use frame::{
    checksum, checksum_with, read_frame, read_frame_expecting, split_frame, write_frame,
    write_frame_id, FrameHeader, FrameReadError, StreamFrame, FRAME_HEADER_LEN, FRAME_ID_LEN,
    FRAME_TRAILER_LEN,
};
pub use snapshot::{
    decode_daig, encode_daig, read_snapshot_file, sync_counts, sync_file, sync_parent_dir,
    write_snapshot_file, write_snapshot_file_durable, Durability, FuncImage, RestoreReport,
    SessionImage, FUNC_VERSION, MEMO_VERSION, SESSION_VERSION,
};
pub use trace::{decode_trace_frame, encode_trace_frame, TRACE_FRAME_TAG, TRACE_FRAME_VERSION};
pub use wire::{Persist, PersistDomain, MAX_DECODE_DEPTH};
