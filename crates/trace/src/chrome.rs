//! Chrome `trace_event` JSON export: a [`TraceDump`] becomes a
//! `{"traceEvents": [...]}` document `chrome://tracing` and Perfetto
//! open directly, and [`validate_chrome_trace`] re-parses one with a
//! small hand-rolled JSON reader so exports can be checked in-process
//! (the workspace is offline — no serde).

use crate::recorder::{RecordKind, TraceDump};

/// What a re-parse of an exported trace found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total entries in `traceEvents`.
    pub total: usize,
    /// `"ph":"X"` complete (span) events.
    pub complete: usize,
    /// `"ph":"i"` instant events.
    pub instants: usize,
    /// `"ph":"M"` metadata events (thread names).
    pub metadata: usize,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders `dump` as a Chrome `trace_event` JSON document: one `"M"`
/// thread-name metadata entry per thread, one `"X"` complete event per
/// span, one `"i"` instant per event. Timestamps are microseconds from
/// the trace epoch; the probe's integer payload travels in
/// `args.arg`.
pub fn chrome_trace_json(dump: &TraceDump) -> String {
    let mut out = String::with_capacity(64 + dump.records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &str, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(s);
    };
    for (tid, name) in dump.threads.iter().enumerate() {
        let mut entry = String::from("{\"ph\":\"M\",\"pid\":1,\"name\":\"thread_name\",\"tid\":");
        entry.push_str(&tid.to_string());
        entry.push_str(",\"args\":{\"name\":\"");
        escape_json(name, &mut entry);
        entry.push_str("\"}}");
        emit(&entry, &mut out);
    }
    for r in &dump.records {
        let ts_us = r.start_ns as f64 / 1e3;
        let mut entry = String::from("{\"name\":\"");
        escape_json(dump.label_of(r), &mut entry);
        entry.push_str("\",\"pid\":1,\"tid\":");
        entry.push_str(&r.thread.to_string());
        match r.kind {
            RecordKind::Span => {
                let dur_us = r.end_ns.saturating_sub(r.start_ns) as f64 / 1e3;
                entry.push_str(&format!(
                    ",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3}"
                ));
            }
            RecordKind::Event => {
                entry.push_str(&format!(",\"ph\":\"i\",\"ts\":{ts_us:.3},\"s\":\"t\""));
            }
        }
        entry.push_str(&format!(",\"args\":{{\"arg\":{}}}}}", r.arg));
        emit(&entry, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader (for re-parsing exports).
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough structure to validate a trace.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.at)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 64 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.at) {
            None => Err(self.err("unexpected end")),
            Some(b'{') => {
                self.at += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b'}') {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b']') {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.at) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.at += 1;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return String::from_utf8(out).map_err(|_| self.err("invalid utf-8"));
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(&b) => {
                    out.push(b);
                    self.at += 1;
                }
            }
        }
    }
}

/// Re-parses a Chrome trace document: the top level must be an object
/// whose `traceEvents` is an array of objects, each carrying a string
/// `"ph"` (and a `"name"` unless it is pure metadata). Returns counts
/// per phase, or a description of the first structural problem.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeSummary, String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        at: 0,
    };
    let doc = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err("`traceEvents` is not an array".to_string()),
        None => return Err("document has no `traceEvents` field".to_string()),
    };
    let mut summary = ChromeSummary::default();
    for (i, entry) in events.iter().enumerate() {
        let ph = entry
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] has no string `ph`"))?;
        match ph {
            "X" => {
                summary.complete += 1;
                for field in ["name", "ts", "dur"] {
                    if entry.get(field).is_none() {
                        return Err(format!("traceEvents[{i}] (ph=X) missing `{field}`"));
                    }
                }
            }
            "i" => {
                summary.instants += 1;
                if entry.get("name").is_none() {
                    return Err(format!("traceEvents[{i}] (ph=i) missing `name`"));
                }
            }
            "M" => summary.metadata += 1,
            other => return Err(format!("traceEvents[{i}] has unknown ph `{other}`")),
        }
        summary.total += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Record;

    fn sample_dump() -> TraceDump {
        TraceDump {
            records: vec![
                Record {
                    label: 0,
                    thread: 0,
                    kind: RecordKind::Span,
                    start_ns: 1_000,
                    end_ns: 5_000,
                    arg: 3,
                },
                Record {
                    label: 1,
                    thread: 1,
                    kind: RecordKind::Event,
                    start_ns: 2_000,
                    end_ns: 2_000,
                    arg: 0,
                },
            ],
            labels: vec!["engine.cone_walk".into(), "engine.unroll".into()],
            threads: vec!["main".into(), "dai-worker-0".into()],
            dropped: 0,
            dropped_by_thread: vec![0, 0],
        }
    }

    #[test]
    fn export_roundtrips_through_the_validator() {
        let json = chrome_trace_json(&sample_dump());
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(
            summary,
            ChromeSummary {
                total: 4, // 2 thread metadata + 1 span + 1 instant
                complete: 1,
                instants: 1,
                metadata: 2,
            }
        );
        assert!(json.contains("\"dur\":4.000"), "{json}");
        assert!(json.contains("dai-worker-0"), "{json}");
    }

    #[test]
    fn labels_with_json_metacharacters_are_escaped() {
        let mut dump = sample_dump();
        dump.labels[0] = "weird\"label\\with\nstuff".into();
        let json = chrome_trace_json(&dump);
        let summary = validate_chrome_trace(&json).expect("escaped trace stays valid");
        assert_eq!(summary.complete, 1);
    }

    #[test]
    fn validator_rejects_structural_damage() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":7}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"no_ph\":1}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").unwrap().total == 0);
        let valid = chrome_trace_json(&sample_dump());
        assert!(validate_chrome_trace(&valid[..valid.len() - 3]).is_err());
    }

    #[test]
    fn parser_handles_numbers_escapes_and_nesting() {
        let doc = r#"{"traceEvents":[{"ph":"X","name":"aA","ts":1.5,"dur":-2e-3,"args":{"deep":[1,2,{"x":null,"y":true}]}}]}"#;
        let summary = validate_chrome_trace(doc).expect("parses");
        assert_eq!(summary.complete, 1);
    }
}
