//! Plain-text table rendering for reports (explain output, bench
//! summaries) — columns sized to their widest cell, no dependencies.

/// Renders `rows` under `headers` as an aligned text table, each line
/// prefixed with `indent`. Rows narrower than the header row are padded
/// with empty cells; wider rows are truncated to the header width.
pub fn render_table<const N: usize>(
    headers: &[&str; N],
    rows: &[[String; N]],
    indent: &str,
) -> String {
    let mut widths: [usize; N] = [0; N];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = h.chars().count();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let push_row = |cells: &[&str], out: &mut String| {
        out.push_str(indent);
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            // Pad every column but the last, so lines don't trail spaces.
            if i + 1 < cells.len() {
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
    };
    push_row(&headers[..], &mut out);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let rule_refs: Vec<&str> = rule.iter().map(String::as_str).collect();
    push_row(&rule_refs, &mut out);
    for row in rows {
        let refs: Vec<&str> = row.iter().map(String::as_str).collect();
        push_row(&refs, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_to_widest_cell() {
        let rows = vec![
            ["a".to_string(), "long-cell".to_string()],
            ["much-longer".to_string(), "b".to_string()],
        ];
        let table = render_table(&["x", "y"], &rows, "  ");
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "{table}");
        assert!(lines[0].starts_with("  x"), "{table}");
        assert!(lines[1].contains("---"), "{table}");
        // Second column starts at the same offset on every line.
        let col = lines[2].find("long-cell").unwrap();
        assert_eq!(lines[3].find('b').unwrap(), col, "{table}");
    }

    #[test]
    fn no_trailing_spaces() {
        let rows = vec![["ab".to_string(), "c".to_string()]];
        let table = render_table(&["first", "s"], &rows, "");
        for line in table.lines() {
            assert_eq!(line, line.trim_end(), "{table:?}");
        }
    }
}
