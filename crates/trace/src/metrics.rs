//! A process-wide registry of named counters, gauges, and fixed-bucket
//! latency histograms, with Prometheus-style text exposition.
//!
//! Handles are cheap `Arc` clones over atomics: register once (a name
//! lookup under the registry lock), then update lock-free. The registry
//! subsumes the stack's ad-hoc counters for *export*: layers keep their
//! own accounting, and publish into gauges when an exposition is
//! rendered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Histogram bucket upper bounds in nanoseconds: powers of four from
/// 1 µs to ~4.3 s, a fixed layout every latency histogram shares so
/// exports never disagree on buckets.
pub const LATENCY_BUCKETS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_294_967_296,
];

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// One count per [`LATENCY_BUCKETS_NS`] bound, plus the +Inf bucket.
    buckets: [AtomicU64; LATENCY_BUCKETS_NS.len() + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket latency histogram (bounds: [`LATENCY_BUCKETS_NS`]).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let at = LATENCY_BUCKETS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKETS_NS.len());
        self.0.buckets[at].fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metrics registry; get the process-wide one via [`metrics`].
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Registry>,
}

/// The process-wide metrics registry.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::default)
}

impl Metrics {
    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.inner.lock().expect("metrics registry poisoned");
        reg.counters
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = self.inner.lock().expect("metrics registry poisoned");
        reg.gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The latency histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = self.inner.lock().expect("metrics registry poisoned");
        reg.histograms
            .entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramInner {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    sum_ns: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Prometheus text exposition: every registered metric, sorted by
    /// name, with `# TYPE` headers; histogram bounds and sums are
    /// rendered in seconds.
    pub fn render_prometheus(&self) -> String {
        let reg = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, c) in &reg.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in &reg.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in &reg.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &bound) in LATENCY_BUCKETS_NS.iter().enumerate() {
                cumulative += h.0.buckets[i].load(Ordering::Relaxed);
                let le = bound as f64 / 1e9;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            cumulative += h.0.buckets[LATENCY_BUCKETS_NS.len()].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", h.sum_ns() as f64 / 1e9);
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_update() {
        let m = Metrics::default();
        let c = m.counter("test_ops_total");
        c.inc();
        c.add(4);
        // A second lookup sees the same underlying cell.
        assert_eq!(m.counter("test_ops_total").get(), 5);
        let g = m.gauge("test_depth");
        g.set(17);
        g.set(3);
        assert_eq!(m.gauge("test_depth").get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let m = Metrics::default();
        let h = m.histogram("test_latency_seconds");
        h.observe_ns(500); // <= 1_000
        h.observe_ns(2_000); // <= 4_000
        h.observe_ns(10_000_000_000); // beyond the last bound -> +Inf
        let text = m.render_prometheus();
        assert!(
            text.contains("test_latency_seconds_bucket{le=\"0.000001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("test_latency_seconds_bucket{le=\"0.000004\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("test_latency_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("test_latency_seconds_count 3"), "{text}");
    }

    #[test]
    fn exposition_is_sorted_and_typed() {
        let m = Metrics::default();
        m.counter("zeta_total").inc();
        m.counter("alpha_total").inc();
        m.gauge("middle").set(1);
        let text = m.render_prometheus();
        let alpha = text.find("# TYPE alpha_total counter").unwrap();
        let zeta = text.find("# TYPE zeta_total counter").unwrap();
        assert!(alpha < zeta, "{text}");
        assert!(text.contains("# TYPE middle gauge"), "{text}");
    }
}
