//! The span/event recorder: per-thread ring buffers of fixed-size
//! records, interned labels, one monotonic epoch, drained into a
//! [`TraceDump`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Records each thread's ring holds before the oldest are overwritten.
pub const RING_CAPACITY: usize = 1 << 16;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (first use).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------
// Runtime switch.
// ---------------------------------------------------------------------

/// The runtime tracing switch, shared as `Arc<TraceConfig>` by every
/// layer ([`config`] hands out the process-wide instance).
#[derive(Debug, Default)]
pub struct TraceConfig {
    enabled: AtomicBool,
}

impl TraceConfig {
    /// Is recording currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (takes effect at the next probe).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Were the hot-path probes compiled in (`probes` feature)?
    pub fn probes_compiled() -> bool {
        cfg!(feature = "probes")
    }
}

/// The process-wide tracing configuration.
pub fn config() -> &'static Arc<TraceConfig> {
    static CONFIG: OnceLock<Arc<TraceConfig>> = OnceLock::new();
    CONFIG.get_or_init(|| Arc::new(TraceConfig::default()))
}

/// True iff probes are compiled in *and* the runtime switch is on.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "probes") && config().is_enabled()
}

// ---------------------------------------------------------------------
// Labels and probe sites.
// ---------------------------------------------------------------------

/// An interned label id (index into [`TraceDump::labels`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

#[derive(Default)]
struct LabelInterner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

fn labels() -> &'static Mutex<LabelInterner> {
    static LABELS: OnceLock<Mutex<LabelInterner>> = OnceLock::new();
    LABELS.get_or_init(|| Mutex::new(LabelInterner::default()))
}

/// Interns `name`, returning its stable [`Label`].
pub fn label(name: &str) -> Label {
    let mut interner = labels().lock().expect("label interner poisoned");
    if let Some(&id) = interner.index.get(name) {
        return Label(id);
    }
    let id = interner.names.len() as u32;
    interner.names.push(name.to_string());
    interner.index.insert(name.to_string(), id);
    Label(id)
}

fn label_names() -> Vec<String> {
    labels()
        .lock()
        .expect("label interner poisoned")
        .names
        .clone()
}

/// A `static` probe site: a name plus its lazily interned label, so a
/// probe that fires a million times interns once.
pub struct Site {
    name: &'static str,
    label: OnceLock<Label>,
}

impl Site {
    /// A new (not yet interned) site; `const` so it can live in a
    /// `static` inside the [`span!`](crate::span)/[`event!`](crate::event)
    /// expansion.
    pub const fn new(name: &'static str) -> Site {
        Site {
            name,
            label: OnceLock::new(),
        }
    }

    /// The site's interned label.
    pub fn label(&self) -> Label {
        *self.label.get_or_init(|| label(self.name))
    }
}

// ---------------------------------------------------------------------
// Records and per-thread rings.
// ---------------------------------------------------------------------

/// What a [`Record`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A time interval (`start_ns..end_ns`).
    Span,
    /// An instant (`start_ns == end_ns`).
    Event,
}

/// One fixed-size trace record. `label` and `thread` index the interned
/// tables of the [`TraceDump`] the record is drained into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// Index into [`TraceDump::labels`].
    pub label: u32,
    /// Index into [`TraceDump::threads`].
    pub thread: u32,
    /// Span or event.
    pub kind: RecordKind,
    /// Start time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End time; equals `start_ns` for events.
    pub end_ns: u64,
    /// A probe-chosen integer payload (a count, a size, an id).
    pub arg: u64,
}

struct Ring {
    buf: Vec<Record>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            buf: Vec::new(),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, r: Record) {
        if self.buf.is_empty() {
            // Allocate lazily so threads that never record cost nothing.
            self.buf.reserve_exact(RING_CAPACITY);
        }
        if self.len < RING_CAPACITY {
            let at = (self.head + self.len) % RING_CAPACITY;
            if at == self.buf.len() {
                self.buf.push(r);
            } else {
                self.buf[at] = r;
            }
            self.len += 1;
        } else {
            // Full: overwrite the oldest record.
            self.buf[self.head] = r;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn drain_into(&mut self, out: &mut Vec<Record>) -> u64 {
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % RING_CAPACITY]);
        }
        self.head = 0;
        self.len = 0;
        std::mem::take(&mut self.dropped)
    }
}

struct ThreadSlot {
    id: u32,
    ring: Mutex<Ring>,
}

#[derive(Default)]
struct Registry {
    slots: Vec<Arc<ThreadSlot>>,
    names: Vec<String>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

thread_local! {
    static SLOT: RefCell<Option<Arc<ThreadSlot>>> = const { RefCell::new(None) };
}

fn my_slot() -> Arc<ThreadSlot> {
    SLOT.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(s) = slot.as_ref() {
            return Arc::clone(s);
        }
        let mut reg = registry().lock().expect("trace registry poisoned");
        let id = reg.slots.len() as u32;
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{id}"));
        let fresh = Arc::new(ThreadSlot {
            id,
            ring: Mutex::new(Ring::new()),
        });
        reg.slots.push(Arc::clone(&fresh));
        reg.names.push(name);
        *slot = Some(Arc::clone(&fresh));
        fresh
    })
}

fn push_record(mut r: Record) {
    let slot = my_slot();
    r.thread = slot.id;
    slot.ring.lock().expect("trace ring poisoned").push(r);
}

// ---------------------------------------------------------------------
// Probes.
// ---------------------------------------------------------------------

/// A span in flight; records on drop. Inert when tracing is off.
#[must_use = "a span records the interval until the guard drops"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    label: Label,
    start_ns: u64,
    arg: u64,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn inert() -> SpanGuard {
        SpanGuard(None)
    }

    /// Replaces the span's integer payload (e.g. with a count known
    /// only at the end of the measured region).
    pub fn set_arg(&mut self, arg: u64) {
        if let Some(active) = self.0.as_mut() {
            active.arg = arg;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            push_record(Record {
                label: active.label.0,
                thread: 0,
                kind: RecordKind::Span,
                start_ns: active.start_ns,
                end_ns: now_ns(),
                arg: active.arg,
            });
        }
    }
}

/// Opens a span at `site` (prefer the [`span!`](crate::span) macro).
#[cfg(feature = "probes")]
pub fn site_span(site: &'static Site, arg: u64) -> SpanGuard {
    if !config().is_enabled() {
        return SpanGuard::inert();
    }
    SpanGuard(Some(ActiveSpan {
        label: site.label(),
        start_ns: now_ns(),
        arg,
    }))
}

/// Records an event at `site` (prefer the [`event!`](crate::event) macro).
#[cfg(feature = "probes")]
pub fn site_event(site: &'static Site, arg: u64) {
    if !config().is_enabled() {
        return;
    }
    let t = now_ns();
    push_record(Record {
        label: site.label().0,
        thread: 0,
        kind: RecordKind::Event,
        start_ns: t,
        end_ns: t,
        arg,
    });
}

/// Probe stub: the `probes` feature is off, so sites compile to nothing.
#[cfg(not(feature = "probes"))]
#[inline(always)]
pub fn site_span(_site: &'static Site, _arg: u64) -> SpanGuard {
    SpanGuard::inert()
}

/// Probe stub: the `probes` feature is off, so sites compile to nothing.
#[cfg(not(feature = "probes"))]
#[inline(always)]
pub fn site_event(_site: &'static Site, _arg: u64) {}

// ---------------------------------------------------------------------
// Draining.
// ---------------------------------------------------------------------

/// A drained trace: every thread's records (sorted by start time) plus
/// the interned label and thread-name tables they index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// All records, sorted by `(start_ns, Reverse(end_ns))` so an
    /// enclosing span sorts before the children it contains.
    pub records: Vec<Record>,
    /// Interned label names; `Record::label` indexes this.
    pub labels: Vec<String>,
    /// Registered thread names; `Record::thread` indexes this.
    pub threads: Vec<String>,
    /// Records lost to ring overflow since the previous drain.
    pub dropped: u64,
    /// Per-thread overflow losses, parallel to `threads` (`dropped` is
    /// the sum). Exact: each ring counts its own overwrites.
    pub dropped_by_thread: Vec<u64>,
}

impl TraceDump {
    /// No records at all?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The label text of `r` (`"?"` if the index is out of range — a
    /// damaged dump stays printable).
    pub fn label_of(&self, r: &Record) -> &str {
        self.labels
            .get(r.label as usize)
            .map_or("?", String::as_str)
    }

    /// The thread name of `r` (`"?"` if the index is out of range).
    pub fn thread_of(&self, r: &Record) -> &str {
        self.threads
            .get(r.thread as usize)
            .map_or("?", String::as_str)
    }

    /// All span records carrying the label `name`.
    pub fn spans(&self, name: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.kind == RecordKind::Span && self.label_of(r) == name)
            .collect()
    }

    /// All event records carrying the label `name`.
    pub fn events(&self, name: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.kind == RecordKind::Event && self.label_of(r) == name)
            .collect()
    }
}

/// Drains every thread's ring into one [`TraceDump`] and resets the
/// rings (records stay where they were recorded until a drain).
pub fn drain() -> TraceDump {
    let (slots, threads) = {
        let reg = registry().lock().expect("trace registry poisoned");
        (reg.slots.clone(), reg.names.clone())
    };
    let mut records = Vec::new();
    let mut dropped = 0;
    let mut dropped_by_thread = vec![0u64; threads.len()];
    for slot in slots {
        let lost = slot
            .ring
            .lock()
            .expect("trace ring poisoned")
            .drain_into(&mut records);
        dropped += lost;
        dropped_by_thread[slot.id as usize] = lost;
    }
    if dropped > 0 {
        crate::metrics()
            .counter("dai_trace_dropped_records_total")
            .add(dropped);
    }
    records.sort_by_key(|r| (r.start_ns, std::cmp::Reverse(r.end_ns)));
    TraceDump {
        records,
        labels: label_names(),
        threads,
        dropped,
        dropped_by_thread,
    }
}

// ---------------------------------------------------------------------
// Remote control.
// ---------------------------------------------------------------------

/// A tracing control operation, carried by the RPC layer's
/// `WireRequest::Trace` (the `Persist` codec lives in `dai-persist`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Turn recording on.
    Enable,
    /// Turn recording off.
    Disable,
    /// Drain all rings and return the dump.
    Dump,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that flip the switch and
    /// drain serialize on this. Only the probed tests need it, so the
    /// no-probe build sees it as dead.
    #[cfg_attr(not(feature = "probes"), allow(dead_code))]
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    #[cfg(feature = "probes")]
    fn spans_and_events_record_only_while_enabled() {
        let _gate = exclusive();
        let _ = drain();
        config().set_enabled(false);
        crate::event!("test.recorder.off", 1);
        {
            let _s = crate::span!("test.recorder.off_span");
        }
        config().set_enabled(true);
        crate::event!("test.recorder.on", 7);
        {
            let _s = crate::span!("test.recorder.on_span", 5);
        }
        config().set_enabled(false);
        let dump = drain();
        assert!(dump.events("test.recorder.off").is_empty());
        assert!(dump.spans("test.recorder.off_span").is_empty());
        let events = dump.events("test.recorder.on");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].arg, 7);
        let spans = dump.spans("test.recorder.on_span");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].arg, 5);
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }

    #[test]
    #[cfg(feature = "probes")]
    fn records_carry_thread_names_and_spans_enclose_children() {
        let _gate = exclusive();
        let _ = drain();
        config().set_enabled(true);
        let handle = std::thread::Builder::new()
            .name("test-recorder-child".into())
            .spawn(|| {
                let _outer = crate::span!("test.recorder.outer");
                std::thread::sleep(std::time::Duration::from_millis(1));
                {
                    let _inner = crate::span!("test.recorder.inner");
                }
            })
            .unwrap();
        handle.join().unwrap();
        config().set_enabled(false);
        let dump = drain();
        let outer = dump.spans("test.recorder.outer");
        let inner = dump.spans("test.recorder.inner");
        assert_eq!((outer.len(), inner.len()), (1, 1));
        assert_eq!(dump.thread_of(outer[0]), "test-recorder-child");
        assert!(outer[0].start_ns <= inner[0].start_ns);
        assert!(inner[0].end_ns <= outer[0].end_ns);
        // The sort puts the enclosing span first.
        let outer_at = dump.records.iter().position(|r| r == outer[0]).unwrap();
        let inner_at = dump.records.iter().position(|r| r == inner[0]).unwrap();
        assert!(outer_at < inner_at);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut ring = Ring::new();
        let rec = |i: u64| Record {
            label: 0,
            thread: 0,
            kind: RecordKind::Event,
            start_ns: i,
            end_ns: i,
            arg: i,
        };
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(rec(i));
        }
        let mut out = Vec::new();
        let dropped = ring.drain_into(&mut out);
        assert_eq!(dropped, 10);
        assert_eq!(out.len(), RING_CAPACITY);
        // The oldest ten records were overwritten.
        assert_eq!(out[0].arg, 10);
        assert_eq!(out.last().unwrap().arg, RING_CAPACITY as u64 + 9);
        // A second drain finds an empty, reusable ring.
        let mut again = Vec::new();
        assert_eq!(ring.drain_into(&mut again), 0);
        assert!(again.is_empty());
        ring.push(rec(1));
        assert_eq!(ring.len, 1);
    }

    #[test]
    #[cfg(feature = "probes")]
    fn ring_overflow_feeds_the_dropped_counter_and_per_thread_table() {
        let _gate = exclusive();
        let _ = drain();
        let before = crate::metrics()
            .counter("dai_trace_dropped_records_total")
            .get();
        config().set_enabled(true);
        let overflow = 25u64;
        std::thread::Builder::new()
            .name("test-recorder-overflow".into())
            .spawn(move || {
                for i in 0..(RING_CAPACITY as u64 + overflow) {
                    crate::event!("test.recorder.overflow", i);
                }
            })
            .unwrap()
            .join()
            .unwrap();
        config().set_enabled(false);
        let dump = drain();
        assert_eq!(dump.dropped, overflow);
        assert_eq!(dump.dropped_by_thread.len(), dump.threads.len());
        let at = dump
            .threads
            .iter()
            .position(|t| t == "test-recorder-overflow")
            .expect("overflowing thread registered");
        assert_eq!(dump.dropped_by_thread[at], overflow);
        let after = crate::metrics()
            .counter("dai_trace_dropped_records_total")
            .get();
        assert_eq!(after - before, overflow, "drain did not count the drops");
    }

    #[test]
    fn labels_intern_stably() {
        let a = label("test.recorder.stable");
        let b = label("test.recorder.stable");
        assert_eq!(a, b);
    }

    #[test]
    #[cfg(feature = "probes")]
    fn set_arg_overrides_the_span_payload() {
        let _gate = exclusive();
        let _ = drain();
        config().set_enabled(true);
        {
            let mut s = crate::span!("test.recorder.set_arg", 1);
            s.set_arg(99);
        }
        config().set_enabled(false);
        let dump = drain();
        assert_eq!(dump.spans("test.recorder.set_arg")[0].arg, 99);
    }
}
