//! Observability for the demanded-analysis stack, hand-rolled on `std`
//! alone (the workspace is offline; this crate sits *below* `dai-core`
//! so every layer can probe itself).
//!
//! Three pieces:
//!
//! * **[`recorder`]** — a lock-light span/event recorder. Each thread
//!   writes fixed-size [`Record`]s into its own ring buffer (guarded by
//!   a mutex only the owner touches between drains, so pushes are
//!   uncontended); labels and thread names are interned once; time is
//!   nanoseconds from one process-wide monotonic epoch. A collector
//!   [`drain`]s every ring into a [`TraceDump`]. Probes are gated twice:
//!   an [`TraceConfig`] runtime switch (one relaxed atomic load when
//!   off) and the `probes` cargo feature (probe sites compile to inert
//!   stubs when disabled, for a zero-cost baseline build).
//! * **[`metrics`]** — a registry of named counters, gauges, and
//!   fixed-bucket latency histograms with Prometheus-style text
//!   exposition ([`Metrics::render_prometheus`]).
//! * **[`chrome`]** — a Chrome `trace_event` JSON exporter (open dumps
//!   in `chrome://tracing` or Perfetto) plus a re-parsing validator, so
//!   an exported trace can be checked without leaving the test suite.
//!
//! Binary persistence for [`TraceDump`] lives in `dai-persist` (which
//! depends on this crate), sharing the frame layout snapshots and RPC
//! messages use.
//!
//! # Probing
//!
//! ```
//! let _guard = dai_trace::span!("engine.cone_walk", 17);
//! dai_trace::event!("engine.unroll", 3);
//! ```
//!
//! Each `span!`/`event!` site holds a `static` [`Site`] whose label is
//! interned on first hit; when tracing is disabled the site costs one
//! atomic load (or nothing at all without the `probes` feature).

pub mod chrome;
pub mod metrics;
pub mod recorder;
pub mod render;

pub use chrome::{chrome_trace_json, validate_chrome_trace, ChromeSummary};
pub use metrics::{metrics, Counter, Gauge, Histogram, Metrics, LATENCY_BUCKETS_NS};
pub use recorder::{
    config, drain, enabled, label, now_ns, site_event, site_span, Label, Record, RecordKind, Site,
    SpanGuard, TraceConfig, TraceDump, TraceOp, RING_CAPACITY,
};
pub use render::render_table;

/// Opens a span at this site; the returned guard records on drop.
///
/// `span!("name")` or `span!("name", arg)` — `arg` is any integer,
/// carried verbatim in the record (a count, a size, an id).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, 0u64)
    };
    ($name:expr, $arg:expr) => {{
        static SITE: $crate::Site = $crate::Site::new($name);
        $crate::site_span(&SITE, $arg as u64)
    }};
}

/// Records an instantaneous event at this site.
///
/// `event!("name")` or `event!("name", arg)`.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event!($name, 0u64)
    };
    ($name:expr, $arg:expr) => {{
        static SITE: $crate::Site = $crate::Site::new($name);
        $crate::site_event(&SITE, $arg as u64)
    }};
}
