//! Loop-head iteration strategies (paper §2.3, footnote 4).
//!
//! The paper's presentation fixes one strategy — "applying ∇ every
//! iteration until a fixed-point is reached" and checking convergence with
//! `=` — and notes that "the same general idea applies for other widening
//! strategies or checking convergence with ⊑ instead of =". This module
//! makes that remark concrete: a [`FixStrategy`] chooses
//!
//! * **which operator each widen edge applies** — classical *delayed
//!   widening* joins for the first `widen_delay` abstract iterations of
//!   every loop instance before switching to `∇`, trading extra iterations
//!   for precision (a widen edge that joins cannot overshoot); and
//! * **how `fix` edges detect convergence** — [`Convergence::Equal`] is the
//!   paper's default; [`Convergence::Leq`] declares convergence as soon as
//!   the newer iterate is `⊑` the older one, which matters for domains
//!   whose operators stabilize semantically before their *representations*
//!   stabilize syntactically (e.g. widening that tags states with
//!   bookkeeping that `⊑` ignores).
//!
//! The strategy is a property of a [`crate::graph::Daig`]: demanded query
//! evaluation ([`crate::query`]), the batch oracle ([`crate::batch`]), and
//! the Definition 4.3 consistency checker ([`crate::consistency`]) all read
//! it from there, so a DAIG and its meta-theory checks can never disagree
//! about which abstract interpretation they encode.
//!
//! # Termination
//!
//! Both knobs preserve Theorem 6.3 (query termination): `widen_delay` is
//! finite, so every unrolling sequence eventually applies `∇`, whose
//! convergence property bounds the remaining iterations; and
//! `Convergence::Leq` only converges *earlier* than `Equal` (iterates
//! produced by upper-bound operators are increasing, so `newer ⊑ older`
//! whenever `newer = older`).

use dai_domains::AbstractDomain;
use std::fmt;

/// How a `fix` edge decides that its two greatest iterates have converged
/// (paper footnote 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Convergence {
    /// The paper's default: the iterates are equal (`=` on canonical
    /// forms).
    #[default]
    Equal,
    /// Post-fixpoint detection: the newer iterate is `⊑` the older one.
    /// Converges no later than [`Convergence::Equal`], and strictly earlier
    /// for domains whose representations keep changing after their meaning
    /// stabilizes.
    Leq,
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Convergence::Equal => write!(f, "="),
            Convergence::Leq => write!(f, "⊑"),
        }
    }
}

/// A loop-head iteration strategy: the operator schedule for widen edges
/// plus the convergence test for `fix` edges.
///
/// The default ([`FixStrategy::PAPER`]) reproduces the paper exactly:
/// widen on every iteration, converge on equality.
///
/// ```
/// use dai_core::strategy::{Convergence, FixStrategy};
///
/// let paper = FixStrategy::default();
/// assert_eq!(paper, FixStrategy::PAPER);
/// let precise = FixStrategy::delayed(8).with_convergence(Convergence::Leq);
/// assert_eq!(precise.widen_delay, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FixStrategy {
    /// Widen edges producing iterates `1 ..= widen_delay` apply `⊔`
    /// instead of `∇` (classical delayed widening). `0` widens always.
    pub widen_delay: u32,
    /// The convergence test applied by `fix` edges.
    pub convergence: Convergence,
}

impl FixStrategy {
    /// The paper's strategy: `∇` every iteration, convergence by `=`.
    pub const PAPER: FixStrategy = FixStrategy {
        widen_delay: 0,
        convergence: Convergence::Equal,
    };

    /// Delays widening for the first `k` iterations of every loop.
    pub fn delayed(k: u32) -> FixStrategy {
        FixStrategy {
            widen_delay: k,
            ..FixStrategy::PAPER
        }
    }

    /// Replaces the convergence test.
    #[must_use]
    pub fn with_convergence(self, convergence: Convergence) -> FixStrategy {
        FixStrategy {
            convergence,
            ..self
        }
    }

    /// Applies the widen edge producing iterate `k` (`k ≥ 1`):
    /// `⊔` while delayed, `∇` afterwards.
    pub fn combine<D: AbstractDomain>(&self, k: u32, prev: &D, next: &D) -> D {
        if k <= self.widen_delay {
            prev.join(next)
        } else {
            prev.widen(next)
        }
    }

    /// The memo-key symbol for the operator [`FixStrategy::combine`]
    /// actually applies at iterate `k` — a delayed widen *is* a join and
    /// shares join's memo entries.
    pub fn combine_symbol(&self, k: u32) -> &'static str {
        if k <= self.widen_delay {
            crate::graph::Func::Join.memo_symbol()
        } else {
            crate::graph::Func::Widen.memo_symbol()
        }
    }

    /// The `fix` convergence test over the two greatest iterates
    /// (`older` = `ℓ⟨k−1⟩`, `newer` = `ℓ⟨k⟩`).
    pub fn converged<D: AbstractDomain>(&self, older: &D, newer: &D) -> bool {
        match self.convergence {
            Convergence::Equal => older == newer,
            Convergence::Leq => newer.leq(older),
        }
    }
}

impl fmt::Display for FixStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delay={} conv={}", self.widen_delay, self.convergence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_domains::interval::Interval;
    use dai_domains::IntervalDomain;

    #[test]
    fn paper_strategy_is_default() {
        assert_eq!(FixStrategy::default(), FixStrategy::PAPER);
        assert_eq!(FixStrategy::PAPER.widen_delay, 0);
        assert_eq!(FixStrategy::PAPER.convergence, Convergence::Equal);
    }

    #[test]
    fn combine_joins_during_delay_then_widens() {
        let s = FixStrategy::delayed(2);
        let a = IntervalDomain::from_bindings([(
            "x".into(),
            dai_domains::interval::AbsVal::Num(Interval::of(0, 0)),
        )]);
        let b = IntervalDomain::from_bindings([(
            "x".into(),
            dai_domains::interval::AbsVal::Num(Interval::of(0, 1)),
        )]);
        // k = 1, 2: join keeps the finite bound.
        assert_eq!(s.combine(1, &a, &b).interval_of("x"), Interval::of(0, 1));
        assert_eq!(s.combine(2, &a, &b).interval_of("x"), Interval::of(0, 1));
        // k = 3: widening blows the unstable upper bound to +∞.
        let w = s.combine(3, &a, &b).interval_of("x");
        assert!(w.contains(1_000_000), "expected widened interval, got {w}");
    }

    #[test]
    fn combine_symbol_matches_operator() {
        let s = FixStrategy::delayed(1);
        assert_eq!(s.combine_symbol(1), "join");
        assert_eq!(s.combine_symbol(2), "widen");
        assert_eq!(FixStrategy::PAPER.combine_symbol(1), "widen");
    }

    #[test]
    fn equal_convergence_requires_equality() {
        let s = FixStrategy::PAPER;
        let a = IntervalDomain::top();
        assert!(s.converged(&a, &a.clone()));
        let b = IntervalDomain::bottom();
        assert!(!s.converged(&a, &b) || a == b);
    }

    #[test]
    fn leq_convergence_accepts_smaller_newer_iterate() {
        let s = FixStrategy::PAPER.with_convergence(Convergence::Leq);
        let top = IntervalDomain::top();
        let bot = IntervalDomain::bottom();
        // newer ⊑ older converges even though they differ.
        assert!(s.converged(&top, &bot));
        assert!(!s.converged(&bot, &top));
    }

    #[test]
    fn display_forms() {
        assert_eq!(FixStrategy::PAPER.to_string(), "delay=0 conv==");
        assert_eq!(
            FixStrategy::delayed(3)
                .with_convergence(Convergence::Leq)
                .to_string(),
            "delay=3 conv=⊑"
        );
    }
}
