//! Demand-driven query evaluation (paper Fig. 8) with demanded unrolling
//! of fixed points (§5.2).
//!
//! The judgment `D, M ⊢ n ⇒ v ; D', M'` is realized by an explicit-stack
//! evaluator (so deep straight-line programs from the §7.3 generator cannot
//! overflow the call stack). Each step applies exactly one of the paper's
//! rules:
//!
//! * `Q-Reuse` — the cell already holds a value;
//! * `Q-Match` — all inputs evaluated and `f·(v₁⋯v_k)` is in the memo
//!   table: copy the memoized result into the cell;
//! * `Q-Miss` — compute `f(v₁, …, v_k)`, store it in the cell *and* the
//!   memo table;
//! * `Q-Loop-Converge` — a `fix` edge whose two iterate inputs are equal:
//!   the fixed point is reached and written;
//! * `Q-Loop-Unroll` — the iterates differ: unroll the loop one abstract
//!   iteration ([`crate::build::unroll_loop`]) and re-demand.
//!
//! Call statements are resolved through a [`CallResolver`] so the
//! interprocedural layer (paper §7.1) can evaluate callee DAIGs on demand;
//! call results are deliberately **not** memoized in `M`, because their
//! value depends on the callee's current program text, not only on the
//! argument values.

use crate::build::unroll_loop;
use crate::graph::{Daig, DaigError, Func, Value};
use crate::name::Name;
use dai_domains::AbstractDomain;
use dai_lang::cfg::Cfg;
use dai_lang::{EdgeId, Stmt};
use dai_memo::{KeyBuilder, MemoTable};

/// Resolves the abstract post-state of a call statement from the caller's
/// pre-state. The interprocedural layer implements this by demanding the
/// callee's exit; the intraprocedural default havocs via
/// [`AbstractDomain::transfer`]. The shared memo table and statistics are
/// threaded through so nested cross-DAIG queries reuse them.
pub trait CallResolver<D: AbstractDomain> {
    /// Computes the post-state of `stmt` (a call) on edge `edge` from
    /// `pre`.
    ///
    /// # Errors
    ///
    /// Returns a [`DaigError`] if demanding the callee fails.
    fn resolve(
        &mut self,
        pre: &D,
        stmt: &Stmt,
        edge: EdgeId,
        memo: &mut MemoTable<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError>;
}

/// The intraprocedural resolver: treats calls with the domain's own
/// (conservative) transfer function.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntraResolver;

impl<D: AbstractDomain> CallResolver<D> for IntraResolver {
    fn resolve(
        &mut self,
        pre: &D,
        stmt: &Stmt,
        _edge: EdgeId,
        _memo: &mut MemoTable<Value<D>>,
        _stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        Ok(pre.transfer(stmt))
    }
}

/// Counters describing the work a query performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Cells whose values were computed by applying an analysis function
    /// (`Q-Miss`).
    pub computed: u64,
    /// Cells filled from the memo table (`Q-Match`).
    pub memo_matched: u64,
    /// Cells that already held values when first demanded (`Q-Reuse`),
    /// counted per distinct demanded cell.
    pub reused: u64,
    /// Demanded loop unrollings (`Q-Loop-Unroll`).
    pub unrolls: u64,
    /// Fixed points written (`Q-Loop-Converge`).
    pub fix_converged: u64,
}

impl QueryStats {
    /// Merges another stats record into this one.
    pub fn absorb(&mut self, other: QueryStats) {
        self.computed += other.computed;
        self.memo_matched += other.memo_matched;
        self.reused += other.reused;
        self.unrolls += other.unrolls;
        self.fix_converged += other.fix_converged;
    }
}

/// Upper bound on unrollings of a single loop instance, as a guard against
/// domains with broken widening; hitting it is reported as an invariant
/// violation rather than diverging.
const MAX_UNROLLS_PER_QUERY: u64 = 1_000_000;

/// The iterate index `k ≥ 1` a widen edge produces, read off its
/// destination name `ℓ⟨k⟩` (the strategy uses it to schedule `⊔` vs `∇`).
pub(crate) fn widen_dest_iterate(dest: &Name) -> Result<u32, DaigError> {
    match dest {
        Name::State { loc, ctx } => match ctx.last() {
            Some((head, k)) if head == *loc && k >= 1 => Ok(k),
            _ => Err(DaigError::Invariant(format!(
                "widen destination {dest} is not an iterate of its own head"
            ))),
        },
        other => Err(DaigError::Invariant(format!(
            "widen destination {other} is not a state cell"
        ))),
    }
}

/// Evaluates the cell named `n`, demanding its transitive dependencies and
/// unrolling loops as needed.
///
/// # Errors
///
/// * [`DaigError::NoSuchCell`] if `n` is not in the DAIG's namespace;
/// * [`DaigError::Invariant`] on internal inconsistency (a bug) or
///   divergence-guard trip.
pub fn query<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut MemoTable<Value<D>>,
    n: &Name,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
) -> Result<Value<D>, DaigError> {
    if !daig.contains(n) {
        return Err(DaigError::NoSuchCell(n.to_string()));
    }
    if daig.value(n).is_some() {
        stats.reused += 1;
        return Ok(daig.value(n).expect("just checked").clone());
    }

    let mut stack: Vec<Name> = vec![n.clone()];
    let mut unroll_guard: u64 = 0;
    while let Some(top) = stack.last().cloned() {
        if daig.value(&top).is_some() {
            stack.pop();
            continue;
        }
        let comp = daig
            .comp(&top)
            .ok_or_else(|| DaigError::Invariant(format!("empty cell {top} has no computation")))?
            .clone();
        // Demand unevaluated inputs first. A cell may appear several times
        // on the stack (it is a DAG, not a tree); the topmost occurrence
        // evaluates it and deeper duplicates pop as already-filled. A true
        // dependency cycle would instead grow the stack beyond any bound
        // proportional to the graph, which the depth guard below converts
        // into an invariant error.
        let missing: Vec<Name> = comp
            .srcs
            .iter()
            .filter(|s| daig.value(s).is_none())
            .cloned()
            .collect();
        if !missing.is_empty() {
            for m in missing {
                if !daig.contains(&m) {
                    return Err(DaigError::Invariant(format!(
                        "computation for {top} reads missing cell {m}"
                    )));
                }
                stack.push(m);
            }
            if stack.len() > 4 * daig.cell_count() + 1024 {
                return Err(DaigError::Invariant(format!(
                    "demand stack exploded at {top}: dependency cycle (acyclicity violated)"
                )));
            }
            continue;
        }
        // All inputs ready: apply the matching rule.
        match comp.func {
            Func::Fix => {
                let v0 = daig.value(&comp.srcs[0]).expect("ready").clone();
                let v1 = daig.value(&comp.srcs[1]).expect("ready").clone();
                let converged = match (v0.as_state(), v1.as_state()) {
                    (Some(older), Some(newer)) => daig.strategy().converged(older, newer),
                    _ => {
                        return Err(DaigError::Invariant(format!(
                            "fix at {top} reads non-state iterates"
                        )));
                    }
                };
                if converged {
                    // Q-Loop-Converge: the older iterate is the (post-)
                    // fixed point; under `=` convergence the two coincide.
                    daig.write(&top, v0);
                    stats.fix_converged += 1;
                    stack.pop();
                } else {
                    // Q-Loop-Unroll.
                    unroll_guard += 1;
                    if unroll_guard > MAX_UNROLLS_PER_QUERY {
                        return Err(DaigError::Invariant(format!(
                            "loop at {top} exceeded {MAX_UNROLLS_PER_QUERY} unrollings: \
                             widening does not converge"
                        )));
                    }
                    let (head, sigma) = match &top {
                        Name::State { loc, ctx } => (*loc, ctx.clone()),
                        other => {
                            return Err(DaigError::Invariant(format!(
                                "fix destination {other} is not a state cell"
                            )));
                        }
                    };
                    let k = match comp.srcs[1].ctx().and_then(|c| c.last()) {
                        Some((h, k)) if h == head => k,
                        _ => {
                            return Err(DaigError::Invariant(format!(
                                "fix source {} is not an iterate of {head}",
                                comp.srcs[1]
                            )));
                        }
                    };
                    unroll_loop(daig, cfg, head, &sigma, k);
                    stats.unrolls += 1;
                    // Leave `top` on the stack: the fix edge now demands
                    // the next iterate.
                }
            }
            Func::Transfer => {
                let stmt = daig
                    .value(&comp.srcs[0])
                    .and_then(|v| v.as_stmt())
                    .ok_or_else(|| {
                        DaigError::Invariant(format!("transfer for {top} has no statement"))
                    })?
                    .clone();
                let pre = daig
                    .value(&comp.srcs[1])
                    .and_then(|v| v.as_state())
                    .ok_or_else(|| {
                        DaigError::Invariant(format!("transfer for {top} has no pre-state"))
                    })?
                    .clone();
                let value = if let Stmt::Call { .. } = &stmt {
                    // Calls: resolve through the interprocedural layer and
                    // do not memoize (the result depends on the callee's
                    // current body).
                    let edge = match &comp.srcs[0] {
                        Name::Stmt(e) => *e,
                        other => {
                            return Err(DaigError::Invariant(format!(
                                "transfer stmt source {other} is not a statement cell"
                            )));
                        }
                    };
                    stats.computed += 1;
                    Value::State(resolver.resolve(&pre, &stmt, edge, memo, stats)?)
                } else {
                    let key = KeyBuilder::new(Func::Transfer.memo_symbol())
                        .push(&stmt)
                        .push(&pre)
                        .finish();
                    match memo.get(key) {
                        Some(v) => {
                            stats.memo_matched += 1;
                            v.clone()
                        }
                        None => {
                            let v = Value::State(pre.transfer(&stmt));
                            memo.insert(key, v.clone());
                            stats.computed += 1;
                            v
                        }
                    }
                };
                daig.write(&top, value);
                stack.pop();
            }
            Func::Join | Func::Widen => {
                let states: Vec<D> = comp
                    .srcs
                    .iter()
                    .map(|s| {
                        daig.value(s)
                            .and_then(|v| v.as_state())
                            .cloned()
                            .ok_or_else(|| {
                                DaigError::Invariant(format!("{top} input {s} is not a state"))
                            })
                    })
                    .collect::<Result<_, _>>()?;
                // The operator a widen edge applies depends on the
                // strategy and on which iterate it produces (delayed
                // widening joins early iterations); the memo key uses the
                // symbol of the operator actually applied, so a delayed
                // widen shares entries with genuine joins.
                let iterate = if comp.func == Func::Widen {
                    Some(widen_dest_iterate(&top)?)
                } else {
                    None
                };
                let symbol = match iterate {
                    Some(k) => daig.strategy().combine_symbol(k),
                    None => Func::Join.memo_symbol(),
                };
                let mut kb = KeyBuilder::new(symbol);
                for s in &states {
                    kb = kb.push(s);
                }
                let key = kb.finish();
                let value = match memo.get(key) {
                    Some(v) => {
                        stats.memo_matched += 1;
                        v.clone()
                    }
                    None => {
                        let out = match iterate {
                            None => {
                                let mut it = states.iter();
                                let first = it.next().expect("join arity >= 2").clone();
                                it.fold(first, |acc, s| acc.join(s))
                            }
                            Some(k) => daig.strategy().combine(k, &states[0], &states[1]),
                        };
                        let v = Value::State(out);
                        memo.insert(key, v.clone());
                        stats.computed += 1;
                        v
                    }
                };
                daig.write(&top, value);
                stack.pop();
            }
        }
    }
    Ok(daig.value(n).expect("query completed").clone())
}

/// Evaluates every cell in the DAIG (used by the exhaustive analysis
/// configurations).
///
/// # Errors
///
/// Propagates the first [`DaigError`] encountered.
pub fn evaluate_all<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut MemoTable<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
) -> Result<(), DaigError> {
    // Demanding all fix cells (and the exit) forces the whole graph; the
    // set of names grows during unrolling, so iterate to quiescence.
    loop {
        let pending: Vec<Name> = daig
            .names()
            .filter(|n| daig.value(n).is_none())
            .cloned()
            .collect();
        if pending.is_empty() {
            return Ok(());
        }
        for n in pending {
            if daig.contains(&n) && daig.value(&n).is_none() {
                query(daig, cfg, memo, &n, resolver, stats)?;
            }
        }
    }
}
