//! Demand-driven query evaluation (paper Fig. 8) with demanded unrolling
//! of fixed points (§5.2).
//!
//! The judgment `D, M ⊢ n ⇒ v ; D', M'` is realized by an explicit-stack
//! evaluator (so deep straight-line programs from the §7.3 generator cannot
//! overflow the call stack). Each step applies exactly one of the paper's
//! rules:
//!
//! * `Q-Reuse` — the cell already holds a value;
//! * `Q-Match` — all inputs evaluated and `f·(v₁⋯v_k)` is in the memo
//!   table: copy the memoized result into the cell;
//! * `Q-Miss` — compute `f(v₁, …, v_k)`, store it in the cell *and* the
//!   memo table;
//! * `Q-Loop-Converge` — a `fix` edge whose two iterate inputs are equal:
//!   the fixed point is reached and written;
//! * `Q-Loop-Unroll` — the iterates differ: unroll the loop one abstract
//!   iteration ([`crate::build::unroll_loop`]) and re-demand.
//!
//! Internally the evaluator walks interned [`CellId`]s (see
//! [`crate::intern`]); names only appear at the API boundary and in error
//! messages. Memo keys are built from the per-cell content digests the
//! graph caches at write time, so no abstract state is hashed more than
//! once after it is produced.
//!
//! Call statements are resolved through a [`CallResolver`] so the
//! interprocedural layer (paper §7.1) can evaluate callee DAIGs on demand;
//! call results are deliberately **not** memoized in `M`, because their
//! value depends on the callee's current program text, not only on the
//! argument values.

use crate::build::unroll_loop;
use crate::compile::TransferTable;
use crate::graph::{Daig, DaigError, Func, Value};
use crate::intern::CellId;
use crate::name::Name;
use crate::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_lang::cfg::Cfg;
use dai_lang::{EdgeId, Stmt};
use dai_memo::{KeyBuilder, MemoStore};

/// Resolves the abstract post-state of a call statement from the caller's
/// pre-state. The interprocedural layer implements this by demanding the
/// callee's exit; the intraprocedural default havocs via
/// [`AbstractDomain::transfer`]. The shared memo store and statistics are
/// threaded through so nested cross-DAIG queries reuse them.
pub trait CallResolver<D: AbstractDomain> {
    /// Computes the post-state of `stmt` (a call) on edge `edge` from
    /// `pre`.
    ///
    /// # Errors
    ///
    /// Returns a [`DaigError`] if demanding the callee fails.
    fn resolve(
        &mut self,
        pre: &D,
        stmt: &Stmt,
        edge: EdgeId,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError>;
}

/// The intraprocedural resolver: treats calls with the domain's own
/// (conservative) transfer function.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntraResolver;

impl<D: AbstractDomain> CallResolver<D> for IntraResolver {
    fn resolve(
        &mut self,
        pre: &D,
        stmt: &Stmt,
        _edge: EdgeId,
        _memo: &mut dyn MemoStore<Value<D>>,
        _stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        Ok(pre.transfer(stmt))
    }
}

/// Counters describing the work a query performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Cells whose values were computed by applying an analysis function
    /// (`Q-Miss`).
    pub computed: u64,
    /// Cells filled from the memo table (`Q-Match`).
    pub memo_matched: u64,
    /// Cells that already held values when first demanded (`Q-Reuse`),
    /// counted per distinct demanded cell.
    pub reused: u64,
    /// Demanded loop unrollings (`Q-Loop-Unroll`).
    pub unrolls: u64,
    /// Fixed points written (`Q-Loop-Converge`).
    pub fix_converged: u64,
    /// Full demanded-cone traversals performed by a cone-maintaining
    /// scheduler (`dai_engine::scheduler::evaluate_targets`). With
    /// incremental cone maintenance this stays at one per evaluation call
    /// no matter how many times loops unroll; the sequential stack
    /// evaluator never counts it.
    pub cone_walks: u64,
    /// Cells loaded into a cone-maintaining scheduler's missing-input
    /// table (initial traversal plus unroll splices). For a multi-target
    /// evaluation this is the size of the *union* cone, which is what
    /// makes query coalescing measurable: a batch's union cone is at most
    /// as large as the sum of its members' solo cones. The sequential
    /// stack evaluator never counts it.
    pub cone_cells: u64,
    /// `Q-Miss` transfer computations evaluated through a staged
    /// [`TransferTable`] closure (see [`crate::compile`]).
    pub transfers_compiled: u64,
    /// `Q-Miss` transfer computations evaluated by the
    /// [`AbstractDomain::transfer`] interpreter — either because no table
    /// was supplied (interp mode), the statement has no compiled form
    /// (calls, unstaged domains), or a stale entry failed the digest
    /// guard.
    pub transfers_interp: u64,
}

impl QueryStats {
    /// Merges another stats record into this one.
    pub fn absorb(&mut self, other: QueryStats) {
        self.computed += other.computed;
        self.memo_matched += other.memo_matched;
        self.reused += other.reused;
        self.unrolls += other.unrolls;
        self.fix_converged += other.fix_converged;
        self.cone_walks += other.cone_walks;
        self.cone_cells += other.cone_cells;
        self.transfers_compiled += other.transfers_compiled;
        self.transfers_interp += other.transfers_interp;
    }

    /// The work between an `earlier` cumulative reading and this one
    /// (field-wise subtraction). Lives next to [`QueryStats::absorb`] so a
    /// new counter cannot be added to one without the other: the
    /// exhaustive destructuring below fails to compile if a field is
    /// missed.
    pub fn delta(&self, earlier: &QueryStats) -> QueryStats {
        let QueryStats {
            computed,
            memo_matched,
            reused,
            unrolls,
            fix_converged,
            cone_walks,
            cone_cells,
            transfers_compiled,
            transfers_interp,
        } = *self;
        QueryStats {
            computed: computed - earlier.computed,
            memo_matched: memo_matched - earlier.memo_matched,
            reused: reused - earlier.reused,
            unrolls: unrolls - earlier.unrolls,
            fix_converged: fix_converged - earlier.fix_converged,
            cone_walks: cone_walks - earlier.cone_walks,
            cone_cells: cone_cells - earlier.cone_cells,
            transfers_compiled: transfers_compiled - earlier.transfers_compiled,
            transfers_interp: transfers_interp - earlier.transfers_interp,
        }
    }
}

/// Upper bound on unrollings of a single loop instance, as a guard against
/// domains with broken widening; hitting it is reported as an invariant
/// violation rather than diverging.
const MAX_UNROLLS_PER_QUERY: u64 = 1_000_000;

/// The iterate index `k ≥ 1` a widen edge produces, read off its
/// destination name `ℓ⟨k⟩` (the strategy uses it to schedule `⊔` vs `∇`).
pub(crate) fn widen_dest_iterate(dest: &Name) -> Result<u32, DaigError> {
    match dest {
        Name::State { loc, ctx } => match ctx.last() {
            Some((head, k)) if head == *loc && k >= 1 => Ok(k),
            _ => Err(DaigError::Invariant(format!(
                "widen destination {dest} is not an iterate of its own head"
            ))),
        },
        other => Err(DaigError::Invariant(format!(
            "widen destination {other} is not a state cell"
        ))),
    }
}

/// A ready computation `n ← f(v₁, …, v_k)` with its input values cloned
/// out of the DAIG, so applying it borrows neither the graph nor the
/// analysis — which is what lets `dai-engine` apply many of these on
/// worker threads while the scheduler thread keeps ownership of the DAIG.
/// Input digests are carried along, so workers build memo keys without
/// hashing the values again.
///
/// `Fix` edges are never `ReadyComp`s: they are not functions but demands
/// for convergence, and resolving them mutates the graph (unrolling);
/// see [`fix_step`].
#[derive(Debug, Clone)]
pub struct ReadyComp<D: AbstractDomain> {
    /// The destination cell.
    pub dest: Name,
    /// The destination's interned id in the owning DAIG.
    pub dest_id: CellId,
    /// The analysis function (`Transfer`, `Join`, or `Widen`).
    pub func: Func,
    /// Input values in argument order.
    pub inputs: Vec<Value<D>>,
    /// Cached content digests of `inputs`, in the same order.
    pub digests: Vec<u128>,
    /// For transfers: the edge whose statement cell feeds input 0 (needed
    /// to resolve calls).
    pub stmt_edge: Option<EdgeId>,
    /// The iteration strategy of the owning DAIG (drives `⊔` vs `∇` on
    /// widen edges).
    pub strategy: FixStrategy,
}

/// Clones the ready computation for `dest` out of `daig`.
///
/// # Errors
///
/// [`DaigError::Invariant`] if `dest` has no computation, the computation
/// is a `fix` edge, or any input is still empty — callers are expected to
/// pick `dest` from [`Daig::ready_frontier`].
pub fn collect_ready<D: AbstractDomain>(
    daig: &Daig<D>,
    dest: &Name,
) -> Result<ReadyComp<D>, DaigError> {
    let id = daig
        .id_of(dest)
        .ok_or_else(|| DaigError::Invariant(format!("cell {dest} has no computation")))?;
    collect_ready_id(daig, id)
}

/// Id-level [`collect_ready`].
///
/// # Errors
///
/// As [`collect_ready`].
pub fn collect_ready_id<D: AbstractDomain>(
    daig: &Daig<D>,
    dest: CellId,
) -> Result<ReadyComp<D>, DaigError> {
    let comp = daig.comp_slot(dest).ok_or_else(|| {
        DaigError::Invariant(format!("cell {} has no computation", daig.name_of(dest)))
    })?;
    if comp.func == Func::Fix {
        return Err(DaigError::Invariant(format!(
            "fix edge at {} is not a ready computation (use fix_step)",
            daig.name_of(dest)
        )));
    }
    let mut inputs = Vec::with_capacity(comp.srcs.len());
    let mut digests = Vec::with_capacity(comp.srcs.len());
    for &s in &comp.srcs {
        let v = daig.value_id(s).ok_or_else(|| {
            DaigError::Invariant(format!(
                "{} input {} is empty",
                daig.name_of(dest),
                daig.name_of(s)
            ))
        })?;
        inputs.push(v.clone());
        digests.push(daig.digest_id(s).expect("filled cells have digests"));
    }
    let stmt_edge = stmt_edge_of(daig, comp.func, &comp.srcs)?;
    Ok(ReadyComp {
        dest: daig.name_of(dest).clone(),
        dest_id: dest,
        func: comp.func,
        inputs,
        digests,
        stmt_edge,
        strategy: daig.strategy(),
    })
}

/// For transfers: the CFG edge whose statement cell is argument 0.
fn stmt_edge_of<D: AbstractDomain>(
    daig: &Daig<D>,
    func: Func,
    srcs: &[CellId],
) -> Result<Option<EdgeId>, DaigError> {
    if func != Func::Transfer {
        return Ok(None);
    }
    match srcs.first().map(|&s| daig.name_of(s)) {
        Some(Name::Stmt(e)) => Ok(Some(*e)),
        other => Err(DaigError::Invariant(format!(
            "transfer stmt source {other:?} is not a statement cell"
        ))),
    }
}

/// Applies a ready computation: exactly the `Q-Match`/`Q-Miss` step of
/// Fig. 8, without touching the DAIG. The sequential [`query`] loop and
/// `dai-engine`'s parallel scheduler both call this, which is what makes
/// concurrent evaluation bit-identical to sequential evaluation: every
/// cell value is produced by this one function from the same inputs.
///
/// # Errors
///
/// Propagates resolver failures and input-typing violations.
pub fn apply_ready<D: AbstractDomain>(
    rc: &ReadyComp<D>,
    memo: &mut dyn MemoStore<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
) -> Result<Value<D>, DaigError> {
    apply_ready_with(rc, memo, resolver, stats, None)
}

/// [`apply_ready`] evaluating transfers through a staged
/// [`TransferTable`] when one is supplied (`None` interprets; the results
/// are bit-identical either way, see [`crate::compile`]).
///
/// # Errors
///
/// As [`apply_ready`].
pub fn apply_ready_with<D: AbstractDomain>(
    rc: &ReadyComp<D>,
    memo: &mut dyn MemoStore<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
    transfers: Option<&TransferTable<D>>,
) -> Result<Value<D>, DaigError> {
    let inputs: Vec<&Value<D>> = rc.inputs.iter().collect();
    apply_inputs(
        &rc.dest,
        rc.func,
        &inputs,
        &rc.digests,
        rc.stmt_edge,
        rc.strategy,
        memo,
        resolver,
        stats,
        transfers,
    )
}

/// Applies the ready computation for `dest` by borrowing its inputs
/// directly from the graph — no input values are cloned. This is the
/// single-threaded fast path shared by the sequential [`query`] loop and
/// the scheduler's small-batch/single-worker mode; the caller writes the
/// returned value into `dest`.
///
/// # Errors
///
/// As [`collect_ready`] plus whatever the application reports.
pub fn apply_ready_at<D: AbstractDomain>(
    daig: &Daig<D>,
    dest: CellId,
    memo: &mut dyn MemoStore<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
) -> Result<Value<D>, DaigError> {
    apply_ready_at_with(daig, dest, memo, resolver, stats, None)
}

/// [`apply_ready_at`] evaluating transfers through a staged
/// [`TransferTable`] when one is supplied.
///
/// # Errors
///
/// As [`apply_ready_at`].
pub fn apply_ready_at_with<D: AbstractDomain>(
    daig: &Daig<D>,
    dest: CellId,
    memo: &mut dyn MemoStore<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
    transfers: Option<&TransferTable<D>>,
) -> Result<Value<D>, DaigError> {
    let comp = daig.comp_slot(dest).ok_or_else(|| {
        DaigError::Invariant(format!("cell {} has no computation", daig.name_of(dest)))
    })?;
    if comp.func == Func::Fix {
        return Err(DaigError::Invariant(format!(
            "fix edge at {} cannot be applied as a ready computation",
            daig.name_of(dest)
        )));
    }
    let mut inputs = Vec::with_capacity(comp.srcs.len());
    let mut digests = Vec::with_capacity(comp.srcs.len());
    for &s in &comp.srcs {
        let v = daig.value_id(s).ok_or_else(|| {
            DaigError::Invariant(format!(
                "{} input {} is empty",
                daig.name_of(dest),
                daig.name_of(s)
            ))
        })?;
        inputs.push(v);
        digests.push(daig.digest_id(s).expect("filled cells have digests"));
    }
    let stmt_edge = stmt_edge_of(daig, comp.func, &comp.srcs)?;
    apply_inputs(
        daig.name_of(dest),
        comp.func,
        &inputs,
        &digests,
        stmt_edge,
        daig.strategy(),
        memo,
        resolver,
        stats,
        transfers,
    )
}

/// The one place `Q-Match`/`Q-Miss` is implemented, over borrowed inputs.
#[allow(clippy::too_many_arguments)]
fn apply_inputs<D: AbstractDomain>(
    dest: &Name,
    func: Func,
    inputs: &[&Value<D>],
    digests: &[u128],
    stmt_edge: Option<EdgeId>,
    strategy: FixStrategy,
    memo: &mut dyn MemoStore<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
    transfers: Option<&TransferTable<D>>,
) -> Result<Value<D>, DaigError> {
    match func {
        Func::Fix => Err(DaigError::Invariant(format!(
            "fix edge at {dest} cannot be applied as a ready computation"
        ))),
        Func::Transfer => {
            let stmt = inputs[0].as_stmt().ok_or_else(|| {
                DaigError::Invariant(format!("transfer for {dest} has no statement"))
            })?;
            let pre = inputs[1].as_state().ok_or_else(|| {
                DaigError::Invariant(format!("transfer for {dest} has no pre-state"))
            })?;
            if let Stmt::Call { .. } = stmt {
                // Calls: resolve through the interprocedural layer and do
                // not memoize (the result depends on the callee's current
                // body).
                let edge = stmt_edge.ok_or_else(|| {
                    DaigError::Invariant(format!("call transfer for {dest} lost its edge"))
                })?;
                stats.computed += 1;
                Ok(Value::State(
                    resolver.resolve(pre, stmt, edge, memo, stats)?,
                ))
            } else {
                let key = KeyBuilder::new(Func::Transfer.memo_symbol())
                    .push_digest(digests[0])
                    .push_digest(digests[1])
                    .finish();
                match memo.fetch(key) {
                    Some(v) => {
                        stats.memo_matched += 1;
                        dai_trace::event!("core.memo_hit");
                        Ok(v)
                    }
                    None => {
                        // `digests[0]` is the statement cell's content
                        // digest — exactly what the table's staleness
                        // guard wants, and already in hand from the memo
                        // key. A stale or missing entry falls back to the
                        // interpreter; both paths are bit-identical by
                        // the `dai_domains::compile` contract.
                        let staged = transfers
                            .zip(stmt_edge)
                            .and_then(|(t, e)| t.lookup(e, digests[0]));
                        let post = match staged {
                            Some(ct) => {
                                stats.transfers_compiled += 1;
                                ct.apply(pre)
                            }
                            None => {
                                stats.transfers_interp += 1;
                                pre.transfer(stmt)
                            }
                        };
                        let v = Value::State(post);
                        memo.record(key, v.clone());
                        stats.computed += 1;
                        dai_trace::event!("core.memo_miss");
                        Ok(v)
                    }
                }
            }
        }
        Func::Join | Func::Widen => {
            let states: Vec<&D> = inputs
                .iter()
                .map(|v| {
                    v.as_state()
                        .ok_or_else(|| DaigError::Invariant(format!("{dest} input is not a state")))
                })
                .collect::<Result<_, _>>()?;
            // The operator a widen edge applies depends on the strategy
            // and on which iterate it produces (delayed widening joins
            // early iterations); the memo key uses the symbol of the
            // operator actually applied, so a delayed widen shares
            // entries with genuine joins.
            let iterate = if func == Func::Widen {
                Some(widen_dest_iterate(dest)?)
            } else {
                None
            };
            let symbol = match iterate {
                Some(k) => strategy.combine_symbol(k),
                None => Func::Join.memo_symbol(),
            };
            let mut kb = KeyBuilder::new(symbol);
            for &d in digests {
                kb = kb.push_digest(d);
            }
            let key = kb.finish();
            match memo.fetch(key) {
                Some(v) => {
                    stats.memo_matched += 1;
                    dai_trace::event!("core.memo_hit");
                    Ok(v)
                }
                None => {
                    dai_trace::event!("core.memo_miss");
                    let out = match iterate {
                        None => {
                            let mut it = states.iter();
                            let first = (*it.next().expect("join arity >= 2")).clone();
                            it.fold(first, |acc, s| acc.join(s))
                        }
                        Some(k) => strategy.combine(k, states[0], states[1]),
                    };
                    let v = Value::State(out);
                    memo.record(key, v.clone());
                    stats.computed += 1;
                    Ok(v)
                }
            }
        }
    }
}

/// The outcome of resolving one `fix` edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixOutcome {
    /// The iterates agreed: the fixed point was written
    /// (`Q-Loop-Converge`).
    Converged,
    /// The loop was unrolled one abstract iteration (`Q-Loop-Unroll`).
    /// `spliced` lists every cell the unroll added or re-pointed —
    /// including the fix cell itself — so cone-maintaining schedulers can
    /// patch their ready-counts for exactly this subgraph instead of
    /// re-traversing the demanded cone.
    Unrolled {
        /// Structurally changed cells, deduplicated.
        spliced: Vec<CellId>,
    },
}

impl FixOutcome {
    /// Did the fixed point converge?
    pub fn converged(&self) -> bool {
        matches!(self, FixOutcome::Converged)
    }
}

/// Resolves one `fix` edge whose two iterate inputs are filled: either the
/// iterates agree under the strategy's convergence test and the fixed
/// point is written (`Q-Loop-Converge`), or the loop is unrolled one more
/// abstract iteration (`Q-Loop-Unroll`, reporting the spliced cells) and
/// the caller must re-demand the (new) inputs.
///
/// # Errors
///
/// [`DaigError::Invariant`] if `dest` is not a fix destination with filled
/// state inputs.
pub fn fix_step<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    dest: &Name,
    stats: &mut QueryStats,
) -> Result<FixOutcome, DaigError> {
    let id = daig
        .id_of(dest)
        .ok_or_else(|| DaigError::Invariant(format!("cell {dest} has no computation")))?;
    fix_step_id(daig, cfg, id, stats)
}

/// Id-level [`fix_step`].
///
/// # Errors
///
/// As [`fix_step`].
pub fn fix_step_id<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    dest: CellId,
    stats: &mut QueryStats,
) -> Result<FixOutcome, DaigError> {
    let (src0, src1) = {
        let comp = daig.comp_slot(dest).ok_or_else(|| {
            DaigError::Invariant(format!("cell {} has no computation", daig.name_of(dest)))
        })?;
        if comp.func != Func::Fix {
            return Err(DaigError::Invariant(format!(
                "{} is not a fix cell",
                daig.name_of(dest)
            )));
        }
        (comp.srcs[0], comp.srcs[1])
    };
    let v0 = daig.value_id(src0).ok_or_else(|| {
        DaigError::Invariant(format!("fix at {} input 0 empty", daig.name_of(dest)))
    })?;
    let v1 = daig.value_id(src1).ok_or_else(|| {
        DaigError::Invariant(format!("fix at {} input 1 empty", daig.name_of(dest)))
    })?;
    let converged = match (v0.as_state(), v1.as_state()) {
        (Some(older), Some(newer)) => daig.strategy().converged(older, newer),
        _ => {
            return Err(DaigError::Invariant(format!(
                "fix at {} reads non-state iterates",
                daig.name_of(dest)
            )));
        }
    };
    if converged {
        // Q-Loop-Converge: the older iterate is the (post-) fixed point;
        // under `=` convergence the two coincide.
        let v0 = v0.clone();
        daig.write_id(dest, v0);
        stats.fix_converged += 1;
        return Ok(FixOutcome::Converged);
    }
    // Q-Loop-Unroll.
    let (head, sigma) = match daig.name_of(dest) {
        Name::State { loc, ctx } => (*loc, ctx.clone()),
        other => {
            return Err(DaigError::Invariant(format!(
                "fix destination {other} is not a state cell"
            )));
        }
    };
    let k = match daig.name_of(src1).ctx().and_then(|c| c.last()) {
        Some((h, k)) if h == head => k,
        _ => {
            return Err(DaigError::Invariant(format!(
                "fix source {} is not an iterate of {head}",
                daig.name_of(src1)
            )));
        }
    };
    let spliced = unroll_loop(daig, cfg, head, &sigma, k);
    stats.unrolls += 1;
    dai_trace::event!("core.unroll", spliced.len());
    Ok(FixOutcome::Unrolled { spliced })
}

/// Evaluates the cell named `n`, demanding its transitive dependencies and
/// unrolling loops as needed.
///
/// # Errors
///
/// * [`DaigError::NoSuchCell`] if `n` is not in the DAIG's namespace;
/// * [`DaigError::Invariant`] on internal inconsistency (a bug) or
///   divergence-guard trip.
pub fn query<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut dyn MemoStore<Value<D>>,
    n: &Name,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
) -> Result<Value<D>, DaigError> {
    query_with(daig, cfg, memo, n, resolver, stats, None)
}

/// [`query`] evaluating transfers through a staged [`TransferTable`]
/// when one is supplied.
///
/// # Errors
///
/// As [`query`].
#[allow(clippy::too_many_arguments)]
pub fn query_with<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut dyn MemoStore<Value<D>>,
    n: &Name,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
    transfers: Option<&TransferTable<D>>,
) -> Result<Value<D>, DaigError> {
    let Some(id) = daig.id_of(n) else {
        return Err(DaigError::NoSuchCell(n.to_string()));
    };
    query_id_with(daig, cfg, memo, id, resolver, stats, transfers)
}

/// Id-level [`query`]: the explicit-stack Fig. 8 evaluator over interned
/// cells.
///
/// # Errors
///
/// As [`query`] (the id must be live).
pub fn query_id<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut dyn MemoStore<Value<D>>,
    target: CellId,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
) -> Result<Value<D>, DaigError> {
    query_id_with(daig, cfg, memo, target, resolver, stats, None)
}

/// [`query_id`] evaluating transfers through a staged [`TransferTable`]
/// when one is supplied.
///
/// # Errors
///
/// As [`query_id`].
#[allow(clippy::too_many_arguments)]
pub fn query_id_with<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut dyn MemoStore<Value<D>>,
    target: CellId,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
    transfers: Option<&TransferTable<D>>,
) -> Result<Value<D>, DaigError> {
    if !daig.contains_id(target) {
        return Err(DaigError::NoSuchCell(daig.name_of(target).to_string()));
    }
    if let Some(v) = daig.value_id(target) {
        stats.reused += 1;
        return Ok(v.clone());
    }
    let _walk = dai_trace::span!("core.demand_walk");

    let mut stack: Vec<CellId> = vec![target];
    let mut missing: Vec<CellId> = Vec::new();
    let mut unroll_guard: u64 = 0;
    while let Some(&top) = stack.last() {
        if daig.value_id(top).is_some() {
            stack.pop();
            continue;
        }
        // Demand unevaluated inputs first. A cell may appear several times
        // on the stack (it is a DAG, not a tree); the topmost occurrence
        // evaluates it and deeper duplicates pop as already-filled. A true
        // dependency cycle would instead grow the stack beyond any bound
        // proportional to the graph, which the depth guard below converts
        // into an invariant error.
        let func = {
            let comp = daig.comp_slot(top).ok_or_else(|| {
                DaigError::Invariant(format!(
                    "empty cell {} has no computation",
                    daig.name_of(top)
                ))
            })?;
            missing.clear();
            for &s in &comp.srcs {
                if daig.value_id(s).is_none() && !missing.contains(&s) {
                    missing.push(s);
                }
            }
            comp.func
        };
        if !missing.is_empty() {
            for &m in &missing {
                if !daig.contains_id(m) {
                    return Err(DaigError::Invariant(format!(
                        "computation for {} reads missing cell {}",
                        daig.name_of(top),
                        daig.name_of(m)
                    )));
                }
            }
            stack.extend_from_slice(&missing);
            if stack.len() > 4 * daig.cell_count() + 1024 {
                return Err(DaigError::Invariant(format!(
                    "demand stack exploded at {}: dependency cycle (acyclicity violated)",
                    daig.name_of(top)
                )));
            }
            continue;
        }
        // All inputs ready: apply the matching rule.
        if func == Func::Fix {
            if fix_step_id(daig, cfg, top, stats)?.converged() {
                stack.pop();
            } else {
                // Leave `top` on the stack: the fix edge now demands the
                // next iterate.
                unroll_guard += 1;
                if unroll_guard > MAX_UNROLLS_PER_QUERY {
                    return Err(DaigError::Invariant(format!(
                        "loop at {} exceeded {MAX_UNROLLS_PER_QUERY} unrollings: \
                         widening does not converge",
                        daig.name_of(top)
                    )));
                }
            }
        } else {
            let value = apply_ready_at_with(daig, top, memo, resolver, stats, transfers)?;
            daig.write_id(top, value);
            stack.pop();
        }
    }
    Ok(daig.value_id(target).expect("query completed").clone())
}

/// Evaluates every cell in the DAIG (used by the exhaustive analysis
/// configurations).
///
/// # Errors
///
/// Propagates the first [`DaigError`] encountered.
pub fn evaluate_all<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut dyn MemoStore<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
) -> Result<(), DaigError> {
    evaluate_all_with(daig, cfg, memo, resolver, stats, None)
}

/// [`evaluate_all`] evaluating transfers through a staged
/// [`TransferTable`] when one is supplied.
///
/// # Errors
///
/// As [`evaluate_all`].
pub fn evaluate_all_with<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    memo: &mut dyn MemoStore<Value<D>>,
    resolver: &mut dyn CallResolver<D>,
    stats: &mut QueryStats,
    transfers: Option<&TransferTable<D>>,
) -> Result<(), DaigError> {
    // Demanding all fix cells (and the exit) forces the whole graph; the
    // set of names grows during unrolling, so iterate to quiescence.
    loop {
        let pending: Vec<CellId> = daig
            .ids()
            .filter(|&id| daig.value_id(id).is_none())
            .collect();
        if pending.is_empty() {
            return Ok(());
        }
        for id in pending {
            if daig.contains_id(id) && daig.value_id(id).is_none() {
                query_id_with(daig, cfg, memo, id, resolver, stats, transfers)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::initial_daig;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;
    use dai_memo::{MemoTable, SharedMemoTable};

    type D = IntervalDomain;

    fn cfg_of(src: &str) -> Cfg {
        lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone()
    }

    /// Drains the ready frontier to quiescence — a single-threaded model
    /// of the dai-engine scheduler: pure computations via
    /// `collect_ready`/`apply_ready`, fix edges via `fix_step`.
    fn frontier_schedule(daig: &mut Daig<D>, cfg: &Cfg, memo: &mut dyn MemoStore<Value<D>>) {
        let mut stats = QueryStats::default();
        loop {
            let mut ready: Vec<Name> = daig.ready_frontier().cloned().collect();
            if ready.is_empty() {
                break;
            }
            ready.sort();
            let mut progressed = false;
            for n in ready {
                if daig.value(&n).is_some() || !daig.contains(&n) {
                    continue; // filled or removed by an unroll this round
                }
                let comp = daig.comp(&n).expect("frontier cells have comps");
                if comp.srcs.iter().any(|s| daig.value(s).is_none()) {
                    continue; // inputs dirtied by an unroll this round
                }
                if comp.func == Func::Fix {
                    let _ = fix_step(daig, cfg, &n, &mut stats).unwrap();
                } else {
                    let rc = collect_ready(daig, &n).unwrap();
                    let v = apply_ready(&rc, memo, &mut IntraResolver, &mut stats).unwrap();
                    daig.write(&n, v);
                }
                progressed = true;
            }
            assert!(progressed, "frontier stalled");
        }
    }

    const LOOPY: &str =
        "function f(n) { var i = 0; var s = 0; while (i < 8) { s = s + i; i = i + 1; } return s; }";

    #[test]
    fn frontier_schedule_matches_sequential_query() {
        // Evaluate one copy by demanded sequential query, another by
        // draining the ready frontier; every shared cell must agree.
        let cfg = cfg_of(LOOPY);
        let mut seq = initial_daig::<D>(&cfg, IntervalDomain::top());
        let mut seq_memo = MemoTable::new();
        let mut stats = QueryStats::default();
        evaluate_all(
            &mut seq,
            &cfg,
            &mut seq_memo,
            &mut IntraResolver,
            &mut stats,
        )
        .unwrap();

        let mut par = initial_daig::<D>(&cfg, IntervalDomain::top());
        let mut shared = SharedMemoTable::new(4);
        frontier_schedule(&mut par, &cfg, &mut shared);

        let mut names: Vec<Name> = seq.names().cloned().collect();
        names.sort();
        let mut par_names: Vec<Name> = par.names().cloned().collect();
        par_names.sort();
        assert_eq!(names, par_names, "same namespace after unrolling");
        for n in &names {
            assert_eq!(seq.value(n), par.value(n), "cell {n} differs");
        }
    }

    #[test]
    fn apply_ready_rejects_fix_and_unready_cells() {
        let cfg = cfg_of(LOOPY);
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        // Some cell is empty with empty inputs initially; collect_ready
        // must refuse it.
        let unready = daig
            .names()
            .find(|n| {
                daig.value(n).is_none()
                    && daig
                        .comp(n)
                        .is_some_and(|c| c.srcs.iter().any(|s| daig.value(s).is_none()))
            })
            .expect("fresh loop DAIG has unready cells")
            .clone();
        assert!(collect_ready(&daig, &unready).is_err());
    }

    #[test]
    fn cloned_and_in_place_application_agree() {
        // `apply_ready` (cloned inputs, worker path) and `apply_ready_at`
        // (borrowed inputs, single-threaded path) must produce identical
        // values *and* identical memo keys — evaluating via one must hit
        // the memo when re-evaluating via the other.
        let cfg = cfg_of(LOOPY);
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        let ready: Vec<Name> = daig.ready_frontier().cloned().collect();
        assert!(!ready.is_empty());
        for n in &ready {
            if daig.comp(n).unwrap().func == Func::Fix {
                continue;
            }
            let id = daig.id_of(n).unwrap();
            let mut memo = MemoTable::new();
            let mut stats = QueryStats::default();
            let rc = collect_ready(&daig, n).unwrap();
            let cloned = apply_ready(&rc, &mut memo, &mut IntraResolver, &mut stats).unwrap();
            let in_place =
                apply_ready_at(&daig, id, &mut memo, &mut IntraResolver, &mut stats).unwrap();
            assert_eq!(cloned, in_place, "value at {n}");
            assert_eq!(stats.computed, 1, "{n}: first application computes");
            assert_eq!(stats.memo_matched, 1, "{n}: second application memo-hits");
        }
    }

    #[test]
    fn fix_step_unrolls_then_converges() {
        let cfg = cfg_of(LOOPY);
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let head = cfg.loop_heads()[0];
        let fix_cell = Name::State {
            loc: head,
            ctx: crate::name::IterCtx::root(),
        };
        // Demand everything below the fix cell, then step it by hand.
        let mut unrolled = 0;
        loop {
            let comp = daig.comp(&fix_cell).unwrap();
            for s in &comp.srcs {
                query(
                    &mut daig,
                    &cfg,
                    &mut memo,
                    s,
                    &mut IntraResolver,
                    &mut stats,
                )
                .unwrap();
            }
            match fix_step(&mut daig, &cfg, &fix_cell, &mut stats).unwrap() {
                FixOutcome::Converged => break,
                FixOutcome::Unrolled { spliced } => {
                    assert!(!spliced.is_empty(), "unroll reports spliced cells");
                    // The fix cell itself is re-pointed, so it is in the
                    // spliced set; every spliced id resolves to a live
                    // cell.
                    let fix_id = daig.id_of(&fix_cell).unwrap();
                    assert!(spliced.contains(&fix_id));
                    for &id in &spliced {
                        assert!(daig.contains_id(id), "spliced cell is live");
                    }
                }
            }
            unrolled += 1;
            assert!(unrolled < 100, "diverged");
        }
        assert!(unrolled >= 1, "interval loop needs at least one unroll");
        assert!(daig.value(&fix_cell).is_some());
        daig.check_well_formed().unwrap();
    }
}
