//! Per-query cost attribution over the demanded cone — `EXPLAIN ANALYZE`
//! for demanded abstract interpretation.
//!
//! The paper's demanded cone *is* a query plan: the set of cells a query
//! forces (`Q-Miss`), matches (`Q-Match`), or reuses (`Q-Reuse`), plus the
//! fix cells it iterates (`Q-Loop-Converge` / `Q-Loop-Unroll`). This
//! module captures that plan's cost while it executes:
//!
//! * [`ExplainSink`] rides the evaluation path — schedulers feed it one
//!   record per demanded cell (outcome class, wall time, compiled vs.
//!   interpreted transfer) and one accumulated record per fix cell
//!   (widening iterations, unroll depth);
//! * the sink folds per-cell finish times along dependency edges, so the
//!   **critical path (span)** through the cone's DAG falls out of the
//!   same traversal the scheduler already does in topological order:
//!   `finish(c) = wall(c) + max(finish(src) for src in inputs)`;
//! * [`ExplainReport`] is the finished, domain-erased artifact: total
//!   work, span, the work/span parallelism ratio (the upper bound on any
//!   parallel scheduler's speedup), per-outcome breakdowns, and the
//!   hottest cells.
//!
//! Attribution is accounting-honest by construction: every record in
//! `cells` corresponds to exactly one `computed` / `memo_matched` /
//! `reused` bump in [`QueryStats`], and every [`FixCost`] iteration to
//! one `fix_converged` or `unrolls` bump — tests enforce the identity.

use std::collections::HashMap;

use crate::graph::Daig;
use crate::intern::CellId;
use crate::query::QueryStats;
use dai_domains::AbstractDomain;

/// How a demanded cell's value was obtained (the Fig. 8 rule that fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellOutcome {
    /// `Q-Miss`: the computation actually ran.
    Computed,
    /// `Q-Match`: the memo table supplied the value.
    MemoMatched,
    /// `Q-Reuse`: the cell (or its whole resolution) was already filled.
    Reused,
}

impl CellOutcome {
    /// Stable lowercase tag, used in rendering and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            CellOutcome::Computed => "computed",
            CellOutcome::MemoMatched => "memo_matched",
            CellOutcome::Reused => "reused",
        }
    }
}

/// One demanded cell's attribution record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCost {
    /// The cell's name (rendered; reports are domain- and id-erased).
    pub cell: String,
    /// Which Fig. 8 rule produced the value.
    pub outcome: CellOutcome,
    /// Whether a staged (compiled) transfer served the computation.
    pub compiled: bool,
    /// Wall time spent evaluating this cell, in nanoseconds. Zero for
    /// reused cells — reuse is the whole point of the DAIG.
    pub wall_ns: u64,
    /// Critical-path finish time: this cell's wall time plus the maximum
    /// finish time of its inputs. The cone's span is the maximum finish
    /// over all cells.
    pub finish_ns: u64,
}

/// One fix cell's accumulated attribution across its widening iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixCost {
    /// The fix cell's name.
    pub cell: String,
    /// Number of `fix` resolutions attempted (convergence checks).
    pub iters: u64,
    /// Number of `Q-Loop-Unroll` steps taken (unroll depth reached).
    pub unrolls: u64,
    /// Wall time spent in fix resolution (checks + splicing), in ns.
    pub wall_ns: u64,
    /// Whether the loop reached `Q-Loop-Converge` during this evaluation.
    pub converged: bool,
}

/// A finished, domain-erased attribution report for one query batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplainReport {
    /// The abstract domain's stable tag ("interval", "octagon", …).
    pub domain: String,
    /// Transfer evaluation mode at capture time ("compiled" | "interp").
    pub transfer: String,
    /// Per-cell records in evaluation order (union cone of the batch).
    pub cells: Vec<CellCost>,
    /// Per-fix-cell records, completed (converged) fixes first.
    pub fixes: Vec<FixCost>,
    /// Total attributed evaluation work, in ns (cells + fix steps).
    pub work_ns: u64,
    /// Critical path through the dependency DAG, in ns.
    pub span_ns: u64,
    /// Time spent waiting to acquire the session lock, in ns.
    pub lock_wait_ns: u64,
    /// Time the session lock was held, in ns.
    pub lock_held_ns: u64,
    /// Time inside evaluation proper (resolution + scheduling), in ns.
    pub eval_ns: u64,
}

impl ExplainReport {
    /// Number of cells with the given outcome.
    pub fn outcome_cells(&self, outcome: CellOutcome) -> u64 {
        self.cells.iter().filter(|c| c.outcome == outcome).count() as u64
    }

    /// Wall time attributed to cells with the given outcome, in ns.
    pub fn outcome_ns(&self, outcome: CellOutcome) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.outcome == outcome)
            .map(|c| c.wall_ns)
            .sum()
    }

    /// Wall time attributed to fix resolution, in ns.
    pub fn fix_ns(&self) -> u64 {
        self.fixes.iter().map(|f| f.wall_ns).sum()
    }

    /// Total unroll depth across all fix cells.
    pub fn unrolls(&self) -> u64 {
        self.fixes.iter().map(|f| f.unrolls).sum()
    }

    /// Number of fix cells that converged during this evaluation.
    pub fn converged_fixes(&self) -> u64 {
        self.fixes.iter().filter(|f| f.converged).count() as u64
    }

    /// The work/span parallelism ratio — the maximum speedup any parallel
    /// scheduler could extract from this cone. `1.0` when no timed work
    /// was captured (an all-reused warm batch has no span).
    pub fn parallelism(&self) -> f64 {
        if self.span_ns == 0 {
            1.0
        } else {
            self.work_ns as f64 / self.span_ns as f64
        }
    }

    /// The `n` hottest cells by wall time, descending (ties by name so
    /// the order is deterministic).
    pub fn hottest(&self, n: usize) -> Vec<&CellCost> {
        let mut by_heat: Vec<&CellCost> = self.cells.iter().filter(|c| c.wall_ns > 0).collect();
        by_heat.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then_with(|| a.cell.cmp(&b.cell)));
        by_heat.truncate(n);
        by_heat
    }

    /// Verifies the accounting identity against a [`QueryStats`] delta
    /// covering the same evaluation: per-outcome cell counts must equal
    /// the counters, converged fixes must equal `fix_converged`, and the
    /// total unroll depth must equal `unrolls`. Returns the first
    /// discrepancy as text.
    pub fn check_accounting(&self, delta: &QueryStats) -> Result<(), String> {
        let pairs = [
            (CellOutcome::Computed, delta.computed, "computed"),
            (CellOutcome::MemoMatched, delta.memo_matched, "memo_matched"),
            (CellOutcome::Reused, delta.reused, "reused"),
        ];
        for (outcome, counter, what) in pairs {
            let attributed = self.outcome_cells(outcome);
            if attributed != counter {
                return Err(format!(
                    "explain attributed {attributed} {what} cells but QueryStats counted {counter}"
                ));
            }
        }
        if self.converged_fixes() != delta.fix_converged {
            return Err(format!(
                "explain attributed {} converged fixes but QueryStats counted {}",
                self.converged_fixes(),
                delta.fix_converged
            ));
        }
        if self.unrolls() != delta.unrolls {
            return Err(format!(
                "explain attributed {} unrolls but QueryStats counted {}",
                self.unrolls(),
                delta.unrolls
            ));
        }
        Ok(())
    }

    /// Renders the report as a human-readable text block with the `top`
    /// hottest cells.
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explain: domain {} · transfers {} · {} cells ({} computed / {} memo / {} reused) · {} fixes",
            self.domain,
            self.transfer,
            self.cells.len(),
            self.outcome_cells(CellOutcome::Computed),
            self.outcome_cells(CellOutcome::MemoMatched),
            self.outcome_cells(CellOutcome::Reused),
            self.fixes.len(),
        );
        let _ = writeln!(
            out,
            "  work {} · span {} · parallelism {:.2}x",
            fmt_ns(self.work_ns),
            fmt_ns(self.span_ns),
            self.parallelism()
        );
        let _ = writeln!(
            out,
            "  lock wait {} · lock held {} · eval {}",
            fmt_ns(self.lock_wait_ns),
            fmt_ns(self.lock_held_ns),
            fmt_ns(self.eval_ns)
        );
        let _ = writeln!(
            out,
            "  by outcome: computed {} · memo {} · fix {}",
            fmt_ns(self.outcome_ns(CellOutcome::Computed)),
            fmt_ns(self.outcome_ns(CellOutcome::MemoMatched)),
            fmt_ns(self.fix_ns())
        );
        let mut rows: Vec<[String; 4]> = Vec::new();
        for c in self.hottest(top) {
            rows.push([
                c.cell.clone(),
                c.outcome.tag().to_string(),
                if c.compiled { "compiled" } else { "-" }.to_string(),
                fmt_ns(c.wall_ns),
            ]);
        }
        if !rows.is_empty() {
            let _ = writeln!(out, "  hottest cells:");
            out.push_str(&dai_trace::render_table(
                &["cell", "outcome", "transfer", "wall"],
                &rows,
                "    ",
            ));
        }
        for f in &self.fixes {
            let _ = writeln!(
                out,
                "  fix {}: {} iter(s), {} unroll(s), {}{}",
                f.cell,
                f.iters,
                f.unrolls,
                fmt_ns(f.wall_ns),
                if f.converged { "" } else { " (not converged)" }
            );
        }
        out
    }

    /// Renders the report as a single-line JSON object (hand-rolled, like
    /// every other artifact in the workspace — no serde dependency).
    pub fn to_json(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"domain\":\"{}\",\"transfer\":\"{}\",\"cells\":{},\"computed\":{},\
             \"memo_matched\":{},\"reused\":{},\"fixes\":{},\"converged_fixes\":{},\
             \"unrolls\":{},\"work_ns\":{},\"span_ns\":{},\"parallelism\":{:.3},\
             \"lock_wait_ns\":{},\"lock_held_ns\":{},\"eval_ns\":{},\
             \"computed_ns\":{},\"memo_matched_ns\":{},\"fix_ns\":{},\"hottest\":[",
            json_escape(&self.domain),
            json_escape(&self.transfer),
            self.cells.len(),
            self.outcome_cells(CellOutcome::Computed),
            self.outcome_cells(CellOutcome::MemoMatched),
            self.outcome_cells(CellOutcome::Reused),
            self.fixes.len(),
            self.converged_fixes(),
            self.unrolls(),
            self.work_ns,
            self.span_ns,
            self.parallelism(),
            self.lock_wait_ns,
            self.lock_held_ns,
            self.eval_ns,
            self.outcome_ns(CellOutcome::Computed),
            self.outcome_ns(CellOutcome::MemoMatched),
            self.fix_ns(),
        );
        for (i, c) in self.hottest(top).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"cell\":\"{}\",\"outcome\":\"{}\",\"compiled\":{},\"wall_ns\":{},\
                 \"finish_ns\":{}}}",
                json_escape(&c.cell),
                c.outcome.tag(),
                c.compiled,
                c.wall_ns,
                c.finish_ns
            );
        }
        s.push_str("]}");
        s
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// An in-flight fix cell's accumulator (completed on `Q-Loop-Converge`).
#[derive(Debug, Clone)]
struct OpenFix {
    cell: String,
    iters: u64,
    unrolls: u64,
    wall_ns: u64,
}

/// The capture side of a report: schedulers feed it records while they
/// evaluate, and [`ExplainSink::finish_report`] seals the result.
///
/// Finish times are tracked in a dense `CellId`-indexed table, so the
/// sink must be told when evaluation crosses into a different function's
/// DAIG (whose ids are a separate arena) via [`ExplainSink::begin_unit`].
#[derive(Debug, Default)]
pub struct ExplainSink {
    cells: Vec<CellCost>,
    fixes: Vec<FixCost>,
    work_ns: u64,
    span_ns: u64,
    /// Per-unit critical-path finish times, `CellId`-indexed. Cells
    /// filled before this capture (reuse) implicitly finish at 0.
    finish: Vec<u64>,
    open_fixes: HashMap<usize, OpenFix>,
}

impl ExplainSink {
    /// A fresh sink.
    pub fn new() -> ExplainSink {
        ExplainSink::default()
    }

    /// Marks the start of evaluation against a different function's DAIG:
    /// finish times are per-arena and must not leak across units. Fix
    /// cells still open (unrolled but not converged here) are flushed as
    /// unconverged records.
    pub fn begin_unit(&mut self) {
        self.flush_open_fixes();
        self.finish.clear();
    }

    /// Records one ready-computation application. `delta` is the
    /// [`QueryStats`] movement of exactly this application: one
    /// `memo_matched` bump means `Q-Match`, otherwise `Q-Miss`
    /// (`computed`); a `transfers_compiled` bump marks the staged path.
    pub fn record_applied<D: AbstractDomain>(
        &mut self,
        daig: &Daig<D>,
        id: CellId,
        delta: &QueryStats,
        wall_ns: u64,
    ) {
        let outcome = if delta.memo_matched > 0 {
            CellOutcome::MemoMatched
        } else {
            CellOutcome::Computed
        };
        let finish_ns = wall_ns + self.input_finish(daig, id);
        self.set_finish(id, finish_ns);
        self.work_ns += wall_ns;
        self.span_ns = self.span_ns.max(finish_ns);
        self.cells.push(CellCost {
            cell: daig.name_of(id).to_string(),
            outcome,
            compiled: delta.transfers_compiled > 0,
            wall_ns,
            finish_ns,
        });
    }

    /// Records a `Q-Reuse`: the cell (or the query's whole cached
    /// resolution) was already filled, costing nothing now.
    pub fn record_reused(&mut self, cell: String) {
        self.cells.push(CellCost {
            cell,
            outcome: CellOutcome::Reused,
            compiled: false,
            wall_ns: 0,
            finish_ns: 0,
        });
    }

    /// Records one `fix` resolution step on `id`. Steps accumulate into
    /// one [`FixCost`] per fix cell, sealed when the loop converges (or
    /// flushed unconverged at unit/report boundaries).
    pub fn record_fix_step<D: AbstractDomain>(
        &mut self,
        daig: &Daig<D>,
        id: CellId,
        wall_ns: u64,
        converged: bool,
    ) {
        self.work_ns += wall_ns;
        let entry = self.open_fixes.entry(id.idx()).or_insert_with(|| OpenFix {
            cell: daig.name_of(id).to_string(),
            iters: 0,
            unrolls: 0,
            wall_ns: 0,
        });
        entry.iters += 1;
        entry.wall_ns += wall_ns;
        if converged {
            let open = self
                .open_fixes
                .remove(&id.idx())
                .expect("entry just inserted");
            // The fix wrote its destination: it joins the critical path
            // at its total accumulated cost on top of its final iterates.
            let finish_ns = open.wall_ns + self.input_finish(daig, id);
            self.set_finish(id, finish_ns);
            self.span_ns = self.span_ns.max(finish_ns);
            self.fixes.push(FixCost {
                cell: open.cell,
                iters: open.iters,
                unrolls: open.unrolls,
                wall_ns: open.wall_ns,
                converged: true,
            });
        } else {
            entry.unrolls += 1;
        }
    }

    /// Seals the capture into a report. `domain`/`transfer` tag the
    /// engine context; the three timings come from the serving path.
    pub fn finish_report(
        mut self,
        domain: String,
        transfer: String,
        lock_wait_ns: u64,
        lock_held_ns: u64,
        eval_ns: u64,
    ) -> ExplainReport {
        self.flush_open_fixes();
        ExplainReport {
            domain,
            transfer,
            cells: self.cells,
            fixes: self.fixes,
            work_ns: self.work_ns,
            span_ns: self.span_ns,
            lock_wait_ns,
            lock_held_ns,
            eval_ns,
        }
    }

    fn flush_open_fixes(&mut self) {
        if self.open_fixes.is_empty() {
            return;
        }
        let mut open: Vec<OpenFix> = self.open_fixes.drain().map(|(_, f)| f).collect();
        open.sort_by(|a, b| a.cell.cmp(&b.cell));
        for f in open {
            self.fixes.push(FixCost {
                cell: f.cell,
                iters: f.iters,
                unrolls: f.unrolls,
                wall_ns: f.wall_ns,
                converged: false,
            });
        }
    }

    fn input_finish<D: AbstractDomain>(&self, daig: &Daig<D>, id: CellId) -> u64 {
        daig.comp_slot(id)
            .map(|comp| {
                comp.srcs
                    .iter()
                    .map(|s| self.finish.get(s.idx()).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    fn set_finish(&mut self, id: CellId, finish_ns: u64) {
        if id.idx() >= self.finish.len() {
            self.finish.resize(id.idx() + 1, 0);
        }
        self.finish[id.idx()] = finish_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FuncAnalysis;
    use dai_domains::IntervalDomain;

    fn sink_with_chain() -> (ExplainSink, FuncAnalysis<IntervalDomain>) {
        let program =
            dai_lang::parse_program("function f(n) { var i = 0; var j = i + 1; return j; }")
                .unwrap();
        let cfg = dai_lang::cfg::lower_program(&program).unwrap().cfgs()[0].clone();
        let fa = FuncAnalysis::new(cfg, IntervalDomain::top());
        (ExplainSink::new(), fa)
    }

    #[test]
    fn span_is_longest_weighted_path_not_total_work() {
        let (mut sink, fa) = sink_with_chain();
        let daig = fa.daig();
        // Three filled-input cells: two independent (10ns, 30ns) and one
        // depending on whichever the graph wires — we fake the DAG by
        // recording ids with no computations (finish = own wall) plus one
        // real dependent. Simplest honest check: independent cells give
        // span = max(wall), work = sum(wall).
        let ids: Vec<CellId> = daig
            .ids()
            .filter(|id| daig.comp_slot(*id).is_none())
            .take(2)
            .collect();
        assert_eq!(ids.len(), 2, "fixture needs two source cells");
        let delta = QueryStats {
            computed: 1,
            ..QueryStats::default()
        };
        sink.record_applied(daig, ids[0], &delta, 10);
        sink.record_applied(daig, ids[1], &delta, 30);
        let report = sink.finish_report("interval".into(), "compiled".into(), 1, 2, 3);
        assert_eq!(report.work_ns, 40);
        assert_eq!(report.span_ns, 30);
        assert!(report.parallelism() > 1.3 && report.parallelism() < 1.34);
    }

    #[test]
    fn finish_times_propagate_along_dependencies() {
        let (mut sink, fa) = sink_with_chain();
        let daig = fa.daig();
        // Pick a real computation cell and one of its sources.
        let dep = daig
            .ids()
            .find(|id| daig.comp_slot(*id).is_some_and(|c| !c.srcs.is_empty()))
            .expect("fixture has a computation");
        let src = daig.comp_slot(dep).unwrap().srcs[0];
        let delta = QueryStats {
            computed: 1,
            ..QueryStats::default()
        };
        sink.record_applied(daig, src, &delta, 100);
        sink.record_applied(daig, dep, &delta, 7);
        let report = sink.finish_report("interval".into(), "interp".into(), 0, 0, 0);
        assert_eq!(report.span_ns, 107, "dependent chains, not max of walls");
        assert_eq!(report.cells[1].finish_ns, 107);
    }

    #[test]
    fn accounting_identity_checks_both_directions() {
        let (mut sink, fa) = sink_with_chain();
        let daig = fa.daig();
        let id = daig.ids().next().expect("fixture has cells");
        let computed = QueryStats {
            computed: 1,
            ..QueryStats::default()
        };
        let matched = QueryStats {
            memo_matched: 1,
            ..QueryStats::default()
        };
        sink.record_applied(daig, id, &computed, 5);
        sink.record_applied(daig, id, &matched, 5);
        sink.record_reused("f:sigma".to_string());
        let report = sink.finish_report("interval".into(), "compiled".into(), 0, 0, 0);
        let good = QueryStats {
            computed: 1,
            memo_matched: 1,
            reused: 1,
            ..QueryStats::default()
        };
        assert_eq!(report.check_accounting(&good), Ok(()));
        let bad = QueryStats {
            computed: 2,
            ..QueryStats::default()
        };
        assert!(report.check_accounting(&bad).is_err());
    }

    #[test]
    fn unit_boundaries_do_not_leak_finish_times() {
        let (mut sink, fa) = sink_with_chain();
        let daig = fa.daig();
        let dep = daig
            .ids()
            .find(|id| daig.comp_slot(*id).is_some_and(|c| !c.srcs.is_empty()))
            .expect("fixture has a computation");
        let src = daig.comp_slot(dep).unwrap().srcs[0];
        let delta = QueryStats {
            computed: 1,
            ..QueryStats::default()
        };
        sink.record_applied(daig, src, &delta, 1_000);
        sink.begin_unit(); // a different function's arena starts here
        sink.record_applied(daig, dep, &delta, 5);
        let report = sink.finish_report("interval".into(), "compiled".into(), 0, 0, 0);
        // Without the unit boundary this would be 1005.
        assert_eq!(report.cells[1].finish_ns, 5);
    }

    #[test]
    fn fix_steps_accumulate_and_seal_on_convergence() {
        let (mut sink, fa) = sink_with_chain();
        let daig = fa.daig();
        let id = daig.ids().next().expect("fixture has cells");
        sink.record_fix_step(daig, id, 10, false);
        sink.record_fix_step(daig, id, 10, false);
        sink.record_fix_step(daig, id, 5, true);
        let report = sink.finish_report("interval".into(), "compiled".into(), 0, 0, 0);
        assert_eq!(report.fixes.len(), 1);
        let f = &report.fixes[0];
        assert_eq!(
            (f.iters, f.unrolls, f.wall_ns, f.converged),
            (3, 2, 25, true)
        );
        assert_eq!(report.unrolls(), 2);
        assert_eq!(report.converged_fixes(), 1);
        assert_eq!(report.work_ns, 25);
    }

    #[test]
    fn render_and_json_are_total() {
        let (mut sink, fa) = sink_with_chain();
        let daig = fa.daig();
        let delta = QueryStats {
            computed: 1,
            transfers_compiled: 1,
            ..QueryStats::default()
        };
        let mut ids = daig.ids();
        let first = ids.next().expect("fixture has cells");
        let second = ids.next().expect("fixture has two cells");
        sink.record_applied(daig, first, &delta, 1_500);
        sink.record_fix_step(daig, second, 10, false);
        let report = sink.finish_report("octagon".into(), "compiled".into(), 10, 20, 30);
        let text = report.render(5);
        assert!(text.contains("octagon"), "{text}");
        assert!(text.contains("not converged"), "{text}");
        let json = report.to_json(5);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"parallelism\":"), "{json}");
    }
}
