//! DAIG–CFG consistency (Definition 4.2) and DAIG–AI consistency
//! (Definition 4.3) checkers. These run inside property tests to validate
//! the preservation lemmas (6.2, 6.3) after every query and edit.

use crate::build::{dest_name, src_name, Overrides};
use crate::graph::{Daig, Func, Value};
use crate::name::Name;
use dai_domains::AbstractDomain;
use dai_lang::cfg::Cfg;

/// Checks Definition 4.2: the DAIG's structure encodes the CFG — statement
/// cells carry the CFG's statements, forward edges have transfer (or
/// pre-join + join) computations, and every loop head has a coherent
/// iterate/widen/fix structure for each of its unrolled iterations.
pub fn check_cfg_consistency<D: AbstractDomain>(daig: &Daig<D>, cfg: &Cfg) -> Result<(), String> {
    let ov = Overrides::new();
    // Statement cells match the program text.
    for e in cfg.edges() {
        let sc = Name::Stmt(e.id);
        match daig.value(&sc) {
            Some(Value::Stmt(s)) if *s == e.stmt => {}
            Some(Value::Stmt(s)) => {
                return Err(format!(
                    "stmt cell {sc} holds `{s}` but CFG has `{}`",
                    e.stmt
                ));
            }
            _ => return Err(format!("stmt cell {sc} missing or non-statement")),
        }
    }
    // Case (1)/(2): forward edges at iteration 0.
    for e in cfg.edges() {
        if cfg.is_back_edge(e.id) {
            continue;
        }
        let src = src_name(cfg, e.src, e.dst, &ov);
        let (dest, via_join) = if cfg.is_join(e.dst) {
            let ctx = match dest_name(cfg, e.dst, &ov) {
                Name::State { ctx, .. } => ctx,
                _ => unreachable!(),
            };
            (Name::PreJoin { edge: e.id, ctx }, true)
        } else {
            (dest_name(cfg, e.dst, &ov), false)
        };
        if e.dst == cfg.entry() && !via_join {
            continue; // the entry seed cell has no computation
        }
        let comp = daig
            .comp(&dest)
            .ok_or_else(|| format!("missing transfer comp into {dest}"))?;
        if comp.func != Func::Transfer || comp.srcs != vec![Name::Stmt(e.id), src.clone()] {
            return Err(format!("edge {} mis-encoded into {dest}", e.id));
        }
        if via_join {
            let jd = dest_name(cfg, e.dst, &ov);
            let jc = daig
                .comp(&jd)
                .ok_or_else(|| format!("missing join comp at {jd}"))?;
            if jc.func != Func::Join {
                return Err(format!("join location {jd} lacks a join computation"));
            }
            if !jc.srcs.contains(&dest) {
                return Err(format!("join at {jd} does not read {dest}"));
            }
            if jc.srcs.len() != cfg.fwd_in_edges(e.dst).len() {
                return Err(format!("join arity mismatch at {jd}"));
            }
        }
    }
    // Case (3): every fix computation has consecutive iterates and a
    // widen chain down to iterate 0.
    for n in daig.names() {
        let Some(comp) = daig.comp(n) else { continue };
        if comp.func != Func::Fix {
            continue;
        }
        let Name::State {
            loc: head,
            ctx: sigma,
        } = n
        else {
            return Err(format!("fix dest {n} is not a state cell"));
        };
        if !cfg.is_loop_head(*head) {
            return Err(format!("fix at non-head {head}"));
        }
        let k = match comp.srcs[1].ctx().and_then(|c| c.last()) {
            Some((h, k)) if h == *head => k,
            _ => return Err(format!("fix srcs of {n} malformed")),
        };
        let k0 = match comp.srcs[0].ctx().and_then(|c| c.last()) {
            Some((h, k0)) if h == *head => k0,
            _ => return Err(format!("fix srcs of {n} malformed")),
        };
        if k0 + 1 != k {
            return Err(format!("fix srcs of {n} are not consecutive iterates"));
        }
        for i in 1..=k {
            let it = Name::State {
                loc: *head,
                ctx: sigma.push(*head, i),
            };
            let wc = daig
                .comp(&it)
                .ok_or_else(|| format!("iterate {it} has no widen comp"))?;
            if wc.func != Func::Widen {
                return Err(format!("iterate {it} not produced by ∇"));
            }
            let prev = Name::State {
                loc: *head,
                ctx: sigma.push(*head, i - 1),
            };
            let pw = Name::PreWiden {
                head: *head,
                ctx: sigma.push(*head, i - 1),
            };
            if wc.srcs != vec![prev, pw] {
                return Err(format!("widen comp at {it} has wrong sources"));
            }
        }
    }
    Ok(())
}

/// Checks Definition 4.3: every non-empty cell's value equals its
/// computation applied to its (non-empty) source values; fix cells hold
/// their older source, which under the strategy's convergence test agrees
/// with the newer one. Call transfers are skipped (their value depends on
/// the interprocedural layer, not only on local inputs). Widen edges are
/// checked against the operator the DAIG's [`crate::strategy::FixStrategy`]
/// actually schedules for their iterate.
pub fn check_ai_consistency<D: AbstractDomain>(daig: &Daig<D>) -> Result<(), String> {
    let strategy = daig.strategy();
    for n in daig.names() {
        let Some(v) = daig.value(n) else { continue };
        let Some(comp) = daig.comp(n) else { continue };
        let vals: Vec<&Value<D>> = comp
            .srcs
            .iter()
            .map(|s| {
                daig.value(s)
                    .ok_or_else(|| format!("non-empty {n} has empty source {s}"))
            })
            .collect::<Result<_, _>>()?;
        let expected: Value<D> = match comp.func {
            Func::Fix => {
                let older = vals[0]
                    .as_state()
                    .ok_or_else(|| format!("{n}: not a state"))?;
                let newer = vals[1]
                    .as_state()
                    .ok_or_else(|| format!("{n}: not a state"))?;
                if !strategy.converged(older, newer) {
                    return Err(format!("fix {n} written while sources differ"));
                }
                (*vals[0]).clone()
            }
            Func::Transfer => {
                let stmt = vals[0]
                    .as_stmt()
                    .ok_or_else(|| format!("{n}: not a stmt"))?;
                if stmt.is_call() {
                    continue;
                }
                let pre = vals[1]
                    .as_state()
                    .ok_or_else(|| format!("{n}: not a state"))?;
                Value::State(pre.transfer(stmt))
            }
            Func::Join => {
                let mut it = vals.iter().map(|v| v.as_state().expect("join of states"));
                let first = it.next().expect("arity >= 2").clone();
                Value::State(it.fold(first, |a, s| a.join(s)))
            }
            Func::Widen => {
                let a = vals[0]
                    .as_state()
                    .ok_or_else(|| format!("{n}: not a state"))?;
                let b = vals[1]
                    .as_state()
                    .ok_or_else(|| format!("{n}: not a state"))?;
                let k = crate::query::widen_dest_iterate(n).map_err(|e| format!("{n}: {e}"))?;
                Value::State(strategy.combine(k, a, b))
            }
        };
        if *v != expected {
            return Err(format!("cell {n} inconsistent with its computation"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FuncAnalysis;
    use crate::query::{IntraResolver, QueryStats};
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;
    use dai_memo::MemoTable;

    fn checked_analysis(src: &str) -> FuncAnalysis<IntervalDomain> {
        let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
        let fa = FuncAnalysis::new(cfg, IntervalDomain::top());
        check_cfg_consistency(fa.daig(), fa.cfg()).unwrap();
        check_ai_consistency(fa.daig()).unwrap();
        fa
    }

    #[test]
    fn initial_daig_is_consistent() {
        checked_analysis(
            "function f(n) { var i = 0; while (i < n) { if (i > 2) { i = i + 2; } else { i = i + 1; } } return i; }",
        );
    }

    #[test]
    fn consistency_preserved_by_queries_and_edits() {
        let mut fa = checked_analysis(
            "function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }",
        );
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        check_cfg_consistency(fa.daig(), fa.cfg()).unwrap();
        check_ai_consistency(fa.daig()).unwrap();

        let e0 = fa.cfg().edges().next().unwrap().id;
        fa.relabel(
            e0,
            dai_lang::Stmt::Assign("i".into(), dai_lang::parse_expr("5").unwrap()),
        )
        .unwrap();
        check_cfg_consistency(fa.daig(), fa.cfg()).unwrap();
        check_ai_consistency(fa.daig()).unwrap();

        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        check_cfg_consistency(fa.daig(), fa.cfg()).unwrap();
        check_ai_consistency(fa.daig()).unwrap();
    }

    #[test]
    fn detects_tampered_value() {
        let mut fa = checked_analysis("function f() { var x = 1; return x; }");
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        // Corrupt a computed cell.
        let exit = crate::build::dest_name(fa.cfg(), fa.cfg().exit(), &Overrides::new());
        let mut daig = fa.daig().clone();
        daig.write(&exit, Value::State(IntervalDomain::top()));
        // x = 1 at exit, so ⊤ is inconsistent.
        assert!(check_ai_consistency(&daig).is_err());
    }
}
