//! Incremental edit semantics (paper Fig. 9): eager forward dirtying with
//! fix-edge rollback.
//!
//! * `E-Commit` — a value may be written once everything downstream is
//!   empty; the functions here establish that premise by dirtying first.
//! * `E-Propagate` — dirtying clears a cell and recursively empties its
//!   (transitive) dependents. Because AI-consistency guarantees non-empty
//!   cells have non-empty inputs, propagation can prune at cells that are
//!   already empty.
//! * `E-Loop` — when the destination of a `fix` edge is dirtied, the
//!   loop's unrolled iterations are discarded and the fix edge rolls back
//!   to the 0th and 1st iterates ([`crate::build::rollback_loop`]).

use crate::build::rollback_loop;
use crate::graph::{Daig, Func, Value};
use crate::intern::CellId;
use crate::name::Name;
use dai_domains::AbstractDomain;

/// Dirties (empties) the cells named in `seeds` and everything forward-
/// reachable from them, rolling back loops whose fixed points are
/// invalidated. Cells that are already empty stop propagation.
pub fn dirty_from<D: AbstractDomain>(daig: &mut Daig<D>, seeds: Vec<Name>) {
    let work: Vec<CellId> = seeds.iter().filter_map(|n| daig.id_of(n)).collect();
    dirty_from_ids(daig, work);
}

/// Id-level [`dirty_from`]: the E-Propagate wave as an integer traversal
/// over the graph's flat reverse adjacency.
pub fn dirty_from_ids<D: AbstractDomain>(daig: &mut Daig<D>, mut work: Vec<CellId>) {
    while let Some(x) = work.pop() {
        if !daig.contains_id(x) {
            continue; // removed by a rollback
        }
        if daig.clear_id(x).is_none() {
            continue; // already empty: dependents are empty too
        }
        // E-Loop: clearing a fixed-point cell rolls its loop back.
        if daig.comp_func(x) == Some(Func::Fix) {
            if let Name::State { loc, ctx } = daig.name_of(x) {
                let (head, sigma) = (*loc, ctx.clone());
                rollback_loop(daig, head, &sigma);
            }
        }
        work.extend_from_slice(daig.dependents_ids(x));
    }
}

/// Dirties everything that depends on `n` without clearing `n` itself
/// (used when `n` is about to receive a new value, e.g. a statement edit).
pub fn dirty_dependents<D: AbstractDomain>(daig: &mut Daig<D>, n: &Name) {
    let Some(id) = daig.id_of(n) else { return };
    let deps = daig.dependents_ids(id).to_vec();
    dirty_from_ids(daig, deps);
}

/// Writes `v` into `n` after dirtying its dependents — the combination of
/// `E-Propagate` and `E-Commit` for an external edit.
pub fn write_with_invalidation<D: AbstractDomain>(daig: &mut Daig<D>, n: &Name, v: Value<D>) {
    dirty_dependents(daig, n);
    daig.write(n, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{dest_name, initial_daig, Overrides};
    use crate::name::IterCtx;
    use crate::query::{query, IntraResolver, QueryStats};
    use dai_domains::{AbstractDomain, IntervalDomain};
    use dai_lang::cfg::{lower_program, Cfg};
    use dai_lang::parser::parse_program;
    use dai_lang::{Loc, Stmt};
    use dai_memo::MemoTable;

    type D = IntervalDomain;

    fn cfg_of(src: &str) -> Cfg {
        lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone()
    }

    fn fully_evaluate(cfg: &Cfg, daig: &mut crate::graph::Daig<D>) {
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        crate::query::evaluate_all(daig, cfg, &mut memo, &mut IntraResolver, &mut stats).unwrap();
    }

    #[test]
    fn dirty_propagates_forward_only() {
        let cfg = cfg_of("function f() { var x = 1; x = x + 1; return x; }");
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        fully_evaluate(&cfg, &mut daig);
        // Dirty the middle state: downstream cells empty, upstream intact.
        let locs = cfg.locs();
        let mid = dest_name(&cfg, locs[2], &Overrides::new());
        dirty_from(&mut daig, vec![mid.clone()]);
        assert!(daig.value(&mid).is_none());
        let entry = dest_name(&cfg, cfg.entry(), &Overrides::new());
        assert!(daig.value(&entry).is_some());
        let exit = dest_name(&cfg, cfg.exit(), &Overrides::new());
        assert!(daig.value(&exit).is_none());
    }

    #[test]
    fn dirty_fix_dest_rolls_back_loop() {
        let cfg = cfg_of("function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        fully_evaluate(&cfg, &mut daig);
        let head = cfg.loop_heads()[0];
        let fix_cell = Name::State {
            loc: head,
            ctx: IterCtx::root(),
        };
        // The interval loop needs > 1 unrolling, so iterate 2 exists.
        let it2 = Name::State {
            loc: head,
            ctx: IterCtx::root().push(head, 2),
        };
        assert!(daig.contains(&it2));
        dirty_from(&mut daig, vec![fix_cell.clone()]);
        assert!(
            !daig.contains(&it2),
            "rollback must remove unrolled iterates"
        );
        let comp = daig.comp(&fix_cell).unwrap();
        assert_eq!(
            comp.srcs[1],
            Name::State {
                loc: head,
                ctx: IterCtx::root().push(head, 1)
            }
        );
        daig.check_well_formed().unwrap();
    }

    #[test]
    fn statement_edit_dirties_all_iterations() {
        let cfg = cfg_of("function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        fully_evaluate(&cfg, &mut daig);
        let head = cfg.loop_heads()[0];
        let back = cfg.back_edge(head).unwrap();
        write_with_invalidation(
            &mut daig,
            &Name::Stmt(back),
            Value::Stmt(Stmt::Assign(
                "i".into(),
                dai_lang::parse_expr("i + 2").unwrap(),
            )),
        );
        daig.check_well_formed().unwrap();
        // The exit is dirty; the entry is not.
        let exit = dest_name(&cfg, cfg.exit(), &Overrides::new());
        assert!(daig.value(&exit).is_none());
        let entry = dest_name(&cfg, cfg.entry(), &Overrides::new());
        assert!(daig.value(&entry).is_some());
        // Re-evaluation succeeds and reflects the new statement.
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let v = query(
            &mut daig,
            &cfg,
            &mut memo,
            &exit,
            &mut IntraResolver,
            &mut stats,
        )
        .unwrap();
        let state = v.as_state().unwrap().clone();
        assert!(!state.is_bottom());
    }

    #[test]
    fn dirtying_preserves_unaffected_loop() {
        // Two sequential loops; editing after the first must not disturb it.
        let cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } var j = 0; while (j < n) { j = j + 1; } return j; }",
        );
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        fully_evaluate(&cfg, &mut daig);
        let heads = cfg.loop_heads();
        let (first, second) = (heads[0], heads[1]);
        // Find the `var j = 0` edge (between the loops).
        let j_edge = cfg
            .edges()
            .find(|e| e.stmt.to_string() == "j = 0")
            .unwrap()
            .id;
        write_with_invalidation(
            &mut daig,
            &Name::Stmt(j_edge),
            Value::Stmt(Stmt::Assign("j".into(), dai_lang::parse_expr("5").unwrap())),
        );
        // First loop fixed point survives; second is dirtied and rolled
        // back.
        let fix1 = Name::State {
            loc: first,
            ctx: IterCtx::root(),
        };
        assert!(daig.value(&fix1).is_some());
        let fix2 = Name::State {
            loc: second,
            ctx: IterCtx::root(),
        };
        assert!(daig.value(&fix2).is_none());
        daig.check_well_formed().unwrap();
    }

    #[test]
    fn dirty_missing_or_empty_is_noop() {
        let cfg = cfg_of("function f() { var x = 1; return x; }");
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        // Nothing evaluated: dirtying is harmless.
        dirty_from(
            &mut daig,
            vec![Name::State {
                loc: Loc(999),
                ctx: IterCtx::root(),
            }],
        );
        let exit = dest_name(&cfg, cfg.exit(), &Overrides::new());
        dirty_from(&mut daig, vec![exit]);
        daig.check_well_formed().unwrap();
    }
}
