//! # dai-core — demanded abstract interpretation graphs
//!
//! A Rust reproduction of *Demanded Abstract Interpretation* (Stein, Chang,
//! Sridharan — PLDI 2021): a framework that makes an **arbitrary** abstract
//! interpretation both **incremental** and **demand-driven** by reifying
//! the analysis of a program into a *demanded abstract interpretation
//! graph* (DAIG) — an acyclic dependency hypergraph whose vertices are
//! named reference cells holding program statements and abstract states,
//! and whose hyperedges are the analysis computations (`⟦·⟧♯`, `⊔`, `∇`,
//! and the distinguished `fix`).
//!
//! * [`name`] — the cell naming scheme (paper Fig. 6), generalized with
//!   per-loop iteration contexts for nested loops;
//! * [`intern`] — dense [`CellId`]s for names: every name is interned
//!   once, and all graph state is id-indexed (ids survive removal and
//!   resurrect on re-unroll, so external id-keyed state never dangles);
//! * [`graph`] — cells, computations, and Definition 4.1 well-formedness,
//!   over a `CellId` slot arena with flat adjacency, structural epochs,
//!   and per-cell content digests (see the module docs for the
//!   Name ↔ CellId lifecycle);
//! * [`build`] — `Dinit` (Appendix A) and the loop-region builder shared
//!   by demanded unrolling and rollback;
//! * [`compile`] — the staged-transfer table: per-edge compiled closures
//!   (from `dai_domains::compile`) with digest-guarded lookup and fused
//!   straight-line runs;
//! * [`query`] — the Fig. 8 operational semantics (`Q-Reuse`, `Q-Match`,
//!   `Q-Miss`, `Q-Loop-Converge`, `Q-Loop-Unroll`) with an auxiliary memo
//!   table from `dai-memo`;
//! * [`edit`] — the Fig. 9 edit semantics (`E-Commit`, `E-Propagate`,
//!   `E-Loop`);
//! * [`analysis`] — a function's CFG + DAIG with program edits and
//!   fixed-point-consistent location queries;
//! * [`interproc`] — context-sensitivity policies and demand-driven callee
//!   DAIG construction (paper §7.1);
//! * [`batch`] — an independent reference batch interpreter used as the
//!   from-scratch-consistency oracle (Theorem 6.1);
//! * [`consistency`] — executable Definition 4.2 / 4.3 checkers;
//! * [`driver`] — the four evaluation configurations of §7.3;
//! * [`strategy`] — widening schedules and `⊑`-based convergence (the
//!   alternatives footnote 4 alludes to);
//! * [`summaries`] — the Sharir–Pnueli "functional approach" to
//!   interprocedural demand sketched in §2.3, with entry-state-keyed
//!   summary DAIGs;
//! * [`dot`] — Graphviz export of DAIGs (renders the paper's Figs. 3/4).
//!
//! ## Quickstart
//!
//! ```
//! use dai_core::analysis::FuncAnalysis;
//! use dai_core::query::{IntraResolver, QueryStats};
//! use dai_domains::IntervalDomain;
//! use dai_memo::MemoTable;
//!
//! let program = dai_lang::parse_program(
//!     "function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }",
//! )?;
//! let cfg = dai_lang::cfg::lower_program(&program)?.cfgs()[0].clone();
//! let mut analysis = FuncAnalysis::new(cfg, IntervalDomain::top());
//! let mut memo = MemoTable::new();
//! let mut stats = QueryStats::default();
//! let exit = analysis.query_exit(&mut memo, &mut IntraResolver, &mut stats)?;
//! assert!(exit.interval_of("i").contains(10));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod batch;
pub mod build;
pub mod compile;
pub mod consistency;
pub mod dot;
pub mod driver;
pub mod edit;
pub mod explain;
pub mod graph;
pub mod intern;
pub mod interproc;
pub mod name;
pub mod query;
pub mod strategy;
pub mod summaries;

pub use analysis::{resolve_loc_cell, FuncAnalysis};
pub use compile::{FusedRun, TransferMode, TransferTable};
pub use driver::{Config, Driver, ProgramEdit};
pub use explain::{CellCost, CellOutcome, ExplainReport, ExplainSink, FixCost};
pub use graph::{Daig, DaigError, Func, Value};
pub use intern::{CellId, NameInterner};
pub use interproc::{Context, ContextPolicy, InterAnalyzer};
pub use name::{IterCtx, Name};
pub use query::{
    apply_ready, collect_ready, collect_ready_id, fix_step, CallResolver, FixOutcome,
    IntraResolver, QueryStats, ReadyComp,
};
pub use strategy::{Convergence, FixStrategy};
pub use summaries::SummaryAnalyzer;
