//! Names: unique identifiers for DAIG reference cells (paper Fig. 6).
//!
//! The paper builds names from locations, function symbols, integers,
//! value hashes, products, and *i-primed* variants `n^(i)` that distinguish
//! the unrolled copies of loop cells. This implementation uses a typed
//! equivalent that is isomorphic on the names the DAIG actually
//! constructs:
//!
//! * [`Name::State`] `ℓ⟨σ⟩` — the abstract state at location `ℓ` under
//!   **iteration context** `σ`. The context generalizes the paper's single
//!   prime to one `(head, iteration)` component per enclosing loop, so
//!   that nested-loop unrollings get collision-free names (the paper's
//!   `incr` corresponds to bumping the unrolled loop's own component).
//!   For a loop head `ℓ`, the name *without* its own component is the
//!   fixed-point cell `ℓ` and the name *with* component `(ℓ, i)` is the
//!   i-th abstract iterate `ℓ^(i)`.
//! * [`Name::PreWiden`] `ℓ⟨σ,i⟩·ℓ⟨σ,i+1⟩` — the pre-widening state of the
//!   i-th abstract iteration at head `ℓ` (the paper's product name).
//! * [`Name::Stmt`] — the statement cell of a CFG edge. Edge identities
//!   are stable across program edits, which is exactly what lets
//!   statement cells be reused between program versions (paper §2.2).
//! * [`Name::PreJoin`] — the pre-join state contributed by one forward
//!   in-edge of a join location (the paper's `i·n_ℓ`, disambiguated by
//!   edge identity rather than a positional index so that edits do not
//!   shift names).
//!
//! Memoization names `f·(v₁⋯v_k)` (paper §5) live in the auxiliary memo
//! table as content hashes and never appear in the DAIG itself.

use dai_lang::{EdgeId, Loc};
use std::fmt;

/// An iteration context: one `(loop head, iteration)` pair per enclosing
/// loop, outermost first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IterCtx(pub Vec<(Loc, u32)>);

impl IterCtx {
    /// The empty context (outside all loops).
    pub fn root() -> IterCtx {
        IterCtx(Vec::new())
    }

    /// Extends the context with one more (inner) loop component.
    pub fn push(&self, head: Loc, iter: u32) -> IterCtx {
        let mut v = self.0.clone();
        v.push((head, iter));
        IterCtx(v)
    }

    /// The iteration count for `head`, if present.
    pub fn iter_of(&self, head: Loc) -> Option<u32> {
        self.0.iter().find(|(h, _)| *h == head).map(|(_, i)| *i)
    }

    /// Does this context contain component `(head, i)` with `i >= 1`?
    /// Used by fix-edge rollback (E-Loop) to find unrolled copies.
    pub fn has_unrolled(&self, head: Loc) -> bool {
        self.0.iter().any(|(h, i)| *h == head && *i >= 1)
    }

    /// The innermost component, if any.
    pub fn last(&self) -> Option<(Loc, u32)> {
        self.0.last().copied()
    }

    /// The context without its innermost component.
    ///
    /// # Panics
    ///
    /// Panics if the context is empty.
    pub fn pop(&self) -> IterCtx {
        let mut v = self.0.clone();
        v.pop().expect("nonempty context");
        IterCtx(v)
    }
}

impl fmt::Display for IterCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (h, k)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{h}:{k}")?;
        }
        write!(f, "⟩")
    }
}

/// The name of a DAIG reference cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Name {
    /// Abstract state at a location under an iteration context. For loop
    /// heads: with own component = iterate cell, without = fixed-point
    /// cell.
    State {
        /// The program location.
        loc: Loc,
        /// Iteration context.
        ctx: IterCtx,
    },
    /// The pre-widening state `ℓ⟨σ,i⟩·ℓ⟨σ,i+1⟩` at a loop head; `ctx`'s
    /// last component is `(head, i)`.
    PreWiden {
        /// The loop head.
        head: Loc,
        /// Iteration context ending in the head's own `(head, i)`.
        ctx: IterCtx,
    },
    /// The statement labelling a CFG edge.
    Stmt(EdgeId),
    /// The pre-join abstract state contributed by one forward in-edge of a
    /// join location.
    PreJoin {
        /// The contributing edge.
        edge: EdgeId,
        /// Iteration context of the join location (as destination).
        ctx: IterCtx,
    },
}

impl Name {
    /// Is this a statement cell?
    pub fn is_stmt(&self) -> bool {
        matches!(self, Name::Stmt(_))
    }

    /// The iteration context of a state-typed name (`None` for statement
    /// cells).
    pub fn ctx(&self) -> Option<&IterCtx> {
        match self {
            Name::State { ctx, .. } | Name::PreWiden { ctx, .. } | Name::PreJoin { ctx, .. } => {
                Some(ctx)
            }
            Name::Stmt(_) => None,
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Name::State { loc, ctx } => {
                if ctx.0.is_empty() {
                    write!(f, "{loc}")
                } else {
                    write!(f, "{loc}{ctx}")
                }
            }
            Name::PreWiden { head, ctx } => {
                let (h, i) = ctx.last().expect("prewiden has own component");
                debug_assert_eq!(h, *head);
                write!(f, "{head}{}·{head}⟨{}⟩", ctx, i + 1)
            }
            Name::Stmt(e) => write!(f, "stmt[{e}]"),
            Name::PreJoin { edge, ctx } => write!(f, "prejoin[{edge}]{ctx}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_push_pop_roundtrip() {
        let c = IterCtx::root().push(Loc(3), 0).push(Loc(7), 2);
        assert_eq!(c.last(), Some((Loc(7), 2)));
        assert_eq!(c.pop(), IterCtx::root().push(Loc(3), 0));
        assert_eq!(c.iter_of(Loc(3)), Some(0));
        assert_eq!(c.iter_of(Loc(9)), None);
    }

    #[test]
    fn has_unrolled_detects_nonzero_iterations() {
        let c = IterCtx::root().push(Loc(3), 0);
        assert!(!c.has_unrolled(Loc(3)));
        let c2 = IterCtx::root().push(Loc(3), 2).push(Loc(5), 0);
        assert!(c2.has_unrolled(Loc(3)));
        assert!(!c2.has_unrolled(Loc(5)));
    }

    #[test]
    fn names_distinguish_iterates_from_fix_cell() {
        let fix = Name::State {
            loc: Loc(3),
            ctx: IterCtx::root(),
        };
        let it0 = Name::State {
            loc: Loc(3),
            ctx: IterCtx::root().push(Loc(3), 0),
        };
        let it1 = Name::State {
            loc: Loc(3),
            ctx: IterCtx::root().push(Loc(3), 1),
        };
        assert_ne!(fix, it0);
        assert_ne!(it0, it1);
    }

    #[test]
    fn display_is_readable() {
        let it1 = Name::State {
            loc: Loc(3),
            ctx: IterCtx::root().push(Loc(3), 1),
        };
        assert_eq!(it1.to_string(), "l3⟨l3:1⟩");
        assert_eq!(Name::Stmt(EdgeId(4)).to_string(), "stmt[e4]");
    }

    #[test]
    fn names_order_deterministically() {
        let mut v = vec![
            Name::Stmt(EdgeId(1)),
            Name::State {
                loc: Loc(0),
                ctx: IterCtx::root(),
            },
            Name::Stmt(EdgeId(0)),
        ];
        v.sort();
        let w = v.clone();
        v.sort();
        assert_eq!(v, w);
    }
}
