//! Context-sensitive interprocedural demanded analysis (paper §7.1).
//!
//! "We initially construct a DAIG only for the 'main' procedure in the
//! initial context. Then, when a query is issued for the abstract state
//! after a call, we construct a DAIG for its callee in the proper context."
//! Contexts are chosen by a pluggable [`ContextPolicy`]; the paper's
//! functors for context-insensitivity and 1-/2-call-site sensitivity are
//! [`ContextPolicy::Insensitive`] and [`ContextPolicy::CallString`].
//!
//! A callee's entry state under a context is the join of the entry
//! contributions from the call sites mapping to that context; contributions
//! accumulate as callers are evaluated, and feeding a larger entry into a
//! callee is an ordinary DAIG *edit* of its `φ₀` cell (dirtying downstream
//! results). Programs must be non-recursive with static calls (checked at
//! lowering), so cross-DAIG demand is well-founded.

use crate::analysis::FuncAnalysis;
use crate::graph::{DaigError, Value};
use crate::name::Name;
use crate::query::{CallResolver, QueryStats};
use dai_domains::{AbstractDomain, CallSite};
use dai_lang::cfg::LoweredProgram;
use dai_lang::edit::SpliceInfo;
use dai_lang::{Block, CfgError, EdgeId, Loc, Stmt, Symbol};
use dai_memo::{MemoStore, MemoTable};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A calling context: the most recent call edges, outermost last
/// (bounded by the policy's `k`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Context(pub Vec<(Symbol, EdgeId)>);

impl Context {
    /// The empty (root) context.
    pub fn root() -> Context {
        Context(Vec::new())
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for (i, (g, e)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{g}:{e}")?;
        }
        Ok(())
    }
}

/// How callee contexts are derived from call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextPolicy {
    /// One context per function (0-call-string).
    Insensitive,
    /// k-call-string sensitivity (the paper evaluates k = 1 and k = 2).
    CallString(usize),
}

impl ContextPolicy {
    /// The callee context for a call at `(caller, edge)` in `caller_ctx`.
    pub fn extend(&self, caller_ctx: &Context, caller: &Symbol, edge: EdgeId) -> Context {
        match self {
            ContextPolicy::Insensitive => Context::root(),
            ContextPolicy::CallString(k) => {
                let mut v = vec![(caller.clone(), edge)];
                v.extend(caller_ctx.0.iter().cloned());
                v.truncate(*k);
                Context(v)
            }
        }
    }
}

/// The interprocedural analyzer: per-`(function, context)` DAIGs created
/// on demand, a shared memo table, and the entry-join bookkeeping.
pub struct InterAnalyzer<D: AbstractDomain> {
    program: LoweredProgram,
    policy: ContextPolicy,
    entry_fn: Symbol,
    phi0: D,
    strategy: crate::strategy::FixStrategy,
    mode: crate::compile::TransferMode,
    units: HashMap<(Symbol, Context), FuncAnalysis<D>>,
    memo: MemoTable<Value<D>>,
    stats: QueryStats,
}

/// Resolves calls by demanding callee DAIG exits.
struct InterResolver<'a, D: AbstractDomain> {
    analyzer: &'a mut InterAnalyzer<D>,
    caller: Symbol,
    caller_ctx: Context,
}

impl<D: AbstractDomain> CallResolver<D> for InterResolver<'_, D> {
    fn resolve(
        &mut self,
        pre: &D,
        stmt: &Stmt,
        edge: EdgeId,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        self.analyzer
            .resolve_call(&self.caller, &self.caller_ctx, pre, stmt, edge, memo, stats)
    }
}

impl<D: AbstractDomain> InterAnalyzer<D> {
    /// Creates an analyzer for `program`, analyzing from `entry_fn` with
    /// entry state `φ₀` under the given context policy and the paper's
    /// default iteration strategy.
    pub fn new(
        program: LoweredProgram,
        policy: ContextPolicy,
        entry_fn: &str,
        phi0: D,
    ) -> InterAnalyzer<D> {
        InterAnalyzer::with_strategy(
            program,
            policy,
            entry_fn,
            phi0,
            crate::strategy::FixStrategy::PAPER,
        )
    }

    /// Like [`InterAnalyzer::new`] but with an explicit loop-head
    /// iteration strategy applied to every unit (see [`crate::strategy`]).
    pub fn with_strategy(
        program: LoweredProgram,
        policy: ContextPolicy,
        entry_fn: &str,
        phi0: D,
        strategy: crate::strategy::FixStrategy,
    ) -> InterAnalyzer<D> {
        InterAnalyzer::with_config(
            program,
            policy,
            entry_fn,
            phi0,
            strategy,
            crate::compile::TransferMode::default(),
        )
    }

    /// Like [`InterAnalyzer::with_strategy`] but with an explicit
    /// transfer-evaluation mode applied to every unit (see
    /// [`crate::compile`]).
    pub fn with_config(
        program: LoweredProgram,
        policy: ContextPolicy,
        entry_fn: &str,
        phi0: D,
        strategy: crate::strategy::FixStrategy,
        mode: crate::compile::TransferMode,
    ) -> InterAnalyzer<D> {
        InterAnalyzer {
            program,
            policy,
            entry_fn: Symbol::new(entry_fn),
            phi0,
            strategy,
            mode,
            units: HashMap::new(),
            memo: MemoTable::new(),
            stats: QueryStats::default(),
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &LoweredProgram {
        &self.program
    }

    /// Cumulative query statistics.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Shared memo-table statistics.
    pub fn memo_stats(&self) -> dai_memo::MemoStats {
        *self.memo.stats()
    }

    /// Number of DAIG units constructed so far.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// All `(function, context)` units constructed so far, unordered
    /// (callers sort for deterministic output — see `dai-engine`'s
    /// session snapshot).
    pub fn units_iter(&self) -> impl Iterator<Item = (&(Symbol, Context), &FuncAnalysis<D>)> {
        self.units.iter()
    }

    /// All contexts in which `f` can be analyzed, discovered by walking the
    /// static call graph from the entry function under the policy.
    pub fn contexts_of(&self, f: &str) -> Vec<Context> {
        let mut out: HashMap<Symbol, HashSet<Context>> = HashMap::new();
        let mut queue: VecDeque<(Symbol, Context)> = VecDeque::new();
        out.entry(self.entry_fn.clone())
            .or_default()
            .insert(Context::root());
        queue.push_back((self.entry_fn.clone(), Context::root()));
        let mut seen: HashSet<(Symbol, Context)> = HashSet::new();
        while let Some((g, cg)) = queue.pop_front() {
            if !seen.insert((g.clone(), cg.clone())) {
                continue;
            }
            let Some(cfg) = self.program.by_name(g.as_str()) else {
                continue;
            };
            for e in cfg.edges() {
                if let Some(callee) = e.stmt.callee() {
                    if self.program.by_name(callee.as_str()).is_none() {
                        continue;
                    }
                    let ctx2 = self.policy.extend(&cg, &g, e.id);
                    out.entry(callee.clone()).or_default().insert(ctx2.clone());
                    queue.push_back((callee.clone(), ctx2));
                }
            }
        }
        let mut v: Vec<Context> = out
            .remove(&Symbol::new(f))
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    fn ensure_unit(&mut self, f: &Symbol, ctx: &Context) -> Result<(), DaigError> {
        let key = (f.clone(), ctx.clone());
        if self.units.contains_key(&key) {
            return Ok(());
        }
        let cfg = self
            .program
            .by_name(f.as_str())
            .ok_or_else(|| DaigError::NoSuchCell(format!("function {f}")))?
            .clone();
        let entry = if *f == self.entry_fn && ctx.0.is_empty() {
            self.phi0.clone()
        } else {
            D::bottom()
        };
        self.units.insert(
            key,
            FuncAnalysis::with_config(cfg, entry, self.strategy, self.mode),
        );
        Ok(())
    }

    /// Demands the exit state of `(f, ctx)`.
    fn query_exit_of(
        &mut self,
        f: &Symbol,
        ctx: &Context,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        self.ensure_unit(f, ctx)?;
        let key = (f.clone(), ctx.clone());
        let mut unit = self.units.remove(&key).expect("ensured");
        let mut resolver = InterResolver {
            analyzer: self,
            caller: f.clone(),
            caller_ctx: ctx.clone(),
        };
        let out = unit.query_exit(memo, &mut resolver, stats);
        self.units.insert(key, unit);
        out
    }

    /// Demands the fixed-point-consistent state at `loc` in `(f, ctx)`.
    fn query_loc_of(
        &mut self,
        f: &Symbol,
        ctx: &Context,
        loc: Loc,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        self.ensure_unit(f, ctx)?;
        let key = (f.clone(), ctx.clone());
        let mut unit = self.units.remove(&key).expect("ensured");
        let mut resolver = InterResolver {
            analyzer: self,
            caller: f.clone(),
            caller_ctx: ctx.clone(),
        };
        let out = unit.query_loc(memo, loc, &mut resolver, stats);
        self.units.insert(key, unit);
        out
    }

    /// Resolves one call: joins the entry contribution into the callee's
    /// context, demands the callee's exit, and applies the return transfer.
    #[allow(clippy::too_many_arguments)]
    fn resolve_call(
        &mut self,
        caller: &Symbol,
        caller_ctx: &Context,
        pre: &D,
        stmt: &Stmt,
        edge: EdgeId,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        let Stmt::Call { lhs, callee, args } = stmt else {
            return Err(DaigError::Invariant("resolve_call on non-call".to_string()));
        };
        if pre.is_bottom() {
            return Ok(D::bottom());
        }
        let Some(callee_cfg) = self.program.by_name(callee.as_str()) else {
            // Unknown callee: fall back to the domain's conservative call
            // transfer.
            return Ok(pre.transfer(stmt));
        };
        let params: Vec<Symbol> = callee_cfg.params().to_vec();
        let site_key = format!("{caller}:{edge}");
        let site = CallSite {
            lhs: lhs.as_ref(),
            callee,
            args: args.as_slice(),
            site_key: &site_key,
        };
        let contribution = pre.call_entry(site, &params);
        let ctx2 = self.policy.extend(caller_ctx, caller, edge);
        self.ensure_unit(callee, &ctx2)?;
        {
            let unit = self
                .units
                .get_mut(&(callee.clone(), ctx2.clone()))
                .expect("ensured");
            let joined = unit.entry_state().join(&contribution);
            unit.set_entry_state(joined);
        }
        let exit = self.query_exit_of(callee, &ctx2, memo, stats)?;
        Ok(pre.call_return(site, &exit))
    }

    /// Seeds the entry of `(f, ctx)` from all of its call sites' current
    /// (fixed-point-consistent) pre-states. Needed when a query targets a
    /// function directly, before any caller has been demanded.
    fn force_entry(
        &mut self,
        f: &Symbol,
        ctx: &Context,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<(), DaigError> {
        if *f == self.entry_fn && ctx.0.is_empty() {
            return Ok(());
        }
        // All call sites of f whose policy-context matches ctx.
        let sites = self.program.call_sites_of(f.as_str());
        for (g, e) in sites {
            let caller_ctxs = self.contexts_of(g.as_str());
            for cg in caller_ctxs {
                if self.policy.extend(&cg, &g, e) != *ctx {
                    continue;
                }
                // The caller's own entry must be populated first (demand
                // flows transitively up the acyclic call graph).
                self.ensure_unit(&g, &cg)?;
                self.force_entry(&g, &cg, memo, stats)?;
                let edge = self
                    .program
                    .by_name(g.as_str())
                    .and_then(|c| c.edge(e))
                    .cloned()
                    .ok_or_else(|| DaigError::Invariant(format!("missing edge {e} in {g}")))?;
                let pre = self.query_loc_of(&g, &cg, edge.src, memo, stats)?;
                // Feeding the contribution is exactly what resolve_call
                // does; reuse it for the side effect on the entry join.
                let _ = self.resolve_call(&g, &cg, &pre, &edge.stmt, e, memo, stats)?;
            }
        }
        Ok(())
    }

    /// Demands the abstract state at `loc` of `f` under every context the
    /// call structure induces, returning per-context results.
    ///
    /// # Errors
    ///
    /// Returns [`DaigError`] for unknown functions/locations or internal
    /// inconsistencies.
    pub fn query_at(&mut self, f: &str, loc: Loc) -> Result<Vec<(Context, D)>, DaigError> {
        let fsym = Symbol::new(f);
        let mut memo = std::mem::take(&mut self.memo);
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        let result = (|| {
            // A function with no contexts is unreachable from the entry:
            // every location in it is dead code, reported as no results
            // (joined: ⊥). This matches demand semantics — a DAIG for it
            // would have a ⊥ entry.
            let ctxs = self.contexts_of(f);
            for ctx in ctxs {
                self.ensure_unit(&fsym, &ctx)?;
                self.force_entry(&fsym, &ctx, &mut memo, &mut stats)?;
                let v = self.query_loc_of(&fsym, &ctx, loc, &mut memo, &mut stats)?;
                out.push((ctx, v));
            }
            Ok(())
        })();
        self.memo = memo;
        self.stats.absorb(stats);
        result.map(|()| out)
    }

    /// Like [`InterAnalyzer::query_at`] but joined over contexts.
    ///
    /// # Errors
    ///
    /// See [`InterAnalyzer::query_at`].
    pub fn query_joined(&mut self, f: &str, loc: Loc) -> Result<D, DaigError> {
        let per_ctx = self.query_at(f, loc)?;
        let mut acc = D::bottom();
        for (_, v) in per_ctx {
            acc = acc.join(&v);
        }
        Ok(acc)
    }

    /// Evaluates everything: every unit of every reachable
    /// (function, context), callers before callees so entry joins are
    /// complete. Used by the exhaustive driver configurations.
    ///
    /// # Errors
    ///
    /// See [`InterAnalyzer::query_at`].
    pub fn evaluate_everything(&mut self) -> Result<(), DaigError> {
        let mut memo = std::mem::take(&mut self.memo);
        let mut stats = QueryStats::default();
        let result = (|| {
            // Callers first: reverse of callees-first topo order.
            let order: Vec<Symbol> = self.program.topo_order().iter().rev().cloned().collect();
            for f in order {
                for ctx in self.contexts_of(f.as_str()) {
                    self.ensure_unit(&f, &ctx)?;
                    self.force_entry(&f, &ctx, &mut memo, &mut stats)?;
                    let key = (f.clone(), ctx.clone());
                    let mut unit = self.units.remove(&key).expect("ensured");
                    let mut resolver = InterResolver {
                        analyzer: self,
                        caller: f.clone(),
                        caller_ctx: ctx.clone(),
                    };
                    let r = unit.evaluate_all(&mut memo, &mut resolver, &mut stats);
                    self.units.insert(key, unit);
                    r?;
                }
            }
            Ok(())
        })();
        self.memo = memo;
        self.stats.absorb(stats);
        result
    }

    /// Applies an in-place statement relabel to `f` (all contexts),
    /// propagating dirtiness across function boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError`] for unknown edges and call-graph violations.
    pub fn relabel(&mut self, f: &str, edge: EdgeId, stmt: Stmt) -> Result<(), CfgError> {
        let cfg = self
            .program
            .by_name_mut(f)
            .ok_or_else(|| CfgError::UndefinedFunction(Symbol::new(f)))?;
        dai_lang::edit::relabel_edge(cfg, edge, stmt.clone())?;
        self.program.refresh_call_graph()?;
        for ((g, _), unit) in self.units.iter_mut() {
            if g.as_str() == f {
                unit.relabel(edge, stmt.clone())?;
            }
        }
        self.propagate_cross_function_dirt(f);
        Ok(())
    }

    /// Applies a block splice to `f` (all contexts).
    ///
    /// # Errors
    ///
    /// Returns [`CfgError`] for unknown edges, non-falling blocks, and
    /// call-graph violations.
    pub fn splice(&mut self, f: &str, edge: EdgeId, block: &Block) -> Result<SpliceInfo, CfgError> {
        let cfg = self
            .program
            .by_name_mut(f)
            .ok_or_else(|| CfgError::UndefinedFunction(Symbol::new(f)))?;
        let info = dai_lang::edit::splice_block_on_edge(cfg, edge, block)?;
        self.program.refresh_call_graph()?;
        for ((g, _), unit) in self.units.iter_mut() {
            if g.as_str() == f {
                unit.splice(edge, block)?;
            }
        }
        self.propagate_cross_function_dirt(f);
        Ok(info)
    }

    /// After editing `f`: accumulated callee entries anywhere may be stale
    /// — an edited function's changed values can flow through its callers
    /// into any other callee's entry join, and joins never shrink on their
    /// own. Entries are therefore reset (to be re-accumulated on demand)
    /// for every non-entry unit; callers' post-call cells depend on `f`'s
    /// exit, so additionally dirty downstream of every transitive caller's
    /// relevant call sites.
    fn propagate_cross_function_dirt(&mut self, f: &str) {
        let entry_fn = self.entry_fn.clone();
        for ((g, ctx), unit) in self.units.iter_mut() {
            if *g == entry_fn && ctx.0.is_empty() {
                continue;
            }
            unit.set_entry_state(D::bottom());
            unit.dirty_everything();
        }
        // Transitive callers of f: functions from which f is reachable.
        let mut affected: HashSet<Symbol> = HashSet::new();
        affected.insert(Symbol::new(f));
        loop {
            let mut grew = false;
            for g in self.program.topo_order().to_vec() {
                if affected.contains(&g) {
                    continue;
                }
                if self
                    .program
                    .callees(g.as_str())
                    .iter()
                    .any(|c| affected.contains(c))
                {
                    affected.insert(g);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        // Dirty call-site destinations in callers whose callee is affected.
        for ((g, _), unit) in self.units.iter_mut() {
            if g.as_str() == f || !affected.contains(g) {
                continue;
            }
            let call_edges: Vec<EdgeId> = unit
                .cfg()
                .edges()
                .filter(|e| {
                    e.stmt
                        .callee()
                        .map(|c| affected.contains(c))
                        .unwrap_or(false)
                })
                .map(|e| e.id)
                .collect();
            for e in call_edges {
                let deps: Vec<Name> = unit.daig().dependents(&Name::Stmt(e)).cloned().collect();
                crate::edit::dirty_from(unit.daig_mut(), deps);
            }
        }
    }

    /// Discards all analysis results but keeps program structure (the
    /// demand-driven-only configuration's "dirty the full DAIG").
    pub fn dirty_everything(&mut self) {
        for unit in self.units.values_mut() {
            unit.dirty_everything();
        }
        // Entries must also be re-accumulated.
        for ((g, ctx), unit) in self.units.iter_mut() {
            if !(*g == self.entry_fn && ctx.0.is_empty()) {
                unit.set_entry_state(D::bottom());
            }
        }
        self.memo.clear();
    }

    /// Access to a unit, for tests and inspection.
    pub fn unit(&self, f: &str, ctx: &Context) -> Option<&FuncAnalysis<D>> {
        self.units.get(&(Symbol::new(f), ctx.clone()))
    }
}
